//! Minimal stand-in for the `criterion` benchmark harness (no crates.io
//! access in the build environment). Implements the measurement loop and
//! reporting surface the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter` — with mean/median/p95 reporting on
//! stdout. No plots, no statistical regression machinery.

use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Measurement settings shared by [`Criterion`] and groups.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 50,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1500),
        }
    }
}

/// The benchmark context, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_benchmark(&id.into().id, &self.settings, |b| f(b));
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings.clone(), _parent: self }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.settings.warm_up_time = t;
        self
    }

    /// Sets the measurement duration for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, &self.settings, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    settings: Settings,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, collecting one sample per batch of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and calibrate how many iterations fit in one sample.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.settings.measurement_time.as_secs_f64();
        let per_sample = budget / self.settings.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter) as u64).max(1);

        self.samples.clear();
        let bench_start = Instant::now();
        for _ in 0..self.settings.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters_per_sample as f64);
            // Never run more than ~2x the measurement budget.
            if bench_start.elapsed().as_secs_f64() > 2.0 * budget {
                break;
            }
        }
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_benchmark(name: &str, settings: &Settings, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { settings: settings.clone(), samples: Vec::new() };
    f(&mut bencher);
    let mut s = bencher.samples;
    if s.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let median = s[s.len() / 2];
    let p95 = s[((s.len() - 1) * 95) / 100];
    println!(
        "{name:<50} time: [median {} | mean {} | p95 {}] ({} samples)",
        format_time(median),
        format_time(mean),
        format_time(p95),
        s.len()
    );
}

/// Mirrors `criterion::criterion_group!` (both plain and named forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let settings = Settings {
            sample_size: 5,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
        };
        let mut b = Bencher { settings, samples: Vec::new() };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&t| t >= 0.0));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 12).id, "f/12");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(3));
        let mut group = c.benchmark_group("g");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
