//! Minimal stand-in for the `rand_chacha` crate: a real ChaCha8 block
//! cipher driving the [`ChaCha8Rng`] generator. Vendored because the build
//! environment has no crates.io access; seeded streams are deterministic
//! (which is all the workspace relies on) but are not bit-compatible with
//! the upstream crate.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, exposed as a `rand`-style RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next word of `block` to emit (16 = exhausted).
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit key,
        // the same scheme `rand` uses for `seed_from_u64`.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let k = next();
            s[4 + 2 * i] = k as u32;
            s[5 + 2 * i] = (k >> 32) as u32;
        }
        // Counter and nonce start at zero.
        Self { state: s, block: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn output_looks_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones; allow a wide band.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
