//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.9 API the code base
//! actually uses: [`RngCore`]/[`Rng`] with `random_range`, [`SeedableRng`],
//! and the slice helpers in [`seq`]. Distribution quality matches what the
//! generators and tests need (uniform ints/floats, Fisher–Yates shuffle);
//! it is *not* a cryptographic or statistically audited implementation.

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width u64 range
                }
                start + (reduce(rng.next_u64(), span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps a raw 64-bit draw onto `[0, span)` (span of 0 means full width).
#[inline]
fn reduce(raw: u64, span: u64) -> u64 {
    if span == 0 {
        raw
    } else {
        // Widening-multiply range reduction (Lemire); bias is < 2^-64 per
        // draw, far below what the generators and tests can observe.
        (((raw as u128) * (span as u128)) >> 64) as u64
    }
}

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as $t) * (1.0 / (1u64 << 53) as $t);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = ((rng.next_u64() >> 11) as $t) * (1.0 / ((1u64 << 53) - 1) as $t);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Slice helpers (`shuffle`, `choose`), mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice randomization.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from indexable collections.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// Uniformly picks one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::{IndexedRandom, SliceRandom};
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = r.random_range(0..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Counter(11);
        for _ in 0..1000 {
            let x: f64 = r.random_range(0.5..1.5);
            assert!((0.5..1.5).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = Counter(5);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut r).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
