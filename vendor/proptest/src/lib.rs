//! Minimal stand-in for the `proptest` crate (no crates.io access in the
//! build environment). Supports the subset the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary::any`], and [`collection::vec`]. Cases are sampled from a
//! deterministic per-test RNG; there is **no shrinking** — a failure
//! reports the offending inputs verbatim.

pub mod test_runner {
    /// Why a property test case failed.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failed assertion with an explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            Self { message: message.into() }
        }

        /// The failure explanation.
        pub fn message(&self) -> &str {
            &self.message
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic RNG driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> Self {
            Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: std::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: std::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span as u64) as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * (rng.unit_f64() as $t)
                }
            }
        )*};
    }

    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E), (A, B, C, D, E, F));
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: std::fmt::Debug {
        /// Draws an unconstrained value.
        fn arbitrary_sample(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over a type's full value range.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Something usable as a collection size: a fixed size or a range.
    pub trait SizeSpec {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeSpec for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeSpec for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeSpec for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            *self.start() + rng.below((*self.end() - *self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// The `prop::collection::vec(strategy, size)` entry point.
    pub fn vec<S: Strategy, L: SizeSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Per-test deterministic seed from the test path.
                let seed = {
                    let path = concat!(module_path!(), "::", stringify!($name));
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in path.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    let case_desc = format!(
                        concat!("case {}", $(concat!(", ", stringify!($arg), " = {:?}"),)*),
                        case $(, &$arg)*
                    );
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!("property `{}` failed: {} [{}]", stringify!($name), e, case_desc);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u64..1000, z in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 1000);
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn tuples_and_map(v in (1usize..5, any::<u64>()).prop_map(|(n, bits)| vec![bits; n])) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v[0], v[v.len() - 1]);
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0.0f64..1.0, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn failures_panic_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn inner(x in 0usize..4) {
                    prop_assert!(x < 100, "impossible");
                    prop_assert!(x < 2, "x too big: {}", x);
                }
            }
            inner();
        });
        assert!(result.is_err(), "property with failing assertion must panic");
    }
}
