//! Minimal stand-in for the `rayon` crate (no crates.io access in the
//! build environment). Provides [`ThreadPool`]/[`ThreadPoolBuilder`] and
//! the `par_iter`/`into_par_iter` → `map` → `collect` pipeline the
//! workspace uses, executed on scoped `std::thread`s with a shared work
//! queue. Not work-stealing, but order-preserving and genuinely parallel.

use std::cell::Cell;
use std::fmt;
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] on this thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn current_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).unwrap_or_else(default_threads)
}

/// Error building a pool (never produced by this shim; kept for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A parallelism context. This shim spawns scoped threads per parallel
/// call rather than keeping persistent workers; `install` only records the
/// configured width for the closures run inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators used inside.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|c| c.replace(Some(self.num_threads)));
        let out = op();
        INSTALLED_THREADS.with(|c| c.set(prev));
        out
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Executes `f` over `items` on `current_threads()` scoped threads,
/// preserving input order in the output.
fn parallel_map<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let width = current_threads().min(items.len()).max(1);
    if width == 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<Vec<(usize, T)>> = Mutex::new(items.into_iter().enumerate().rev().collect());
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..width {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop();
                match next {
                    Some((i, item)) => {
                        let r = f(item);
                        done.lock().expect("result lock").push((i, r));
                    }
                    None => break,
                }
            });
        }
    });
    let mut out = done.into_inner().expect("result lock");
    out.sort_unstable_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

/// The `rayon::prelude` equivalent: parallel-iterator entry points.
pub mod prelude {
    use super::parallel_map;

    /// Conversion into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Consumes `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        fn into_par_iter(self) -> ParIter<T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iteration (`.par_iter()`).
    pub trait IntoParallelRefIterator<'data> {
        /// Item type (a reference).
        type Item: Send + 'data;
        /// Parallel iterator over borrowed items.
        fn par_iter(&'data self) -> ParIter<Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter { items: self.iter().collect() }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        fn par_iter(&'data self) -> ParIter<&'data T> {
            ParIter { items: self.iter().collect() }
        }
    }

    /// An eager parallel iterator over a materialized item list.
    pub struct ParIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParIter<T> {
        /// Maps each item through `f` (executed at `collect` time).
        pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
            ParMap { items: self.items, f }
        }
    }

    /// A mapped parallel iterator awaiting collection.
    pub struct ParMap<T, F> {
        items: Vec<T>,
        f: F,
    }

    impl<T, R, F> ParMap<T, F>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        /// Runs the map in parallel and collects results in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            parallel_map(self.items, &self.f).into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000).collect();
        let doubled: Vec<i64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let squared: Vec<i64> = v.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared[999], 999 * 999);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_threads(), 3);
        });
        assert_ne!(INSTALLED_THREADS.with(|c| c.get()), Some(3));
    }

    #[test]
    fn parallel_map_actually_uses_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids: Vec<String> = pool.install(|| {
            (0..64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    format!("{:?}", std::thread::current().id())
                })
                .collect()
        });
        let mut distinct = ids.clone();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }
}
