//! Live-graph integration: concurrent mutation batches served through
//! the delta overlay answer exactly like a from-scratch registration of
//! the mutated graph, background compaction swaps epochs without
//! pausing in-flight races, updates invalidate the tenant's cache
//! partition, the new counters reach the metrics exporter, and a
//! save/load round trip replays post-save updates from the WAL.

use psi_core::{GraphUpdate, PsiRunner, RaceBudget, UpdateOp};
use psi_engine::{ApplyError, EngineConfig, MultiEngine, MultiEngineConfig, RouteError, ServePath};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn stored_graph(seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    random_connected_graph(48, 110, &labels, &mut rng)
}

fn live_multi(compact_threshold: usize) -> MultiEngine {
    MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 4,
        tenant: EngineConfig {
            predictor_confidence: 2.0,
            default_budget: RaceBudget::matching(),
            compact_threshold,
            ..EngineConfig::default()
        },
    })
}

/// Grows a small connected query from a stored-graph node, so the query
/// embeds in that graph.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

/// Disjoint per-writer mutation batches: writer `w` adds edges (and one
/// removal) only among nodes in its own territory, so concurrent
/// application can never conflict.
fn writer_batches(stored: &Graph, writers: u32) -> Vec<Vec<GraphUpdate>> {
    let n = stored.node_count() as u32;
    let span = n / writers;
    (0..writers)
        .map(|w| {
            let (lo, hi) = (w * span, if w + 1 == writers { n } else { (w + 1) * span });
            let mut adds = Vec::new();
            for u in lo..hi {
                for v in (u + 1)..hi {
                    if !stored.has_edge(u, v) {
                        adds.push(UpdateOp::AddEdge { u, v, label: None });
                    }
                }
            }
            adds.truncate(12);
            adds.chunks(3).map(|c| GraphUpdate::new(c.to_vec())).collect()
        })
        .collect()
}

#[test]
fn concurrent_batches_answer_like_a_fresh_registration_of_the_mutated_graph() {
    let stored = stored_graph(11);
    let live = live_multi(0); // no auto-compaction: answers come through the overlay
    let id = live.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    let batches = writer_batches(&stored, 4);

    // Writers race each other (and a few readers) through the fair gate.
    std::thread::scope(|scope| {
        for writer in &batches {
            let live = &live;
            scope.spawn(move || {
                for update in writer {
                    live.apply_update(id, update).expect("disjoint batches apply cleanly");
                }
            });
        }
        let (live, stored) = (&live, &stored);
        scope.spawn(move || {
            for seed in 0..6 {
                let q = grown_query(stored, 4, seed);
                assert!(live.submit(id, &q).unwrap().found(), "pre-update answers survive");
            }
        });
    });
    let applied: usize = batches.iter().map(|b| b.len()).sum();
    assert_eq!(live.graph_stats(id).unwrap().updates_applied, applied as u64);
    assert_eq!(live.epoch(id), Some(0), "no compaction ran: everything is overlay");

    // From-scratch reference: register the materialized graph in a
    // fresh engine and compare answers on queries grown from it (they
    // exercise the added edges, not just the base).
    let mutated = live.runner(id).unwrap().materialized();
    let fresh = live_multi(0);
    let ref_id = fresh.register("fresh", PsiRunner::nfv_default(&mutated)).unwrap();
    for seed in 100..130 {
        let q = grown_query(&mutated, 5, seed);
        let via_overlay = live.submit(id, &q).unwrap();
        let via_fresh = fresh.submit(ref_id, &q).unwrap();
        assert_eq!(via_overlay.found(), via_fresh.found(), "seed {seed}");
        assert_eq!(via_overlay.num_matches(), via_fresh.num_matches(), "seed {seed}");
    }

    // After an explicit fold the answers must not change either.
    let compaction = live.compact(id).expect("graph is registered").expect("overlay was pending");
    assert_eq!(compaction.epoch, 1);
    assert_eq!(live.epoch(id), Some(1));
    for seed in 100..130 {
        let q = grown_query(&mutated, 5, seed);
        assert_eq!(
            live.submit(id, &q).unwrap().num_matches(),
            fresh.submit(ref_id, &q).unwrap().num_matches(),
            "post-compaction seed {seed}"
        );
    }
}

#[test]
fn background_compaction_swaps_epochs_without_pausing_in_flight_races() {
    let stored = stored_graph(23);
    // Auto-compact after every few ops: swaps land *while* queries run.
    let live = live_multi(4);
    let id = live.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    let batches = writer_batches(&stored, 4);

    std::thread::scope(|scope| {
        for writer in &batches {
            let live = &live;
            scope.spawn(move || {
                for update in writer {
                    live.apply_update(id, update).expect("disjoint batches apply cleanly");
                }
            });
        }
        for reader in 0..2u64 {
            let (live, stored) = (&live, &stored);
            scope.spawn(move || {
                for seed in 0..12 {
                    let q = grown_query(stored, 5, reader * 100 + seed);
                    let resp = live.submit(id, &q).unwrap();
                    // Additive updates cannot invalidate a base-grown
                    // query, whatever epoch the race was pinned to.
                    assert!(resp.found(), "reader {reader} seed {seed}");
                }
            });
        }
    });
    // Quiesce: fold whatever tail the threshold compactions left.
    let _ = live.compact(id).unwrap();
    let stats = live.graph_stats(id).unwrap();
    assert!(stats.compactions >= 1, "threshold compactions must have run");
    assert!(stats.epoch >= 1, "epoch must have advanced");
    assert_eq!(stats.epoch, live.epoch(id).unwrap());
    assert!(stats.compaction_us > 0, "folds cost time");
    assert_eq!(live.runner(id).unwrap().pending_ops(), 0, "quiesced graph has no overlay");
}

#[test]
fn updates_invalidate_the_cache_partition_and_export_the_new_counters() {
    let stored = stored_graph(37);
    let live = live_multi(0);
    let id = live.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    let q = grown_query(&stored, 4, 5);
    live.submit(id, &q).unwrap();
    assert_eq!(live.submit(id, &q).unwrap().path, ServePath::CacheHit);

    let update = GraphUpdate::new(vec![UpdateOp::AddNode { label: 9 }]);
    live.apply_update(id, &update).unwrap();
    // The cached answer predates the mutation: the repeat must re-race.
    assert_ne!(live.submit(id, &q).unwrap().path, ServePath::CacheHit);
    let stats = live.graph_stats(id).unwrap();
    assert!(stats.cache_invalidations >= 1);
    assert_eq!(stats.updates_applied, 1);

    live.compact(id).unwrap().expect("one pending op folds");
    let prom = live.exporter().render_prometheus();
    for family in
        ["psi_updates_applied_total", "psi_compactions_total", "psi_cache_invalidations_total"]
    {
        assert!(prom.contains(family), "missing {family} in:\n{prom}");
    }
    assert!(
        prom.contains("psi_epoch{graph=\"live\"} 1"),
        "epoch gauge must export the swap:\n{prom}"
    );
    let json = live.exporter().render_json();
    for field in ["\"updates_applied\":1", "\"compactions\":1", "\"epoch\":1"] {
        assert!(json.contains(field), "missing {field} in:\n{json}");
    }
}

#[test]
fn apply_update_errors_are_typed() {
    let stored = stored_graph(41);
    let live = live_multi(0);
    let id = live.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    let n = stored.node_count() as u32;
    // A GraphId minted by a *different* registry (index 1) is unknown
    // to this one (which only holds index 0).
    let other = live_multi(0);
    other.register("a", PsiRunner::nfv_default(&stored)).unwrap();
    let foreign = other.register("b", PsiRunner::nfv_default(&stored)).unwrap();
    assert_eq!(
        live.apply_update(foreign, &GraphUpdate::new(vec![])),
        Err(ApplyError::Route(RouteError::UnknownGraph))
    );
    assert_eq!(
        live.apply_update(id, &GraphUpdate::new(vec![UpdateOp::RemoveEdge { u: n, v: n + 1 }])),
        Err(ApplyError::Update(psi_core::UpdateError::UnknownNode(n)))
    );
    // A rejected batch is atomic: nothing landed, nothing was counted.
    assert_eq!(live.graph_stats(id).unwrap().updates_applied, 0);
}

#[test]
fn save_then_load_replays_post_save_updates_from_the_wal() {
    let dir = std::env::temp_dir().join(format!("psi-live-graph-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let stored = stored_graph(53);
    let warm = live_multi(0);
    let id = warm.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    for seed in 0..4 {
        warm.submit(id, &grown_query(&stored, 4, seed)).unwrap();
    }
    let report = warm.save_graph(id, &dir).expect("save");

    // Post-save mutations land only in the WAL: a fresh label wired
    // into node 0 that no pre-save state knows about.
    let n = stored.node_count() as u32;
    let fresh_label = 7u32;
    warm.apply_update(id, &GraphUpdate::new(vec![UpdateOp::AddNode { label: fresh_label }]))
        .unwrap();
    warm.apply_update(id, &GraphUpdate::new(vec![UpdateOp::AddEdge { u: 0, v: n, label: None }]))
        .unwrap();
    let probe = graph_from_parts(&[stored.label(0), fresh_label], &[(0, 1)]);
    assert!(warm.submit(id, &probe).unwrap().found());

    let cold = live_multi(0);
    let load = cold.load_graph(&report.snapshot_path).expect("load");
    assert_eq!(load.replayed_updates, 2, "both post-save batches replay");
    assert!(
        cold.submit(load.graph, &probe).unwrap().found(),
        "the replayed updates are visible to cold queries"
    );
    // The mutated views agree exactly.
    let warm_view = warm.runner(id).unwrap().materialized();
    let cold_view = cold.runner(load.graph).unwrap().materialized();
    assert_eq!(warm_view.node_count(), cold_view.node_count());
    assert_eq!(warm_view.edge_count(), cold_view.edge_count());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn saving_a_mutated_tenant_snapshots_the_folded_graph() {
    let dir = std::env::temp_dir().join(format!("psi-live-graph-foldsave-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let stored = stored_graph(67);
    let warm = live_multi(0);
    let id = warm.register("live", PsiRunner::nfv_default(&stored)).unwrap();
    warm.submit(id, &grown_query(&stored, 4, 1)).unwrap();
    warm.apply_update(id, &GraphUpdate::new(vec![UpdateOp::AddNode { label: 8 }])).unwrap();

    // save_graph folds the overlay first: the snapshot is a flat graph
    // at a bumped epoch, and the WAL starts empty.
    let report = warm.save_graph(id, &dir).expect("save");
    assert_eq!(warm.epoch(id), Some(1), "save compacts the pending overlay");
    let cold = live_multi(0);
    let load = cold.load_graph(&report.snapshot_path).expect("load");
    assert_eq!(load.replayed_updates, 0, "the fold left nothing to replay");
    assert_eq!(
        cold.runner(load.graph).unwrap().live_graph().node_count(),
        stored.node_count() + 1,
        "the snapshot carries the mutated (folded) graph"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn races_pinned_before_a_swap_finish_against_their_epoch() {
    // A direct runner-level pin: take a view, let updates + compaction
    // land, and check the pin still answers from its epoch while the
    // runner serves the new one.
    let stored = stored_graph(71);
    let runner = PsiRunner::nfv_default(&stored);
    let pin = runner.pinned();
    assert_eq!(pin.epoch(), 0);

    let n = stored.node_count() as u32;
    runner
        .apply_update(&GraphUpdate::new(vec![
            UpdateOp::AddNode { label: 9 },
            UpdateOp::AddEdge { u: 0, v: n, label: None },
        ]))
        .unwrap();
    runner.compact().expect("pending ops fold");
    assert_eq!(runner.epoch(), 1);

    // The pinned view still sees the registration-time graph...
    assert_eq!(pin.as_view().node_count(), stored.node_count());
    assert!(!pin.as_view().has_edge(0, n));
    // ...while the live view serves the mutated epoch.
    let live = runner.pinned();
    assert_eq!(live.epoch(), 1);
    assert_eq!(live.as_view().node_count(), stored.node_count() + 1);
    assert!(live.as_view().has_edge(0, n));
}
