//! The waiting room end to end: a non-blocking burst far over the race
//! limit completes with zero refusals, the overflow visibly parks, and
//! the room's depth and wait-time surface in stats and the Prometheus
//! scrape.

use psi_core::{PsiRunner, RaceBudget};
use psi_engine::{CompletionQueue, Engine, EngineConfig, QueryRequest, Submit};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Grows a small connected query from a random stored-graph node, so the
/// query is guaranteed to embed.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

#[test]
fn four_x_over_limit_burst_parks_instead_of_bouncing() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
    // Dense, label-poor graph: a large uncapped query on it is an
    // explosive enumeration that cannot finish before it is cancelled.
    let stored = random_connected_graph(60, 400, &labels, &mut rng);
    // Cache and fast path off so every submission needs a race slot —
    // 16 non-blocking submissions against 4 slots is a 4x burst.
    let races = 4;
    let burst = 4 * races;
    let engine = Engine::new(
        PsiRunner::nfv_default(&stored),
        EngineConfig {
            workers: 2,
            max_concurrent_races: races,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            default_budget: RaceBudget::decision(),
            ..EngineConfig::default()
        },
    );

    // Pin every slot with an explosive uncapped race first — admission
    // is synchronous, so the four permits are held the moment these
    // return. The burst below then *must* park: no slot can free while
    // the pins are alive, which makes the parked count deterministic
    // instead of racing the submission loop against fast finalizes.
    let pins: Vec<_> = (0..races)
        .map(|i| {
            let query = grown_query(&stored, 10, 500 + i as u64);
            engine
                .submit_nonblocking(
                    QueryRequest::new(query).budget(RaceBudget::with_max_matches(usize::MAX)),
                )
                .expect("idle engine admits the pins")
        })
        .collect();

    let queue = CompletionQueue::new();
    let tickets: Vec<_> = (0..burst - races)
        .map(|i| {
            let query = grown_query(&stored, 4, 900 + i as u64);
            engine
                .submit_into(QueryRequest::new(query).tag(i as u64), &queue)
                .expect("the waiting room absorbs the whole burst")
        })
        .collect();

    // The overflow is parked right now: the pins hold every slot, so
    // all twelve burst submissions sit in the room.
    let depth_during = engine.stats().waiting_room_depth;
    // Cancel the pins; their slots free and the room drains in FIFO
    // order through the grant chain.
    drop(pins);

    let mut seen = vec![false; tickets.len()];
    for _ in 0..tickets.len() {
        let tag = queue.wait() as usize;
        assert!(!seen[tag], "each ticket completes exactly once");
        seen[tag] = true;
        let response = tickets[tag].poll().expect("queued tag implies completion");
        assert!(response.conclusive);
        assert!(response.found(), "grown queries embed");
    }

    let stats = engine.stats();
    assert_eq!(stats.queries, burst as u64, "every burst query served");
    assert_eq!(stats.busy_rejections, 0, "nothing bounced with Busy");
    assert_eq!(stats.queue_full_rejections, 0);
    assert!(
        stats.parked >= (burst - races) as u64,
        "at least the overflow parked (parked = {}, overflow = {})",
        stats.parked,
        burst - races
    );
    assert!(depth_during > 0, "the room was visibly occupied while the burst was in flight");
    assert_eq!(stats.waiting_room_depth, 0, "the room drains with the burst");
    assert!(
        stats.park_wait_p99 >= stats.park_wait_p50,
        "park-wait percentiles come from a real histogram"
    );

    // The same story renders for a scraper: depth gauge, park counter,
    // park-wait histogram.
    let scrape = engine.exporter().render_prometheus();
    for family in ["psi_waiting_room_depth", "psi_parked_total", "psi_park_wait_us"] {
        assert!(scrape.contains(family), "scrape must expose {family}:\n{scrape}");
    }
    assert!(
        scrape.contains("psi_waiting_room_depth 0"),
        "the drained room scrapes as depth 0:\n{scrape}"
    );
}

#[test]
fn zero_capacity_room_restores_hard_busy() {
    // waiting_room: 0 is the pre-room contract: a saturated engine
    // refuses non-blocking submissions instead of parking them.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let engine = Engine::new(
        PsiRunner::nfv_default(&stored),
        EngineConfig {
            workers: 1,
            max_concurrent_races: 1,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            // Uncapped complete search: the race cannot conclude before
            // the probe below, so the slot stays visibly held.
            default_budget: RaceBudget::with_max_matches(usize::MAX),
            waiting_room: 0,
            ..EngineConfig::default()
        },
    );
    // An explosive query pins the only slot; with no room, the next
    // submission must bounce.
    let slow = grown_query(&stored, 10, 5);
    let held = engine.submit_nonblocking(QueryRequest::new(slow)).expect("idle engine admits");
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!held.is_complete(), "explosive search cannot conclude this fast");
    let probe = grown_query(&stored, 4, 6);
    let refused = engine.submit_nonblocking(QueryRequest::new(probe));
    assert!(refused.is_err(), "no room, no parking: saturated engine refuses");
    assert_eq!(engine.stats().parked, 0);
    assert!(engine.stats().busy_rejections >= 1);
    drop(held); // cancels the pinned race
}
