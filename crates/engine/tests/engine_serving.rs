//! Integration: the engine serves concurrent traffic with the same
//! answers as one-shot `PsiRunner::race`, the result cache is sound and
//! observable, admission backpressure works, and queueing delay counts
//! against the race budget.

use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{AdmissionError, Engine, EngineConfig, ServePath, SubmitError};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use psi_matchers::matcher::is_valid_embedding;
use psi_matchers::Algorithm;
use psi_rewrite::Rewriting;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

fn stored_graph(seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
    random_connected_graph(60, 140, &labels, &mut rng)
}

/// Grows a small connected query from a random stored-graph node, so the
/// query is guaranteed to embed.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

fn sorted_embeddings(mut embs: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    embs.sort();
    embs
}

/// A config with the predictor fast path disabled so every miss races.
fn race_only(workers: usize, races: usize, budget: RaceBudget) -> EngineConfig {
    EngineConfig {
        workers,
        max_concurrent_races: races,
        predictor_confidence: 2.0,
        default_budget: budget,
        ..EngineConfig::default()
    }
}

#[test]
fn concurrent_submissions_match_serial_races() {
    let g = stored_graph(11);
    let config = PsiConfig::gql_spa_orig_dnd();
    let runner = PsiRunner::new(Arc::new(g.clone()), config.clone());

    // Complete searches (no embedding cap) have a unique answer set, so
    // serial and concurrent executions must agree exactly.
    let budget = RaceBudget::with_max_matches(usize::MAX);
    let queries: Vec<Graph> =
        (0..24).map(|i| grown_query(&g, 4 + (i % 3), 1000 + i as u64)).collect();
    let serial: Vec<(bool, usize, Vec<Vec<u32>>)> = queries
        .iter()
        .map(|q| {
            let outcome = runner.race(q, budget.clone());
            let w = outcome.winner().expect("serial race concludes");
            (outcome.found(), w.result.num_matches, sorted_embeddings(w.result.embeddings.clone()))
        })
        .collect();

    // Pool (3 workers) far smaller than queries × variants (24 × 4).
    let engine = Arc::new(Engine::new(
        PsiRunner::new(Arc::new(g.clone()), config),
        EngineConfig { cache_capacity: 0, ..race_only(3, 2, budget) },
    ));
    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .iter()
            .map(|q| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || engine.submit(q))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (i, (response, expected)) in responses.iter().zip(&serial).enumerate() {
        assert!(response.conclusive, "query {i} must conclude");
        assert_eq!(response.found(), expected.0, "query {i} decision");
        assert_eq!(response.num_matches(), expected.1, "query {i} match count");
        assert_eq!(
            sorted_embeddings(response.answer.embeddings.clone()),
            expected.2,
            "query {i} embedding set"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, 24);
    assert_eq!(stats.races, 24);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn cache_hits_return_the_raced_answer() {
    let g = stored_graph(23);
    let runner = PsiRunner::new(
        Arc::new(g.clone()),
        PsiConfig::rewritings(Algorithm::GraphQl, [Rewriting::Orig, Rewriting::Ilf]),
    );
    let budget = RaceBudget::with_max_matches(usize::MAX);
    let query = grown_query(&g, 5, 7);
    let fresh = runner.race(&query, budget.clone());
    let fresh_w = fresh.winner().expect("fresh race concludes");

    let engine = Engine::new(
        PsiRunner::new(
            Arc::new(g.clone()),
            PsiConfig::rewritings(Algorithm::GraphQl, [Rewriting::Orig, Rewriting::Ilf]),
        ),
        race_only(2, 2, budget),
    );
    let cold = engine.submit(&query);
    assert_eq!(cold.path, ServePath::Race);
    let warm = engine.submit(&query);
    assert_eq!(warm.path, ServePath::CacheHit);

    // The cached answer equals both the engine's cold answer and an
    // independent fresh race.
    assert_eq!(warm.found(), cold.found());
    assert_eq!(warm.num_matches(), cold.num_matches());
    assert_eq!(warm.num_matches(), fresh_w.result.num_matches);
    assert_eq!(
        sorted_embeddings(warm.answer.embeddings.clone()),
        sorted_embeddings(fresh_w.result.embeddings.clone()),
    );

    let stats = engine.stats();
    assert_eq!(stats.queries, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
    assert!((stats.hit_rate - 0.5).abs() < 1e-12);
    assert_eq!(stats.races, 1);
}

#[test]
fn renumbered_query_hits_the_cache() {
    // Distinct labels let canonicalization fully normalize the numbering.
    let g = graph_from_parts(&[0, 1, 2, 3], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let engine = Engine::new(
        PsiRunner::nfv_default(&g),
        race_only(2, 2, RaceBudget::with_max_matches(usize::MAX)),
    );
    let q1 = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
    let q2 = graph_from_parts(&[2, 1, 0], &[(2, 1), (1, 0)]); // same path, renumbered
    let a1 = engine.submit(&q1);
    let a2 = engine.submit(&q2);
    assert_eq!(a1.path, ServePath::Race);
    assert_eq!(a2.path, ServePath::CacheHit);
    assert_eq!(a1.num_matches(), a2.num_matches());
    // The hit's embeddings must be valid in *q2's own* numbering, not the
    // numbering of the query that originally populated the entry.
    assert!(a2.found());
    for emb in &a2.answer.embeddings {
        assert!(
            is_valid_embedding(&q2, &g, emb),
            "cached embedding {emb:?} must be translated into q2's numbering"
        );
    }
    for emb in &a1.answer.embeddings {
        assert!(is_valid_embedding(&q1, &g, emb));
    }
}

/// A query/stored-graph pair whose complete search is combinatorially
/// explosive: single-label dense graph, path query, no cap.
fn explosive_setup() -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let query = grown_query(&stored, 10, 5);
    (stored, query)
}

#[test]
fn try_submit_bounces_when_at_capacity_with_no_waiting_room() {
    let (stored, slow_query) = explosive_setup();
    let engine = Arc::new(Engine::new(
        PsiRunner::nfv_default(&stored),
        EngineConfig {
            // Restore the pre-waiting-room contract: over-limit
            // non-blocking submissions bounce instead of parking.
            waiting_room: 0,
            ..race_only(
                1,
                1,
                RaceBudget::with_max_matches(usize::MAX).timeout(Duration::from_millis(600)),
            )
        },
    ));
    std::thread::scope(|scope| {
        let background = Arc::clone(&engine);
        let sq = slow_query.clone();
        scope.spawn(move || {
            let _ = background.submit(&sq);
        });
        // Let the background race occupy the single admission slot, then
        // expect Busy from the non-blocking path. Probe a *different*
        // query so the cache cannot answer it.
        std::thread::sleep(Duration::from_millis(150));
        let probe = grown_query(&stored, 3, 99);
        match engine.try_submit(&probe).unwrap_err() {
            SubmitError::Admission(AdmissionError::Busy { retry_hint }) => {
                // The hint is the engine's p50 latency clamped to a sane
                // band — never zero, never unbounded.
                assert!(retry_hint >= Duration::from_micros(200));
                assert!(retry_hint <= Duration::from_millis(100));
            }
            other => panic!("expected Busy at capacity, got {other}"),
        }
    });
    assert!(engine.stats().busy_rejections >= 1);
    assert_eq!(engine.stats().parked, 0, "waiting_room: 0 never parks");
    // Once drained, the same probe is served.
    let probe = grown_query(&stored, 3, 99);
    assert!(engine.try_submit(&probe).is_ok());
}

#[test]
fn queueing_delay_counts_against_the_budget() {
    let (stored, slow_query) = explosive_setup();
    // One worker, two admission slots: the second query is admitted
    // immediately but its tasks queue behind the slow race's tasks.
    let engine = Arc::new(Engine::new(
        PsiRunner::nfv_default(&stored),
        race_only(
            1,
            2,
            RaceBudget::with_max_matches(usize::MAX).timeout(Duration::from_millis(700)),
        ),
    ));
    let trivial = grown_query(&stored, 4, 17);
    std::thread::scope(|scope| {
        let background = Arc::clone(&engine);
        let sq = slow_query.clone();
        scope.spawn(move || {
            let _ = background.submit(&sq);
        });
        std::thread::sleep(Duration::from_millis(100));
        // Trivial query, but its 50 ms budget expires while queued behind
        // the ~700 ms race on the single worker. Deadlines anchor at
        // admission, so it must come back inconclusive — if deadlines
        // were anchored at pool start it would trivially succeed.
        let response = engine.submit_with_budget(
            &trivial,
            RaceBudget::decision().timeout(Duration::from_millis(50)),
        );
        assert!(
            !response.conclusive,
            "queued-past-deadline query must not conclude (path {:?})",
            response.path
        );
        assert!(!response.found());
    });
    // Served directly (idle engine), the same query with the same budget
    // succeeds comfortably.
    let direct = engine
        .submit_with_budget(&trivial, RaceBudget::decision().timeout(Duration::from_millis(50)));
    assert!(direct.conclusive);
}

#[test]
fn fast_path_takes_over_after_training_and_falls_back_safely() {
    let g = stored_graph(31);
    let runner = PsiRunner::new(Arc::new(g.clone()), PsiConfig::gql_spa_orig());
    let engine = Engine::new(
        runner,
        EngineConfig {
            workers: 2,
            max_concurrent_races: 2,
            cache_capacity: 0, // force every submit through predict/race
            predictor_min_observations: 8,
            predictor_confidence: 0.6,
            default_budget: RaceBudget::decision(),
            ..EngineConfig::default()
        },
    );
    // Training phase: all races (predictor below min observations).
    for i in 0..8 {
        let q = grown_query(&g, 4, 200 + i);
        assert_eq!(engine.submit(&q).path, ServePath::Race);
    }
    // Serving phase: similar queries should now ride the fast path at
    // least sometimes, and answers must stay correct (these queries are
    // grown from the stored graph, so `found` must hold).
    let mut fast = 0;
    for i in 0..12 {
        let q = grown_query(&g, 4, 400 + i);
        let r = engine.submit(&q);
        assert!(r.conclusive);
        assert!(r.found(), "grown query {i} must embed");
        if r.path == ServePath::FastPath {
            fast += 1;
        }
    }
    let stats = engine.stats();
    assert_eq!(stats.fast_paths, fast);
    assert!(fast > 0, "confident predictor should serve some fast paths");
    assert_eq!(stats.queries, 20);
}
