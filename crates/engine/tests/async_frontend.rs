//! The ticket frontend: non-blocking submission returns a completion
//! handle, dropping it cancels the race and frees pool slots, timed-out
//! waits don't poison the slot, completion queues drain many tickets
//! from one thread — and the blocking legacy methods are provably the
//! ticket path plus `wait`.

use proptest::prelude::*;
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{
    AdmissionError, CompletionQueue, Engine, EngineConfig, MultiEngine, MultiEngineConfig,
    QueryRequest, RaceStrategy, RouteError, ServePath, Submit, SubmitError,
};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let target = random_connected_graph(16, 30, &labels, &mut rng);
    let query = random_connected_graph(4, 5, &labels, &mut rng);
    (query, target)
}

/// Grows a small connected query from a random stored-graph node, so the
/// query is guaranteed to embed.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

/// A query/stored-graph pair whose complete search is combinatorially
/// explosive: single-label dense graph, path query, no cap — no variant
/// can conclude before any realistic deadline.
fn explosive_setup() -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let query = grown_query(&stored, 10, 5);
    (stored, query)
}

/// An engine whose every miss races (no cache, no fast path).
fn race_only(stored: &Graph, workers: usize, races: usize, budget: RaceBudget) -> Engine {
    race_only_with_room(stored, workers, races, budget, EngineConfig::default().waiting_room)
}

/// Like [`race_only`], with an explicit waiting-room bound (0 restores
/// hard `Busy` refusals on the non-blocking path).
fn race_only_with_room(
    stored: &Graph,
    workers: usize,
    races: usize,
    budget: RaceBudget,
    waiting_room: usize,
) -> Engine {
    Engine::new(
        PsiRunner::nfv_default(stored),
        EngineConfig {
            workers,
            max_concurrent_races: races,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            default_budget: budget,
            waiting_room,
            ..EngineConfig::default()
        },
    )
}

#[test]
fn dropping_a_ticket_cancels_the_race_and_frees_the_slot() {
    let (stored, slow_query) = explosive_setup();
    // NO wall-clock timeout: without cancellation this race would occupy
    // the single worker and the single admission slot essentially
    // forever, and the probe loop below would never admit. Waiting room
    // disabled so capacity exhaustion is *observable* as `Busy`.
    let engine = race_only_with_room(&stored, 1, 1, RaceBudget::with_max_matches(usize::MAX), 0);
    let ticket = engine
        .submit_nonblocking(QueryRequest::new(slow_query))
        .expect("idle engine admits immediately");
    // Let the race occupy the worker, then confirm the engine is full.
    std::thread::sleep(Duration::from_millis(100));
    assert!(!ticket.is_complete(), "explosive search cannot conclude this fast");
    let probe = grown_query(&stored, 3, 99);
    assert!(
        matches!(
            engine.submit_nonblocking(QueryRequest::new(probe.clone())).unwrap_err(),
            SubmitError::Admission(AdmissionError::Busy { .. })
        ),
        "the slow race must hold the only admission slot"
    );

    // Dropping the ticket cancels the race: its entrants unwind at the
    // next budget check, the admission slot and the worker free, and the
    // probe gets served — no leaked workers, no leaked slots.
    drop(ticket);
    let deadline = Instant::now() + Duration::from_secs(10);
    let response = loop {
        match engine
            .submit_nonblocking(QueryRequest::new(probe.clone()).budget(RaceBudget::decision()))
        {
            Ok(t) => break t.wait(),
            Err(SubmitError::Admission(AdmissionError::Busy { .. })) => {
                assert!(
                    Instant::now() < deadline,
                    "dropped ticket must free its admission slot promptly"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(other) => panic!("unexpected engine error: {other}"),
        }
    };
    assert!(response.conclusive, "the freed worker must serve the probe to completion");
    assert!(response.found());
    let stats = engine.stats();
    assert!(stats.inconclusive >= 1, "the cancelled race finalizes as inconclusive");
}

#[test]
fn wait_timeout_expires_without_poisoning_the_ticket() {
    let (stored, slow_query) = explosive_setup();
    let race_budget = Duration::from_millis(500);
    let engine =
        race_only(&stored, 1, 1, RaceBudget::with_max_matches(usize::MAX).timeout(race_budget));
    let started = Instant::now();
    let ticket =
        engine.submit_nonblocking(QueryRequest::new(slow_query)).expect("idle engine admits");
    // The wait gives up long before the race budget...
    assert!(ticket.wait_timeout(Duration::from_millis(30)).is_none());
    assert!(started.elapsed() < race_budget, "wait_timeout must return before the race budget");
    assert!(!ticket.is_complete());
    // ...and the ticket is untouched: a later wait still completes with
    // the race's real (here: timed-out, inconclusive) verdict.
    let response = ticket.wait_timeout(race_budget * 4).expect("race ends at its deadline");
    assert!(!response.conclusive, "explosive search must time out");
    assert!(!response.found());
}

#[test]
fn wait_timeout_returns_completed_answers() {
    let (query, target) = pair(17);
    let engine = race_only(&target, 2, 2, RaceBudget::decision());
    let ticket = engine.submit_nonblocking(QueryRequest::new(query)).expect("idle engine admits");
    let response = ticket.wait_timeout(Duration::from_secs(30)).expect("tiny race concludes");
    assert!(response.conclusive);
    assert_eq!(response.path, ServePath::Race);
}

#[test]
fn completion_queue_drains_many_tickets_from_one_thread() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
    let stored = random_connected_graph(60, 140, &labels, &mut rng);
    // Admission far above the worker count: all 24 queries are in flight
    // at once, racing 2-at-a-time on the pool, no client thread blocked.
    let engine = race_only(&stored, 2, 32, RaceBudget::decision());
    let queue = CompletionQueue::new();
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            let query = grown_query(&stored, 4, 500 + i);
            engine
                .submit_into(QueryRequest::new(query).tag(i), &queue)
                .expect("admission above the batch size")
        })
        .collect();
    let mut seen = vec![false; tickets.len()];
    for _ in 0..tickets.len() {
        let tag = queue.wait() as usize;
        assert!(!seen[tag], "each ticket completes exactly once");
        seen[tag] = true;
        let response = tickets[tag].poll().expect("queued tag implies completion");
        assert!(response.conclusive);
        assert!(response.found(), "grown queries embed");
    }
    assert!(seen.iter().all(|&s| s));
    assert_eq!(engine.stats().races, 24);
}

#[test]
fn multi_engine_routes_tickets_and_reports_routing_errors() {
    let (query, target) = pair(23);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: EngineConfig { default_budget: RaceBudget::decision(), ..EngineConfig::default() },
    });
    let id = multi.register("only", PsiRunner::nfv_default(&target)).expect("first registration");

    // A request without a graph cannot be routed...
    assert_eq!(
        multi.submit_nonblocking(QueryRequest::new(query.clone())).unwrap_err(),
        SubmitError::Route(RouteError::NoGraph)
    );
    // ...nor can one naming a graph that was never registered.
    let bogus = multi.graph_id("nope");
    assert_eq!(bogus, None);
    // A routed ticket serves normally and per-graph stats account for it.
    let ticket =
        multi.submit_nonblocking(QueryRequest::new(query).graph(id)).expect("routed request");
    let response = ticket.wait();
    assert!(response.conclusive);
    assert_eq!(multi.graph_stats(id).unwrap().queries, 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The legacy blocking call and the ticket path agree verdict for
    /// verdict — they *are* the same admission code path, and this pins
    /// it: found/not-found, conclusiveness and (complete-search) match
    /// counts all coincide, under both race strategies.
    #[test]
    fn prop_blocking_submit_equals_ticket_wait(seed in 0u64..20_000, staged in 0usize..2) {
        let (query, target) = pair(seed);
        let strategy = if staged == 1 {
            RaceStrategy::TopK { k: 1, escalate_after: 0.5 }
        } else {
            RaceStrategy::Full
        };
        let make_engine = || {
            Engine::new(
                PsiRunner::new(Arc::new(target.clone()), PsiConfig::gql_spa_orig_dnd()),
                EngineConfig {
                    workers: 2,
                    max_concurrent_races: 2,
                    cache_capacity: 0,
                    predictor_confidence: 2.0,
                    predictor_min_observations: 0,
                    race_strategy: strategy,
                    // Complete searches have a unique answer set, so the
                    // two paths must agree exactly, not just on `found`.
                    default_budget: RaceBudget::with_max_matches(usize::MAX),
                    ..EngineConfig::default()
                },
            )
        };
        let blocking = make_engine().submit(&query);
        let ticketed = make_engine()
            .submit_nonblocking(QueryRequest::new(query.clone()))
            .expect("idle engine admits")
            .wait();
        prop_assert!(blocking.conclusive, "tiny inputs must conclude");
        prop_assert!(ticketed.conclusive);
        prop_assert_eq!(blocking.found(), ticketed.found());
        prop_assert_eq!(blocking.num_matches(), ticketed.num_matches());
        prop_assert_eq!(blocking.path, ServePath::Race);
        prop_assert_eq!(ticketed.path, ServePath::Race);
    }
}
