//! Multi-graph serving integration: per-graph cache partitions never
//! collide and evict independently, queueing delay under a saturated
//! shared pool still counts against each query's race budget no matter
//! which graph submitted it, and a flooding tenant cannot wedge a light
//! one.

use psi_core::{PsiRunner, RaceBudget};
use psi_engine::{EngineConfig, MultiEngine, MultiEngineConfig, ServePath};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stored_graph(seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
    random_connected_graph(60, 140, &labels, &mut rng)
}

/// Grows a small connected query from a stored-graph node, so the query
/// is guaranteed to embed in that graph.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

/// Tenant template with the predictor disabled so every miss races.
fn race_only_tenant() -> EngineConfig {
    EngineConfig {
        predictor_confidence: 2.0,
        default_budget: RaceBudget::decision(),
        ..EngineConfig::default()
    }
}

#[test]
fn identical_queries_on_different_graphs_never_collide() {
    // Graph A contains the 0–1 edge pattern; graph B has no label-0 node
    // at all. Same query, opposite answers — a cache keyed only by the
    // query (ignoring the graph) would leak A's answer to B.
    let a_graph = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
    let b_graph = graph_from_parts(&[2, 3, 2], &[(0, 1), (1, 2)]);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: race_only_tenant(),
    });
    let a = multi.register("has-pattern", PsiRunner::nfv_default(&a_graph)).unwrap();
    let b = multi.register("lacks-pattern", PsiRunner::nfv_default(&b_graph)).unwrap();

    let query = graph_from_parts(&[0, 1], &[(0, 1)]);
    let a_cold = multi.submit(a, &query).unwrap();
    let b_cold = multi.submit(b, &query).unwrap();
    assert!(a_cold.found());
    assert!(!b_cold.found());

    // Replays hit each graph's own partition and keep per-graph answers.
    let a_warm = multi.submit(a, &query).unwrap();
    let b_warm = multi.submit(b, &query).unwrap();
    assert_eq!(a_warm.path, ServePath::CacheHit);
    assert_eq!(b_warm.path, ServePath::CacheHit);
    assert!(a_warm.found(), "A's cached answer must stay A's");
    assert!(!b_warm.found(), "B's cached answer must not be polluted by A's");

    let a_stats = multi.graph_stats(a).unwrap();
    let b_stats = multi.graph_stats(b).unwrap();
    assert_eq!(a_stats.cache_hits, 1);
    assert_eq!(b_stats.cache_hits, 1);
    assert_eq!(multi.stats().cache_hits, 2);
}

#[test]
fn per_graph_eviction_leaves_other_graphs_hot_entries_alone() {
    let a_graph = stored_graph(41);
    let b_graph = stored_graph(43);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: race_only_tenant(),
    });
    // Tiny single-shard caches so eviction is easy to force.
    let tiny = EngineConfig { cache_shards: 1, cache_capacity: 2, ..race_only_tenant() };
    let a = multi
        .register_with_config(
            "hot-tenant",
            Arc::new(PsiRunner::nfv_default(&a_graph)),
            tiny.clone(),
        )
        .unwrap();
    let b = multi
        .register_with_config("churny-tenant", Arc::new(PsiRunner::nfv_default(&b_graph)), tiny)
        .unwrap();

    // Prime A's hot entry and B's first entry.
    let hot = grown_query(&a_graph, 4, 7);
    assert_eq!(multi.submit(a, &hot).unwrap().path, ServePath::Race);
    assert_eq!(multi.submit(a, &hot).unwrap().path, ServePath::CacheHit);
    let b_first = grown_query(&b_graph, 4, 100);
    assert_eq!(multi.submit(b, &b_first).unwrap().path, ServePath::Race);

    // Flood B with distinct queries, far past its 2-entry capacity.
    for seed in 101..113 {
        let q = grown_query(&b_graph, 4, seed);
        multi.submit(b, &q).unwrap();
    }

    // B's own earliest entry has churned out...
    assert_eq!(
        multi.submit(b, &b_first).unwrap().path,
        ServePath::Race,
        "B's first entry should have been evicted by B's own churn"
    );
    // ...but A's hot entry is untouched: partitions evict independently.
    assert_eq!(
        multi.submit(a, &hot).unwrap().path,
        ServePath::CacheHit,
        "B's eviction churn must never evict A's hot entry"
    );
}

/// A stored-graph/query pair whose complete search is combinatorially
/// explosive: single-label dense graph, path query, no embedding cap.
fn explosive_setup() -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let query = grown_query(&stored, 10, 5);
    (stored, query)
}

/// The deadline-accounting regression (ISSUE 2 satellite): when the one
/// shared pool is saturated by graph A's race, a query for graph B that
/// spends its whole budget queued must come back inconclusive — its
/// deadline anchors at submission, so cross-graph queueing delay counts
/// against the race budget exactly as single-graph queueing does.
#[test]
fn queueing_delay_counts_against_budget_across_graphs() {
    let (heavy_graph, explosive) = explosive_setup();
    let light_graph = stored_graph(59);
    // One worker serializes all pool tasks; two admission slots let the
    // light query through the gate immediately so only *pool* queueing
    // delays it.
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 1,
        max_concurrent_races: 2,
        tenant: race_only_tenant(),
    });
    let heavy = multi.register("heavy", PsiRunner::nfv_default(&heavy_graph)).unwrap();
    let light = multi.register("light", PsiRunner::nfv_default(&light_graph)).unwrap();

    let trivial = grown_query(&light_graph, 4, 17);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _ = multi.submit_with_budget(
                heavy,
                &explosive,
                RaceBudget::with_max_matches(usize::MAX).timeout(Duration::from_millis(700)),
            );
        });
        std::thread::sleep(Duration::from_millis(100));
        // 50 ms budget, but the single worker is pinned by the heavy
        // graph's race for ~700 ms: the budget expires in the queue.
        let response = multi
            .submit_with_budget(
                light,
                &trivial,
                RaceBudget::decision().timeout(Duration::from_millis(50)),
            )
            .unwrap();
        assert!(
            !response.conclusive,
            "light graph's queued-past-deadline query must not conclude (path {:?})",
            response.path
        );
        assert!(!response.found());
    });
    // On an idle pool the same query and budget succeed comfortably.
    let direct = multi
        .submit_with_budget(
            light,
            &trivial,
            RaceBudget::decision().timeout(Duration::from_millis(50)),
        )
        .unwrap();
    assert!(direct.conclusive, "idle-engine control must conclude");
}

#[test]
fn flooding_tenant_does_not_wedge_a_light_tenant() {
    let (heavy_graph, explosive) = explosive_setup();
    let light_graph = stored_graph(61);
    let multi = Arc::new(MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: race_only_tenant(),
    }));
    let heavy = multi.register("heavy", PsiRunner::nfv_default(&heavy_graph)).unwrap();
    let light = multi.register("light", PsiRunner::nfv_default(&light_graph)).unwrap();

    let start = Instant::now();
    std::thread::scope(|scope| {
        // The heavy tenant floods: a stream of explosive races, each
        // capped at 150 ms, submitted back-to-back from two clients.
        for _ in 0..2 {
            let multi = Arc::clone(&multi);
            let explosive = explosive.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    let _ = multi.submit_with_budget(
                        heavy,
                        &explosive,
                        RaceBudget::with_max_matches(usize::MAX)
                            .timeout(Duration::from_millis(150)),
                    );
                }
            });
        }
        // Meanwhile the light tenant keeps submitting trivial queries;
        // all of them must be served (no starvation, no deadlock).
        let mut served = 0;
        for seed in 0..10 {
            let q = grown_query(&light_graph, 4, 300 + seed);
            let r = multi.submit(light, &q).unwrap();
            if r.conclusive {
                served += 1;
            }
        }
        assert_eq!(served, 10, "every light-tenant query must conclude");
    });
    assert!(start.elapsed() < Duration::from_secs(30), "mixed flood must drain without wedging");
    let light_stats = multi.graph_stats(light).unwrap();
    assert_eq!(light_stats.queries, 10);
    assert_eq!(multi.graph_stats(heavy).unwrap().queries, 8);
    assert_eq!(multi.stats().queries, 18);
}

#[test]
fn aggregate_stats_sum_per_graph_stats() {
    let g1 = stored_graph(71);
    let g2 = stored_graph(73);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: race_only_tenant(),
    });
    let a = multi.register("one", PsiRunner::nfv_default(&g1)).unwrap();
    let b = multi.register("two", PsiRunner::nfv_default(&g2)).unwrap();
    for seed in 0..5 {
        multi.submit(a, &grown_query(&g1, 4, seed)).unwrap();
    }
    for seed in 0..3 {
        multi.submit(b, &grown_query(&g2, 4, 50 + seed)).unwrap();
    }
    let (sa, sb, agg) =
        (multi.graph_stats(a).unwrap(), multi.graph_stats(b).unwrap(), multi.stats());
    assert_eq!(sa.queries, 5);
    assert_eq!(sb.queries, 3);
    assert_eq!(agg.queries, 8);
    assert_eq!(agg.races, sa.races + sb.races);
    assert_eq!(agg.cache_misses, sa.cache_misses + sb.cache_misses);
    assert!(agg.latency_p50 <= agg.latency_p99);
    assert!(agg.throughput_qps > 0.0);
}
