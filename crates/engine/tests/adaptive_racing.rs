//! Adaptive top-K racing: staged escalation preserves the full race's
//! verdicts, pruning actually skips entrants once the predictor has
//! evidence, and escalation respects the original admission-anchored
//! deadline.

use proptest::prelude::*;
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{Engine, EngineConfig, RaceStrategy, ServePath};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::Graph;
use psi_matchers::bruteforce;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let target = random_connected_graph(16, 30, &labels, &mut rng);
    let query = random_connected_graph(4, 5, &labels, &mut rng);
    (query, target)
}

/// An engine whose every miss races (no cache, no fast path) under the
/// given strategy, with the predictor training gate opened so TopK is
/// active from the first query.
fn racing_engine(target: &Graph, strategy: RaceStrategy) -> Engine {
    Engine::new(
        PsiRunner::new(Arc::new(target.clone()), PsiConfig::gql_spa_orig_dnd()),
        EngineConfig {
            workers: 2,
            max_concurrent_races: 2,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            predictor_min_observations: 0,
            race_strategy: strategy,
            default_budget: RaceBudget::decision(),
            ..EngineConfig::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A TopK race with staged escalation reaches the same conclusive
    /// found/not-found verdict as a Full race on the same query — and
    /// both match brute-force ground truth. Escalation fractions cover
    /// immediate (0.0), mid-budget, and heat-exhaustion-only (1.0).
    #[test]
    fn prop_topk_verdict_equals_full_race(seed in 0u64..20_000, stage in 0usize..3) {
        let (query, target) = pair(seed);
        let truth = bruteforce::contains(&query, &target);
        let escalate_after = [0.0, 0.5, 1.0][stage];

        let full = racing_engine(&target, RaceStrategy::Full);
        let topk = racing_engine(&target, RaceStrategy::TopK { k: 1, escalate_after });

        let full_response = full.submit(&query);
        let topk_response = topk.submit(&query);
        prop_assert!(full_response.conclusive, "tiny inputs must conclude");
        prop_assert!(topk_response.conclusive, "staged race must also conclude");
        prop_assert_eq!(topk_response.path, ServePath::Race);
        prop_assert_eq!(full_response.found(), truth);
        prop_assert_eq!(topk_response.found(), truth);
        let stats = topk.stats();
        prop_assert_eq!(stats.topk_races, 1, "k=1 of 4 variants must stage the race");
        prop_assert_eq!(stats.pruned_entrants + stats.escalations * 3, 3,
            "either the heat decided (3 pruned) or the reserve launched");
    }
}

#[test]
fn trained_topk_prunes_losing_entrants() {
    let (_, target) = pair(77);
    let engine = racing_engine(&target, RaceStrategy::TopK { k: 1, escalate_after: 1.0 });
    // Serve a batch of small queries; with no race timeout the heat
    // always concludes, so the three unlaunched variants of every staged
    // race are pruned. Periodic exploration probes run the full field —
    // those (and escalated races) are the contested races that feed the
    // predictor's per-entrant tallies.
    let mut served = 0u64;
    for seed in 0..32 {
        let (query, _) = pair(3000 + seed);
        let response = engine.submit(&query);
        assert!(response.conclusive);
        served += 1;
    }
    let stats = engine.stats();
    assert!(
        stats.topk_races < served,
        "exploration probes must run some full-field races: {stats:?}"
    );
    assert!(stats.topk_races >= served * 3 / 4, "most races should still be staged: {stats:?}");
    assert_eq!(
        stats.pruned_entrants,
        (stats.topk_races - stats.escalations) * 3,
        "every non-escalated staged race prunes 3 of 4 entrants: {stats:?}"
    );
    let tallies = engine.entrant_tallies();
    assert_eq!(tallies.len(), 4, "one tally per configured variant");
    let wins: u64 = tallies.iter().map(|t| t.wins).sum();
    let contested = served - stats.topk_races + stats.escalations;
    assert_eq!(
        wins, contested,
        "only contested races (probes + escalations) credit a winner — uncontested \
         heat wins would be self-fulfilling evidence"
    );
    assert!(wins >= 1, "probes guarantee some contested evidence");
}

/// A query/stored-graph pair whose complete search is combinatorially
/// explosive: single-label dense graph, path query, no cap — no variant
/// can conclude before any realistic deadline.
fn explosive_setup() -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let mut picked = vec![0u32];
    while picked.len() < 10 {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = stored.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| stored.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if stored.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    (stored, psi_graph::graph::graph_from_parts(&labels, &edges))
}

#[test]
fn escalation_respects_the_admission_anchored_deadline() {
    let (stored, slow_query) = explosive_setup();
    let timeout = Duration::from_millis(600);
    let engine = Engine::new(
        PsiRunner::nfv_default(&stored),
        EngineConfig {
            workers: 1,
            max_concurrent_races: 1,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            predictor_min_observations: 0,
            race_strategy: RaceStrategy::TopK { k: 1, escalate_after: 0.75 },
            default_budget: RaceBudget::with_max_matches(usize::MAX).timeout(timeout),
            ..EngineConfig::default()
        },
    );
    let admitted = Instant::now();
    let response = engine.submit(&slow_query);
    let elapsed = admitted.elapsed();
    assert!(!response.conclusive, "no variant can finish an explosive search in time");
    let stats = engine.stats();
    assert_eq!(stats.topk_races, 1);
    assert_eq!(stats.escalations, 1, "the undecided heat must escalate at the stage deadline");
    assert_eq!(stats.pruned_entrants, 0);
    // Escalated entrants run under the ORIGINAL admission-anchored
    // deadline: the whole race ends ≈ one timeout after admission. If
    // escalation re-anchored deadlines at stage time, the race would run
    // to ~1.75× the timeout; the margins leave ~50% slack either way so
    // a loaded CI runner cannot flake the assertion.
    assert!(
        elapsed < timeout.mul_f64(1.5),
        "escalated race must still honour the admission-anchored deadline, took {elapsed:?}"
    );
    assert!(elapsed >= timeout.mul_f64(0.8), "the race should have used its budget: {elapsed:?}");
}

#[test]
fn topk_falls_back_to_full_until_trained() {
    let (query, target) = pair(5);
    let engine = Engine::new(
        PsiRunner::new(Arc::new(target.clone()), PsiConfig::gql_spa_orig_dnd()),
        EngineConfig {
            workers: 2,
            max_concurrent_races: 2,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            predictor_min_observations: 3,
            race_strategy: RaceStrategy::TopK { k: 1, escalate_after: 0.5 },
            default_budget: RaceBudget::decision(),
            ..EngineConfig::default()
        },
    );
    // Below the observation floor every race runs the full field.
    for _ in 0..3 {
        assert!(engine.submit(&query).conclusive);
    }
    let warmup = engine.stats();
    assert_eq!(warmup.topk_races, 0, "training-phase races must not be staged");
    assert_eq!(warmup.pruned_entrants, 0);
    // With the floor met, staging begins.
    assert!(engine.submit(&query).conclusive);
    assert_eq!(engine.stats().topk_races, 1);
}

#[test]
fn degenerate_k_runs_the_full_field() {
    let (query, target) = pair(9);
    for k in [0, 4, 9] {
        let engine = racing_engine(&target, RaceStrategy::TopK { k, escalate_after: 0.5 });
        assert!(engine.submit(&query).conclusive);
        let stats = engine.stats();
        assert_eq!(stats.topk_races, 0, "k={k} covers or voids the field: no staging");
        assert_eq!(stats.pruned_entrants, 0);
    }
}
