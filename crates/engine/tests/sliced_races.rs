//! Intra-query slicing end to end through the engine: an idle-biased
//! pool under [`RaceStrategy::Adaptive`] splits heat entrants into
//! cooperating root-candidate slices, the slice counters and trace
//! events surface, answers stay correct — and a cancelled sliced race
//! releases its admission slot (no leaked permits).

use psi_core::{PsiRunner, RaceBudget};
use psi_engine::{
    CompletionQueue, Engine, EngineConfig, QueryRequest, RaceStrategy, Submit, TraceEvent,
};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Grows a connected query from a random stored-graph node, so the query
/// is guaranteed to embed.
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

/// An idle-biased adaptive engine: one race at a time over many workers,
/// so the scheduler always sees spare capacity to hand out as slices.
fn sliced_engine(stored: &Graph) -> Engine {
    Engine::new(
        PsiRunner::nfv_default(stored),
        EngineConfig {
            workers: 8,
            max_concurrent_races: 1,
            cache_capacity: 0,
            predictor_confidence: 2.0,
            predictor_min_observations: 0,
            race_strategy: RaceStrategy::Adaptive { max_slices: 4, escalate_after: 1.0 },
            default_budget: RaceBudget::decision(),
            ..EngineConfig::default()
        },
    )
}

#[test]
fn adaptive_engine_slices_big_queries_and_answers_correctly() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let stored = random_connected_graph(80, 240, &labels, &mut rng);
    let engine = sliced_engine(&stored);

    // Queries above `slice_min_query_nodes` (default 6) on an idle pool
    // must slice; grown queries always embed, so correctness is
    // observable per answer.
    let served = 8u64;
    for seed in 0..served {
        let query = grown_query(&stored, 8, 4000 + seed);
        let response = engine.submit(&query);
        assert!(response.conclusive, "decision races on small graphs conclude");
        assert!(response.found(), "grown queries embed");
    }

    let stats = engine.stats();
    assert_eq!(stats.queries, served);
    assert_eq!(stats.sliced_races, served, "every big query on an idle pool slices");
    assert!(
        stats.slices_spawned > stats.sliced_races,
        "sliced races spawn multiple slice tasks: spawned = {}, races = {}",
        stats.slices_spawned,
        stats.sliced_races
    );

    // The slice lifecycle is visible in the trace: every spawned slice
    // finishes, even those cancelled by a sibling's conclusive verdict.
    let events = engine.drain_trace();
    let spawned =
        events.iter().filter(|r| matches!(r.event, TraceEvent::SliceSpawned { .. })).count() as u64;
    let finished =
        events.iter().filter(|r| matches!(r.event, TraceEvent::SliceFinished { .. })).count()
            as u64;
    assert_eq!(spawned, stats.slices_spawned, "one SliceSpawned per spawned slice task");
    assert_eq!(finished, spawned, "every slice reports SliceFinished");

    // The scrape exposes the same counters.
    let scrape = engine.exporter().render_prometheus();
    assert!(scrape.contains("psi_slices_total"), "scrape must expose slice counters:\n{scrape}");
    assert!(scrape.contains("psi_slice_steals_total"));
}

#[test]
fn small_queries_stay_unsliced() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let stored = random_connected_graph(40, 90, &labels, &mut rng);
    let engine = sliced_engine(&stored);
    for seed in 0..4 {
        let query = grown_query(&stored, 3, 7000 + seed);
        assert!(engine.submit(&query).conclusive);
    }
    let stats = engine.stats();
    assert_eq!(stats.sliced_races, 0, "3-node queries sit below slice_min_query_nodes");
    assert_eq!(stats.slices_spawned, 0);
}

#[test]
fn cancelled_sliced_race_frees_its_admission_slot() {
    // A dense single-label graph makes an uncapped 10-node query
    // combinatorially explosive: its sliced race cannot conclude and
    // holds the engine's only race slot until cancelled.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let stored = random_connected_graph(120, 1200, &labels, &mut rng);
    let engine = sliced_engine(&stored);

    let explosive = grown_query(&stored, 10, 5);
    let held = engine
        .submit_nonblocking(
            QueryRequest::new(explosive).budget(RaceBudget::with_max_matches(usize::MAX)),
        )
        .expect("idle engine admits");
    std::thread::sleep(Duration::from_millis(50));
    assert!(!held.is_complete(), "explosive sliced search cannot conclude this fast");
    // Dropping the ticket cancels the race mid-flight: the group token
    // fires, every slice unwinds, and the flight finalizes inconclusive.
    drop(held);

    // If a cancelled slice leaked its permit the engine would stay
    // saturated forever: with one race slot, the probe below would park
    // and never be granted. A bounded wait converts that hang into a
    // failure.
    let queue = CompletionQueue::new();
    let probe = grown_query(&stored, 8, 6);
    let ticket = engine
        .submit_into(QueryRequest::new(probe).tag(1), &queue)
        .expect("waiting room absorbs the probe even while the cancel drains");
    assert!(
        queue.wait_timeout(Duration::from_secs(30)).is_some(),
        "cancelled sliced race must release its slot: probe never ran"
    );
    let response = ticket.poll().expect("queued tag implies completion");
    assert!(response.conclusive);
    assert!(response.found(), "grown probe embeds");

    let stats = engine.stats();
    assert!(stats.sliced_races >= 1, "the explosive race must have sliced: {stats:?}");
    assert!(stats.slices_spawned >= 2, "sliced race spawns at least two slices: {stats:?}");
    assert_eq!(stats.queries, 2, "both the cancelled race and the probe were admitted");
}
