//! Ψ-trace end to end: histogram merges vs pooled observations
//! (property-based), trace/completion-queue agreement on per-ticket
//! terminal state under concurrent cancel-on-drop, the Prometheus
//! rendering's format invariants, and MultiEngine aggregate percentiles
//! vs the pooled per-graph histograms.

use proptest::prelude::*;
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{
    CompletionQueue, Engine, EngineConfig, HistogramKind, HistogramSnapshot, LatencyHistogram,
    MultiEngine, MultiEngineConfig, QueryRequest, Submit, TelemetryConfig, TraceEvent,
};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::graph::graph_from_parts;
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn stored_graph(seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    random_connected_graph(16, 30, &labels, &mut rng)
}

/// Grows a small connected query from a random stored-graph node, so the
/// query is guaranteed to embed (and races conclude quickly).
fn grown_query(g: &Graph, nodes: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.random_range(0..g.node_count() as u32);
    let mut picked = vec![start];
    while picked.len() < nodes {
        let from = picked[rng.random_range(0..picked.len())];
        let nbrs = g.neighbors(from);
        let next = nbrs[rng.random_range(0..nbrs.len())];
        if !picked.contains(&next) {
            picked.push(next);
        }
    }
    let labels: Vec<u32> = picked.iter().map(|&v| g.label(v)).collect();
    let mut edges = Vec::new();
    for (i, &u) in picked.iter().enumerate() {
        for (j, &v) in picked.iter().enumerate().skip(i + 1) {
            if g.has_edge(u, v) {
                edges.push((i as u32, j as u32));
            }
        }
    }
    graph_from_parts(&labels, &edges)
}

fn traced_engine(stored: &Graph) -> Engine {
    Engine::new(
        PsiRunner::new(Arc::new(stored.clone()), PsiConfig::gql_spa_orig_dnd()),
        EngineConfig {
            workers: 2,
            max_concurrent_races: 4,
            cache_capacity: 0, // every accepted query takes the race path
            predictor_confidence: 2.0,
            default_budget: RaceBudget::decision(),
            telemetry: TelemetryConfig {
                trace_events: true,
                trace_capacity: 1 << 16,
                ..TelemetryConfig::default()
            },
            ..EngineConfig::default()
        },
    )
}

// ---- Histogram merge = pooled observations (property-based) ----

/// The histogram's rank convention over exact sorted samples.
fn exact_percentile(samples: &mut [u64], q: f64) -> u64 {
    samples.sort_unstable();
    let rank = (q * (samples.len() - 1) as f64).ceil() as usize;
    samples[rank]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recording per-graph then merging must estimate the same
    /// percentiles as pooling every observation, to within one bucket
    /// width (≤ 1/32 relative) — the MultiEngine aggregation contract.
    #[test]
    fn merged_percentiles_match_pooled_observations(
        groups in prop::collection::vec(
            prop::collection::vec(0u64..10_000_000, 1..200),
            1..4,
        ),
        q in 0.0f64..1.0,
    ) {
        let merged = LatencyHistogram::new();
        for group in &groups {
            let per_graph = LatencyHistogram::new();
            for &v in group {
                per_graph.record(v);
            }
            merged.merge_from(&per_graph);
        }
        let mut pooled: Vec<u64> = groups.concat();
        let exact = exact_percentile(&mut pooled, q);
        let est = merged.percentile(q);
        prop_assert!(est >= exact, "estimate {est} under exact {exact}");
        prop_assert!(
            est - exact <= exact / 32 + 1,
            "estimate {est} further than one bucket above exact {exact}"
        );
        // Snapshot-level merge agrees with the live merge.
        let mut snap = HistogramSnapshot::default();
        for group in &groups {
            let h = LatencyHistogram::new();
            for &v in group {
                h.record(v);
            }
            snap.merge(&h.snapshot());
        }
        prop_assert_eq!(snap.percentile(q), est);
    }
}

// ---- Trace vs completion queue under concurrent cancel-on-drop ----

/// Every accepted ticket reaches exactly one terminal trace event
/// (`Finalized` here — cache off), whether its ticket was drained
/// through a [`CompletionQueue`] or dropped mid-flight (cancel-on-drop).
/// The trace and the queue must agree on which queries terminated.
#[test]
fn trace_terminal_events_agree_with_completion_queue_under_cancel() {
    let stored = stored_graph(11);
    let engine = traced_engine(&stored);
    let queue = CompletionQueue::new();

    let mut kept = 0u64;
    let mut accepted: Vec<u64> = Vec::new();
    let mut tickets = Vec::new();
    for i in 0..24u64 {
        let query = grown_query(&stored, 4, 100 + i);
        if i % 3 == 0 {
            let ticket = engine.submit_queued(QueryRequest::new(query)).expect("queued admission");
            accepted.push(ticket.query_id());
            // Cancel-on-drop while the race may still be in flight.
            drop(ticket);
        } else {
            let ticket = engine
                .submit_queued_into(QueryRequest::new(query), &queue)
                .expect("queued admission");
            accepted.push(ticket.query_id());
            tickets.push(ticket);
            kept += 1;
        }
    }
    // Drain the queue: every kept ticket completes exactly once.
    let mut queue_terminals: Vec<u64> = Vec::new();
    for _ in 0..kept {
        queue_terminals.push(queue.wait_timeout(Duration::from_secs(30)).expect("completion"));
    }

    // Drain the trace until every accepted query has its terminal event
    // (dropped tickets' flights finalize asynchronously).
    let mut events = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        events.extend(engine.drain_trace());
        let terminals = events.iter().filter(|r| r.event.is_terminal()).count();
        if terminals >= accepted.len() || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(engine.trace_dropped(), 0, "ring sized for the whole test");

    let mut terminal_counts: HashMap<u64, usize> = HashMap::new();
    for record in &events {
        if record.event.is_terminal() {
            *terminal_counts.entry(record.event.query()).or_default() += 1;
        }
    }
    for id in &accepted {
        assert_eq!(
            terminal_counts.get(id),
            Some(&1),
            "query {id} must reach exactly one terminal event"
        );
    }
    assert_eq!(terminal_counts.len(), accepted.len(), "no phantom query ids in the trace");
    // The queue's view is a subset of the trace's view.
    for id in &queue_terminals {
        assert_eq!(terminal_counts.get(id), Some(&1), "queue-drained query {id} traced");
    }
    // Lifecycle ordering: every traced query was admitted before it
    // finalized, and sequence numbers are strictly increasing.
    let mut admitted: HashMap<u64, u64> = HashMap::new();
    for record in &events {
        if let TraceEvent::Admitted { query } = record.event {
            admitted.insert(query, record.seq);
        }
    }
    for record in &events {
        if let TraceEvent::Finalized { query, .. } = record.event {
            let admit_seq = admitted.get(&query).expect("finalized implies admitted");
            assert!(*admit_seq < record.seq, "admit precedes finalize in sequence order");
        }
    }
    let mut prev_seq = None;
    let mut sorted = events.clone();
    sorted.sort_by_key(|r| r.seq);
    for r in &sorted {
        if let Some(p) = prev_seq {
            assert!(r.seq > p, "sequence numbers are unique");
        }
        prev_seq = Some(r.seq);
    }
}

// ---- Prometheus rendering format ----

struct PromSample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn parse_prometheus(text: &str) -> (HashMap<String, String>, Vec<PromSample>) {
    let mut types = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line has a kind");
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate # TYPE for {name}"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP
        }
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| panic!("numeric value in {line:?}"));
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').expect("balanced label braces");
                let labels = body
                    .split(',')
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').expect("label pair");
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .expect("quoted label value");
                        (k.to_string(), v.to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
            None => (series.to_string(), Vec::new()),
        };
        samples.push(PromSample { name, labels, value });
    }
    (types, samples)
}

/// The exporter's Prometheus text must parse line by line, declare each
/// metric family exactly once, and emit internally consistent histogram
/// series (nondecreasing cumulative buckets, `+Inf` last and equal to
/// `_count`).
#[test]
fn prometheus_rendering_is_well_formed() {
    let stored = stored_graph(21);
    let other = stored_graph(22);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 4,
        tenant: EngineConfig { default_budget: RaceBudget::decision(), ..EngineConfig::default() },
    });
    let a = multi
        .register(
            "graphs/a",
            PsiRunner::new(Arc::new(stored.clone()), PsiConfig::gql_spa_orig_dnd()),
        )
        .unwrap();
    let b = multi
        .register(
            "graphs/b",
            PsiRunner::new(Arc::new(other.clone()), PsiConfig::gql_spa_orig_dnd()),
        )
        .unwrap();
    for i in 0..8 {
        multi.submit(a, &grown_query(&stored, 4, 300 + i)).unwrap();
        multi.submit(b, &grown_query(&other, 4, 400 + i)).unwrap();
    }
    let text = multi.exporter().render_prometheus();
    let (types, samples) = parse_prometheus(&text);
    assert!(!samples.is_empty());

    // Every sample belongs to a declared family (histograms declare the
    // base name; samples append _bucket/_sum/_count).
    for s in &samples {
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                s.name
                    .strip_suffix(suffix)
                    .filter(|base| types.get(*base).map(String::as_str) == Some("histogram"))
            })
            .unwrap_or(s.name.as_str());
        assert!(types.contains_key(base), "sample {} has no # TYPE", s.name);
        assert!(s.name.starts_with("psi_"), "namespaced metric: {}", s.name);
    }

    // Histogram series: group buckets by (name, labels-minus-le).
    let mut buckets: HashMap<String, Vec<(Option<f64>, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();
    let series_key = |name: &str, labels: &[(String, String)]| {
        let mut rest: Vec<String> =
            labels.iter().filter(|(k, _)| k != "le").map(|(k, v)| format!("{k}={v}")).collect();
        rest.sort();
        format!("{name}|{}", rest.join(","))
    };
    for s in &samples {
        if let Some(base) = s.name.strip_suffix("_bucket") {
            let le = s.labels.iter().find(|(k, _)| k == "le").expect("buckets carry le");
            let le = if le.1 == "+Inf" { None } else { Some(le.1.parse::<f64>().expect("le")) };
            buckets.entry(series_key(base, &s.labels)).or_default().push((le, s.value));
        } else if let Some(base) = s.name.strip_suffix("_count") {
            counts.insert(series_key(base, &s.labels), s.value);
        }
    }
    assert!(!buckets.is_empty(), "histograms rendered");
    for (key, series) in &buckets {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for (i, (le, cum)) in series.iter().enumerate() {
            match le {
                Some(le) => {
                    assert!(*le > prev_le, "{key}: le values ascend");
                    prev_le = *le;
                }
                None => assert_eq!(i, series.len() - 1, "{key}: +Inf only in last position"),
            }
            assert!(*cum >= prev_cum, "{key}: cumulative buckets never decrease");
            prev_cum = *cum;
        }
        let (last_le, last_cum) = series.last().expect("nonempty");
        assert!(last_le.is_none(), "{key}: +Inf bucket comes last");
        assert_eq!(Some(last_cum), counts.get(key).as_ref().copied(), "{key}: +Inf == _count");
    }

    // Both graph labels appear.
    assert!(text.contains("graph=\"graphs/a\""));
    assert!(text.contains("graph=\"graphs/b\""));
    // And the JSON rendering at least produces both graphs.
    let json = multi.exporter().render_json();
    assert!(json.contains("\"name\":\"graphs/a\""));
    assert!(json.contains("\"name\":\"graphs/b\""));
}

// ---- MultiEngine aggregate percentiles vs pooled per-graph ----

/// When the registry is quiesced, the aggregate `stats()` percentiles
/// must equal percentiles of the bucket-wise merged per-graph histogram
/// snapshots exactly — same buckets, same math, no sampling.
#[test]
fn aggregate_stats_match_pooled_per_graph_histograms() {
    let stored = stored_graph(31);
    let other = stored_graph(32);
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: 2,
        max_concurrent_races: 2,
        tenant: EngineConfig { default_budget: RaceBudget::decision(), ..EngineConfig::default() },
    });
    let a = multi
        .register("a", PsiRunner::new(Arc::new(stored.clone()), PsiConfig::gql_spa_orig_dnd()))
        .unwrap();
    let b = multi
        .register("b", PsiRunner::new(Arc::new(other.clone()), PsiConfig::gql_spa_orig_dnd()))
        .unwrap();
    for i in 0..10 {
        multi.submit(a, &grown_query(&stored, 4, 500 + i)).unwrap();
        multi.submit(b, &grown_query(&other, 4, 600 + i)).unwrap();
    }
    let agg = multi.stats();
    let exporter = multi.exporter();
    for (kind, agg_p50, agg_p99) in [
        (HistogramKind::Latency, agg.latency_p50, agg.latency_p99),
        (HistogramKind::QueueWait, agg.stages.queue_p50, agg.stages.queue_p99),
        (HistogramKind::RaceStage, agg.stages.race_p50, agg.stages.race_p99),
        (HistogramKind::FinalizeStage, agg.stages.finalize_p50, agg.stages.finalize_p99),
    ] {
        let pooled = exporter.merged_histogram(kind);
        assert_eq!(
            pooled.percentile(0.50),
            agg_p50.as_micros() as u64,
            "pooled p50 equals aggregate for {kind:?}"
        );
        assert_eq!(
            pooled.percentile(0.99),
            agg_p99.as_micros() as u64,
            "pooled p99 equals aggregate for {kind:?}"
        );
    }
    // The pooled count covers both graphs' served queries.
    assert_eq!(exporter.merged_histogram(HistogramKind::Latency).count, agg.queries);
}
