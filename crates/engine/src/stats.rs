//! Engine observability: lock-cheap counters plus a latency ring, with a
//! point-in-time [`EngineStats`] snapshot for dashboards and benches.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many of the most recent per-query latencies the ring retains for
/// percentile estimation.
const LATENCY_RING: usize = 8192;

/// Live counters updated by the serving path.
pub(crate) struct StatsCollector {
    started: Instant,
    pub queries: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub races: AtomicU64,
    pub fast_paths: AtomicU64,
    pub fast_path_fallbacks: AtomicU64,
    pub cancelled_variants: AtomicU64,
    pub busy_rejections: AtomicU64,
    pub inconclusive: AtomicU64,
    pub topk_races: AtomicU64,
    pub pruned_entrants: AtomicU64,
    pub escalations: AtomicU64,
    pub edge_probes_bitset: AtomicU64,
    pub edge_probes_binary: AtomicU64,
    latencies_us: Mutex<Ring>,
}

struct Ring {
    buf: Vec<u64>,
    next: usize,
    filled: usize,
}

impl StatsCollector {
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            races: AtomicU64::new(0),
            fast_paths: AtomicU64::new(0),
            fast_path_fallbacks: AtomicU64::new(0),
            cancelled_variants: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            inconclusive: AtomicU64::new(0),
            topk_races: AtomicU64::new(0),
            pruned_entrants: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
            edge_probes_bitset: AtomicU64::new(0),
            edge_probes_binary: AtomicU64::new(0),
            latencies_us: Mutex::new(Ring { buf: vec![0; LATENCY_RING], next: 0, filled: 0 }),
        }
    }

    /// Folds one search's edge-probe counters into the engine totals.
    /// Matchers count probes in plain `u64`s per search; the two atomic
    /// adds here run once per entrant result, not once per probe.
    pub fn record_probes(&self, stats: &psi_matchers::SearchStats) {
        if stats.edge_probes_bitset > 0 {
            self.edge_probes_bitset.fetch_add(stats.edge_probes_bitset, Ordering::Relaxed);
        }
        if stats.edge_probes_binary > 0 {
            self.edge_probes_binary.fetch_add(stats.edge_probes_binary, Ordering::Relaxed);
        }
    }

    /// Records one served query's end-to-end latency.
    pub fn record_latency(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let mut ring = self.latencies_us.lock().expect("latency ring lock");
        let at = ring.next;
        ring.buf[at] = us;
        ring.next = (at + 1) % LATENCY_RING;
        ring.filled = (ring.filled + 1).min(LATENCY_RING);
    }

    /// The retained recent-latency samples (microseconds, unordered) —
    /// merged across graphs by the registry so aggregate percentiles are
    /// computed over *samples*, not averaged per-graph percentiles.
    pub(crate) fn latency_samples(&self) -> Vec<u64> {
        let ring = self.latencies_us.lock().expect("latency ring lock");
        ring.buf[..ring.filled].to_vec()
    }

    /// p50/p99 over a set of latency samples in microseconds.
    pub(crate) fn percentiles_of(samples: &mut [u64]) -> (Duration, Duration) {
        samples.sort_unstable();
        if samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let at = |q: f64| {
            let idx = ((samples.len() - 1) as f64 * q).round() as usize;
            Duration::from_micros(samples[idx])
        };
        (at(0.50), at(0.99))
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> EngineStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let (p50, p99) = Self::percentiles_of(&mut self.latency_samples());
        let topk_races = self.topk_races.load(Ordering::Relaxed);
        let escalations = self.escalations.load(Ordering::Relaxed);
        EngineStats {
            uptime,
            queries,
            cache_hits: hits,
            cache_misses: misses,
            hit_rate: EngineStats::rate(hits, hits + misses),
            races: self.races.load(Ordering::Relaxed),
            fast_paths: self.fast_paths.load(Ordering::Relaxed),
            fast_path_fallbacks: self.fast_path_fallbacks.load(Ordering::Relaxed),
            cancelled_variants: self.cancelled_variants.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            topk_races,
            pruned_entrants: self.pruned_entrants.load(Ordering::Relaxed),
            escalations,
            escalation_rate: EngineStats::rate(escalations, topk_races),
            index_build_us: 0,
            edge_probes_bitset: self.edge_probes_bitset.load(Ordering::Relaxed),
            edge_probes_binary: self.edge_probes_binary.load(Ordering::Relaxed),
            throughput_qps: if uptime.as_secs_f64() > 0.0 {
                queries as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            latency_p50: p50,
            latency_p99: p99,
        }
    }
}

/// A point-in-time snapshot of the engine's serving statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Time since the engine was created.
    pub uptime: Duration,
    /// Queries accepted (admitted or served from cache; rejections not
    /// included).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing looked
    /// up yet.
    pub hit_rate: f64,
    /// Full races run on the worker pool.
    pub races: u64,
    /// Queries served by the predictor's single-variant fast path.
    pub fast_paths: u64,
    /// Fast-path attempts that came back inconclusive and fell back to a
    /// full race (counted in addition to the race).
    pub fast_path_fallbacks: u64,
    /// Losing race entrants observed as cooperatively cancelled — the Ψ
    /// "kill" count.
    pub cancelled_variants: u64,
    /// `try_submit` calls rejected because the engine was at its
    /// concurrent-race limit.
    pub busy_rejections: u64,
    /// Served queries whose answer was not definitive (race timed out).
    pub inconclusive: u64,
    /// Races scheduled adaptively: a predictor-ranked top-K first heat
    /// with the rest of the field held back as an escalation reserve.
    pub topk_races: u64,
    /// Entrants that never launched because their race's pruned heat
    /// decided the answer without them.
    pub pruned_entrants: u64,
    /// Staged races whose pruned heat was inconclusive by the stage
    /// deadline and launched the remaining entrants.
    pub escalations: u64,
    /// `escalations / topk_races`, 0 when no race was staged. Low is the
    /// predictor earning its keep; 1.0 means pruning never helps.
    pub escalation_rate: f64,
    /// Wall-clock cost of building this graph's shared `TargetIndex` at
    /// registration, microseconds (summed across graphs in the registry
    /// aggregate; 0 for legacy scan-mode runners).
    pub index_build_us: u64,
    /// Adjacency probes answered by the index's dense bitset fast path.
    pub edge_probes_bitset: u64,
    /// Adjacency probes answered by CSR binary search (bitset not built
    /// for the graph, or scan-mode matchers).
    pub edge_probes_binary: u64,
    /// Queries per second since engine start.
    pub throughput_qps: f64,
    /// Median end-to-end latency over the recent-latency window.
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency over the recent-latency window.
    pub latency_p99: Duration,
}

impl EngineStats {
    /// `part / whole` as a fraction, 0 when `whole` is 0.
    pub(crate) fn rate(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            part as f64 / whole as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.hit_rate, 0.0);
        assert_eq!(s.latency_p50, Duration::ZERO);
    }

    #[test]
    fn percentiles_order() {
        let c = StatsCollector::new();
        for i in 1..=100u64 {
            c.record_latency(Duration::from_micros(i * 10));
        }
        let s = c.snapshot();
        assert!(s.latency_p50 <= s.latency_p99);
        assert!(s.latency_p50 >= Duration::from_micros(400));
        assert!(s.latency_p99 >= Duration::from_micros(900));
    }

    #[test]
    fn escalation_rate_math() {
        let c = StatsCollector::new();
        assert_eq!(c.snapshot().escalation_rate, 0.0, "no staged races, no rate");
        c.topk_races.store(8, Ordering::Relaxed);
        c.escalations.store(2, Ordering::Relaxed);
        c.pruned_entrants.store(18, Ordering::Relaxed);
        let s = c.snapshot();
        assert!((s.escalation_rate - 0.25).abs() < 1e-12);
        assert_eq!(s.pruned_entrants, 18);
    }

    #[test]
    fn hit_rate_math() {
        let c = StatsCollector::new();
        c.cache_hits.store(3, Ordering::Relaxed);
        c.cache_misses.store(1, Ordering::Relaxed);
        assert!((c.snapshot().hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ring_wraps_without_panicking() {
        let c = StatsCollector::new();
        for _ in 0..(LATENCY_RING + 100) {
            c.record_latency(Duration::from_micros(5));
        }
        assert_eq!(c.snapshot().latency_p50, Duration::from_micros(5));
    }
}
