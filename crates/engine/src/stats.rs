//! Engine observability: lock-cheap counters plus log-bucketed latency
//! histograms, with a point-in-time [`EngineStats`] snapshot for
//! dashboards and benches.
//!
//! The histograms are HDR-style: a linear region below 32 µs, then 32
//! sub-buckets per power-of-two octave, which bounds the relative bucket
//! width at 1/32 (~3.1%). Every recorded value lands in a bucket with a
//! single relaxed atomic add, so percentiles are exact-to-bucket over
//! *all* observations — no sampling, no reservoir drift — and two
//! histograms merge by adding bucket counts, which is how the registry
//! builds `MultiEngine` aggregate percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sub-bucket resolution: each power-of-two octave is split into
/// `1 << SUB_BITS` linear buckets.
const SUB_BITS: usize = 5;
/// Buckets per octave (and the size of the initial linear region).
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: the linear region `[0, 32)` plus 59 octaves
/// (floor(log2) in `5..=63`) of 32 sub-buckets each, covering the rest of
/// the `u64` range.
const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS) * SUB_BUCKETS;

/// Bucket index for a microsecond value. Total order is preserved:
/// `a <= b` implies `bucket_index(a) <= bucket_index(b)`.
fn bucket_index(us: u64) -> usize {
    if us < SUB_BUCKETS as u64 {
        us as usize
    } else {
        let top = 63 - us.leading_zeros() as usize; // floor(log2), >= SUB_BITS
        ((top - SUB_BITS) << SUB_BITS) + (us >> (top - SUB_BITS)) as usize
    }
}

/// Largest microsecond value that lands in bucket `index` (the bound the
/// percentile estimator reports, so estimates never undershoot).
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let octave = (index >> SUB_BITS) - 1;
        let sub = (index - (octave << SUB_BITS)) as u128;
        // 128-bit shift: the very last bucket's bound is 2^64 - 1.
        (((sub + 1) << octave) - 1).min(u64::MAX as u128) as u64
    }
}

/// A mergeable log-bucketed latency histogram over microsecond values.
///
/// Recording is wait-free (one relaxed `fetch_add`); reading is a scan of
/// ~1.9k buckets. Memory: 15 KiB of `AtomicU64` per histogram.
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Self { buckets, count: AtomicU64::new(0), sum_us: AtomicU64::new(0) }
    }

    /// Records one microsecond observation.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one duration, saturating to whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded microsecond values.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Adds every bucket of `other` into `self`. This is the
    /// `MultiEngine` aggregation primitive: merged percentiles equal
    /// percentiles of the pooled observations, to within bucket error.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_us.fetch_add(other.sum_us(), Ordering::Relaxed);
    }

    /// The `q`-quantile in microseconds (upper bound of the bucket holding
    /// the rank-`ceil(q * (n - 1))` observation, 0-based — so p99 of 100
    /// samples reads rank 99, never rank 98). Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (n - 1) as f64).ceil() as u64;
        let mut seen = 0u64;
        let mut last_nonzero = 0usize;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            last_nonzero = i;
            seen += c;
            if seen > rank {
                return bucket_upper(i);
            }
        }
        // `count` can momentarily lead the bucket sums under concurrent
        // recording; fall back to the largest populated bucket.
        bucket_upper(last_nonzero)
    }

    /// [`Self::percentile`] as a `Duration`.
    pub fn percentile_duration(&self, q: f64) -> Duration {
        Duration::from_micros(self.percentile(q))
    }

    /// A point-in-time copy of the populated buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper(i), c))
            })
            .collect();
        HistogramSnapshot { buckets, count: self.count(), sum_us: self.sum_us() }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("sum_us", &self.sum_us())
            .field("p50_us", &self.percentile(0.50))
            .field("p99_us", &self.percentile(0.99))
            .finish()
    }
}

/// A frozen copy of a [`LatencyHistogram`]: the populated buckets as
/// `(inclusive upper bound in µs, count)` pairs in ascending order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Populated buckets, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed microsecond values.
    pub sum_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile in microseconds under the same rank convention as
    /// [`LatencyHistogram::percentile`]. Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).ceil() as u64;
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen > rank {
                return bound;
            }
        }
        self.buckets.last().map_or(0, |&(bound, _)| bound)
    }

    /// Pools another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u64, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ba, ca)), Some(&&(bb, cb))) => {
                    if ba == bb {
                        merged.push((ba, ca + cb));
                        a.next();
                        b.next();
                    } else if ba < bb {
                        merged.push((ba, ca));
                        a.next();
                    } else {
                        merged.push((bb, cb));
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// Mean observed value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// Per-stage latency percentiles carried in [`EngineStats`]: where a
/// query's wall-clock went, split at the stage boundaries the trace
/// events mark (admission → setup start → finalize start → fulfilled).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageLatencies {
    /// Median admission-to-setup queue wait.
    pub queue_p50: Duration,
    /// p99 admission-to-setup queue wait.
    pub queue_p99: Duration,
    /// Median setup-to-finalize race time (includes fast-path execution).
    pub race_p50: Duration,
    /// p99 setup-to-finalize race time.
    pub race_p99: Duration,
    /// Median finalize cost (result assembly, cache store, fulfillment).
    pub finalize_p50: Duration,
    /// p99 finalize cost.
    pub finalize_p99: Duration,
}

/// Live counters updated by the serving path.
pub(crate) struct StatsCollector {
    started: Instant,
    pub queries: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub races: AtomicU64,
    pub fast_paths: AtomicU64,
    pub fast_path_fallbacks: AtomicU64,
    pub cancelled_variants: AtomicU64,
    pub busy_rejections: AtomicU64,
    pub queue_full_rejections: AtomicU64,
    pub parked: AtomicU64,
    pub inconclusive: AtomicU64,
    pub topk_races: AtomicU64,
    pub pruned_entrants: AtomicU64,
    pub escalations: AtomicU64,
    /// Races whose heat entrants ran sliced (intra-query parallelism).
    pub sliced_races: AtomicU64,
    /// Slice tasks submitted to the pool across all sliced entrants.
    pub slices_spawned: AtomicU64,
    /// Chunk claims beyond each slice task's first — work stolen from
    /// straggling siblings.
    pub slice_steals: AtomicU64,
    pub edge_probes_bitset: AtomicU64,
    pub edge_probes_binary: AtomicU64,
    /// Learned-state WAL records appended while serving (0 until
    /// persistence is attached by save/load).
    pub wal_appended: AtomicU64,
    /// Learned-state WAL records replayed into the predictor at load.
    pub wal_replayed: AtomicU64,
    /// Graph-mutation batches applied while serving.
    pub updates_applied: AtomicU64,
    /// Delta-overlay compactions folded into a new graph epoch.
    pub compactions: AtomicU64,
    /// Total wall-clock spent compacting (materialize + index rebuild +
    /// epoch install), microseconds.
    pub compaction_time_us: AtomicU64,
    /// Times this tenant's cache partition was invalidated wholesale —
    /// once per applied update batch and once per epoch swap.
    pub cache_invalidations: AtomicU64,
    /// End-to-end served latency (admission or cache probe → fulfilled).
    pub latency: LatencyHistogram,
    /// Admission → setup-start queue wait.
    pub queue_wait: LatencyHistogram,
    /// Waiting-room park time: submission → slot grant, for queries that
    /// parked (disjoint from `queue_wait`, which starts at admission).
    pub park_wait: LatencyHistogram,
    /// Setup-start → finalize-start race stage.
    pub race_stage: LatencyHistogram,
    /// Finalize body (result assembly through fulfillment).
    pub finalize_stage: LatencyHistogram,
}

impl StatsCollector {
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            races: AtomicU64::new(0),
            fast_paths: AtomicU64::new(0),
            fast_path_fallbacks: AtomicU64::new(0),
            cancelled_variants: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            queue_full_rejections: AtomicU64::new(0),
            parked: AtomicU64::new(0),
            inconclusive: AtomicU64::new(0),
            topk_races: AtomicU64::new(0),
            pruned_entrants: AtomicU64::new(0),
            escalations: AtomicU64::new(0),
            sliced_races: AtomicU64::new(0),
            slices_spawned: AtomicU64::new(0),
            slice_steals: AtomicU64::new(0),
            edge_probes_bitset: AtomicU64::new(0),
            edge_probes_binary: AtomicU64::new(0),
            wal_appended: AtomicU64::new(0),
            wal_replayed: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            compaction_time_us: AtomicU64::new(0),
            cache_invalidations: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            queue_wait: LatencyHistogram::new(),
            park_wait: LatencyHistogram::new(),
            race_stage: LatencyHistogram::new(),
            finalize_stage: LatencyHistogram::new(),
        }
    }

    /// Folds one search's edge-probe counters into the engine totals.
    /// Matchers count probes in plain `u64`s per search; the two atomic
    /// adds here run once per entrant result, not once per probe.
    pub fn record_probes(&self, stats: &psi_matchers::SearchStats) {
        if stats.edge_probes_bitset > 0 {
            self.edge_probes_bitset.fetch_add(stats.edge_probes_bitset, Ordering::Relaxed);
        }
        if stats.edge_probes_binary > 0 {
            self.edge_probes_binary.fetch_add(stats.edge_probes_binary, Ordering::Relaxed);
        }
    }

    /// Records one served query's end-to-end latency.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record_duration(latency);
    }

    /// Per-stage percentile snapshot.
    pub(crate) fn stage_latencies(&self) -> StageLatencies {
        StageLatencies {
            queue_p50: self.queue_wait.percentile_duration(0.50),
            queue_p99: self.queue_wait.percentile_duration(0.99),
            race_p50: self.race_stage.percentile_duration(0.50),
            race_p99: self.race_stage.percentile_duration(0.99),
            finalize_p50: self.finalize_stage.percentile_duration(0.50),
            finalize_p99: self.finalize_stage.percentile_duration(0.99),
        }
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> EngineStats {
        let queries = self.queries.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let uptime = self.started.elapsed();
        let topk_races = self.topk_races.load(Ordering::Relaxed);
        let escalations = self.escalations.load(Ordering::Relaxed);
        EngineStats {
            uptime,
            queries,
            cache_hits: hits,
            cache_misses: misses,
            hit_rate: EngineStats::rate(hits, hits + misses),
            races: self.races.load(Ordering::Relaxed),
            fast_paths: self.fast_paths.load(Ordering::Relaxed),
            fast_path_fallbacks: self.fast_path_fallbacks.load(Ordering::Relaxed),
            cancelled_variants: self.cancelled_variants.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            queue_full_rejections: self.queue_full_rejections.load(Ordering::Relaxed),
            parked: self.parked.load(Ordering::Relaxed),
            waiting_room_depth: 0,
            park_wait_p50: self.park_wait.percentile_duration(0.50),
            park_wait_p99: self.park_wait.percentile_duration(0.99),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            topk_races,
            pruned_entrants: self.pruned_entrants.load(Ordering::Relaxed),
            escalations,
            escalation_rate: EngineStats::rate(escalations, topk_races),
            sliced_races: self.sliced_races.load(Ordering::Relaxed),
            slices_spawned: self.slices_spawned.load(Ordering::Relaxed),
            slice_steals: self.slice_steals.load(Ordering::Relaxed),
            index_build_us: 0,
            edge_probes_bitset: self.edge_probes_bitset.load(Ordering::Relaxed),
            edge_probes_binary: self.edge_probes_binary.load(Ordering::Relaxed),
            wal_appended: self.wal_appended.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            compaction_us: self.compaction_time_us.load(Ordering::Relaxed),
            cache_invalidations: self.cache_invalidations.load(Ordering::Relaxed),
            epoch: 0,
            throughput_qps: if uptime.as_secs_f64() > 0.0 {
                queries as f64 / uptime.as_secs_f64()
            } else {
                0.0
            },
            latency_p50: self.latency.percentile_duration(0.50),
            latency_p99: self.latency.percentile_duration(0.99),
            stages: self.stage_latencies(),
        }
    }
}

/// A point-in-time snapshot of the engine's serving statistics.
#[derive(Debug, Clone)]
pub struct EngineStats {
    /// Time since the engine was created.
    pub uptime: Duration,
    /// Queries accepted (admitted or served from cache; rejections not
    /// included).
    pub queries: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Queries that missed the cache.
    pub cache_misses: u64,
    /// `cache_hits / (cache_hits + cache_misses)`, 0 when nothing looked
    /// up yet.
    pub hit_rate: f64,
    /// Full races run on the worker pool.
    pub races: u64,
    /// Queries served by the predictor's single-variant fast path.
    pub fast_paths: u64,
    /// Fast-path attempts that came back inconclusive and fell back to a
    /// full race (counted in addition to the race).
    pub fast_path_fallbacks: u64,
    /// Losing race entrants observed as cooperatively cancelled — the Ψ
    /// "kill" count.
    pub cancelled_variants: u64,
    /// Non-blocking submissions rejected hard because the engine was at
    /// its concurrent-race limit with the waiting room disabled
    /// ([`crate::EngineConfig::waiting_room`] = 0).
    pub busy_rejections: u64,
    /// Non-blocking submissions rejected because the waiting room itself
    /// was full — the burst outlived the room.
    pub queue_full_rejections: u64,
    /// Non-blocking submissions that parked in the waiting room instead
    /// of bouncing (each later launches, or is cancelled by its ticket).
    pub parked: u64,
    /// Requests parked in the waiting room *right now* (a gauge, read
    /// from the admission gate at snapshot time; for a registry tenant
    /// this is the shared gate's total across graphs).
    pub waiting_room_depth: u64,
    /// Median waiting-room park time (submission → slot grant) over all
    /// parked queries.
    pub park_wait_p50: Duration,
    /// 99th-percentile waiting-room park time.
    pub park_wait_p99: Duration,
    /// Served queries whose answer was not definitive (race timed out).
    pub inconclusive: u64,
    /// Races scheduled adaptively: a predictor-ranked top-K first heat
    /// with the rest of the field held back as an escalation reserve.
    pub topk_races: u64,
    /// Entrants that never launched because their race's pruned heat
    /// decided the answer without them.
    pub pruned_entrants: u64,
    /// Staged races whose pruned heat was inconclusive by the stage
    /// deadline and launched the remaining entrants.
    pub escalations: u64,
    /// `escalations / topk_races`, 0 when no race was staged. Low is the
    /// predictor earning its keep; 1.0 means pruning never helps.
    pub escalation_rate: f64,
    /// Races whose heat entrants ran with intra-query slicing — the
    /// adaptive scheduler split their root-candidate space across
    /// cooperating pool tasks ([`crate::RaceStrategy::Adaptive`]).
    pub sliced_races: u64,
    /// Slice tasks submitted across all sliced races
    /// (`Σ heat entrants × slices`).
    pub slices_spawned: u64,
    /// Root-candidate ranges stolen by slice tasks beyond their first
    /// claim — how much the work-stealing cursor actually rebalanced.
    pub slice_steals: u64,
    /// Wall-clock cost of building this graph's shared `TargetIndex` at
    /// registration, microseconds (summed across graphs in the registry
    /// aggregate; 0 for legacy scan-mode runners).
    pub index_build_us: u64,
    /// Adjacency probes answered by the index's dense bitset fast path.
    pub edge_probes_bitset: u64,
    /// Adjacency probes answered by CSR binary search (bitset not built
    /// for the graph, or scan-mode matchers).
    pub edge_probes_binary: u64,
    /// Learned-state WAL records appended while serving. Stays 0 until
    /// persistence is attached ([`crate::MultiEngine::save_graph`] /
    /// [`crate::MultiEngine::load_graph`]).
    pub wal_appended: u64,
    /// Learned-state WAL records replayed into the predictor when this
    /// graph was loaded from disk.
    pub wal_replayed: u64,
    /// Graph-mutation batches applied to the live graph while serving
    /// ([`crate::Engine::apply_update`] / [`crate::MultiEngine::apply_update`]).
    pub updates_applied: u64,
    /// Delta-overlay compactions: background or explicit rebuilds that
    /// folded the overlay into a fresh base graph and index, swapping
    /// the tenant to a new epoch.
    pub compactions: u64,
    /// Total wall-clock spent in compaction (off the serving lock:
    /// materialize + index rebuild; only the final swap blocks writers),
    /// microseconds (summed across graphs in the registry aggregate).
    pub compaction_us: u64,
    /// Wholesale cache-partition invalidations — one per applied update
    /// batch and one per epoch swap, since cached answers were computed
    /// against the earlier graph state.
    pub cache_invalidations: u64,
    /// The tenant's current graph epoch: 0 at registration, +1 per
    /// compaction (a gauge, read from the runner at snapshot time; the
    /// registry aggregate reports the **maximum** across graphs).
    pub epoch: u64,
    /// Queries per second since engine start.
    pub throughput_qps: f64,
    /// Median end-to-end latency over *all* served queries (bucketed).
    pub latency_p50: Duration,
    /// 99th-percentile end-to-end latency over *all* served queries
    /// (bucketed).
    pub latency_p99: Duration,
    /// Per-stage latency breakdown (queue wait vs race vs finalize).
    pub stages: StageLatencies,
}

impl EngineStats {
    /// `part / whole` as a fraction, 0 when `whole` is 0.
    pub(crate) fn rate(part: u64, whole: u64) -> f64 {
        if whole == 0 {
            0.0
        } else {
            part as f64 / whole as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact percentile under the histogram's rank convention:
    /// rank `ceil(q * (n - 1))`, 0-based, over the sorted samples.
    fn exact_percentile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        let rank = (q * (samples.len() - 1) as f64).ceil() as usize;
        samples[rank]
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        for shift in 0..64u32 {
            for near in [-1i64, 0, 1, 17] {
                let v = (1u128 << shift) as i128 + near as i128;
                if v < 0 || v > u64::MAX as i128 {
                    continue;
                }
                let idx = bucket_index(v as u64);
                assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
                assert!(idx >= prev || (v as u64) < bucket_upper(prev), "monotone");
                prev = prev.max(idx);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_round_trip() {
        // Every value maps into a bucket whose upper bound is >= the value
        // and within 1/32 relative error.
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 12345, u64::MAX / 3]) {
            let ub = bucket_upper(bucket_index(v));
            assert!(ub >= v, "upper bound {ub} below value {v}");
            assert!(ub - v <= v / 32 + 1, "bucket too wide at {v}: upper {ub}");
        }
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsCollector::new().snapshot();
        assert_eq!(s.queries, 0);
        assert_eq!(s.hit_rate, 0.0);
        assert_eq!(s.latency_p50, Duration::ZERO);
        assert_eq!(s.stages, StageLatencies::default());
    }

    #[test]
    fn percentiles_match_exact_sort_within_one_bucket() {
        // The regression the reservoir-based estimator failed: p99 of 100
        // samples must read the rank-99 sample (not rank 98), and the
        // histogram's answer must sit within one bucket width of the
        // exactly sorted value.
        let mut samples: Vec<u64> = (1..=100u64).map(|i| i * 97 + (i * i) % 31).collect();
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 1.0] {
            let exact = exact_percentile(&mut samples, q);
            let est = h.percentile(q);
            assert!(est >= exact, "q={q}: estimate {est} under exact {exact}");
            assert!(est - exact <= exact / 32 + 1, "q={q}: estimate {est} vs exact {exact}");
        }
    }

    #[test]
    fn p99_of_100_reads_the_tail_sample() {
        // 99 fast samples and one 10× straggler: the old `round()` rank
        // selection returned index 98 (a fast sample); the histogram must
        // report the straggler's bucket.
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1000);
        assert!(h.percentile(0.99) >= 1000);
        assert!(h.percentile(0.50) < 200);
    }

    #[test]
    fn merge_equals_pooled_recording() {
        let (a, b, pooled) =
            (LatencyHistogram::new(), LatencyHistogram::new(), LatencyHistogram::new());
        for i in 0..500u64 {
            let v = i * 13 % 7919;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            pooled.record(v);
        }
        let merged = LatencyHistogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), pooled.count());
        assert_eq!(merged.sum_us(), pooled.sum_us());
        assert_eq!(merged.snapshot(), pooled.snapshot());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.percentile(q), pooled.percentile(q));
        }
    }

    #[test]
    fn snapshot_merge_matches_live_merge() {
        let (a, b) = (LatencyHistogram::new(), LatencyHistogram::new());
        for i in 0..200u64 {
            a.record(i * 3);
            b.record(i * 11 + 5);
        }
        let live = LatencyHistogram::new();
        live.merge_from(&a);
        live.merge_from(&b);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap, live.snapshot());
        for q in [0.25, 0.5, 0.75, 0.99] {
            assert_eq!(snap.percentile(q), live.percentile(q));
        }
    }

    #[test]
    fn escalation_rate_math() {
        let c = StatsCollector::new();
        assert_eq!(c.snapshot().escalation_rate, 0.0, "no staged races, no rate");
        c.topk_races.store(8, Ordering::Relaxed);
        c.escalations.store(2, Ordering::Relaxed);
        c.pruned_entrants.store(18, Ordering::Relaxed);
        let s = c.snapshot();
        assert!((s.escalation_rate - 0.25).abs() < 1e-12);
        assert_eq!(s.pruned_entrants, 18);
    }

    #[test]
    fn hit_rate_math() {
        let c = StatsCollector::new();
        c.cache_hits.store(3, Ordering::Relaxed);
        c.cache_misses.store(1, Ordering::Relaxed);
        assert!((c.snapshot().hit_rate - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_absorbs_sustained_load_without_drift() {
        // The reservoir this replaces forgot old samples after 8192
        // recordings; the histogram keeps exact counts forever.
        let c = StatsCollector::new();
        for _ in 0..10_000 {
            c.record_latency(Duration::from_micros(5));
        }
        assert_eq!(c.latency.count(), 10_000);
        assert_eq!(c.snapshot().latency_p50, Duration::from_micros(5));
    }
}
