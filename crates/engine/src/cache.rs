//! Query canonicalization and the sharded LRU result cache.
//!
//! Repeated queries are common in serving workloads; a cache hit skips
//! the race (and its V× CPU cost) entirely. The cache key is a
//! *canonical* form of the query: nodes are reordered by a label/degree/
//! neighbourhood refinement and the edge list is label-sorted, so the
//! same pattern resubmitted — including under many trivial renumberings —
//! maps to the same key. The canonical form retains the **full**
//! structure (node labels + exact edge list + edge labels), so two
//! structurally different queries can never collide: a hit is always a
//! correct answer. Cached embeddings are stored in canonical numbering
//! and translated into each requesting query's own numbering.
//!
//! Sharding keeps lock contention off the serving path: keys hash to one
//! of N independently-locked LRU shards.

use psi_core::Variant;
use psi_graph::{Graph, NodeId};
use psi_matchers::Embedding;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;
use std::time::Duration;

/// Canonical identity of a query (plus the answer-shaping embedding cap).
///
/// Two graphs with equal keys are identical labeled graphs (node labels,
/// edge list **and** edge labels, up to the deterministic canonical
/// renumbering); the key is injective on structure, so cache hits are
/// sound. Isomorphic queries whose nodes the refinement cannot
/// distinguish may still get distinct keys — that costs a cache miss,
/// never a wrong answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Node labels in canonical order.
    labels: Vec<u32>,
    /// Edges as canonical-index pairs `(min, max, edge label)`, sorted.
    edges: Vec<(u32, u32, Option<u32>)>,
    /// The embedding cap the cached answer was computed under.
    max_matches: usize,
}

impl QueryKey {
    /// Canonicalizes `query` under embedding cap `max_matches`.
    pub fn canonical(query: &Graph, max_matches: usize) -> Self {
        Self::canonical_with_map(query, max_matches).0
    }

    /// Canonicalizes `query` and also returns the node mapping
    /// (`map[original] = canonical index`) needed to translate embeddings
    /// between this query's numbering and the canonical numbering shared
    /// by every query with the same key.
    pub fn canonical_with_map(query: &Graph, max_matches: usize) -> (Self, Vec<u32>) {
        let n = query.node_count();
        // Refinement signature per node: (label, degree, sorted neighbour
        // labels). Nodes are ordered by signature; ties keep original
        // order, which preserves injectivity and determinism.
        let mut signature: Vec<(u32, usize, Vec<u32>, NodeId)> = query
            .nodes()
            .map(|v| {
                let mut nls: Vec<u32> =
                    query.neighbors(v).iter().map(|&u| query.label(u)).collect();
                nls.sort_unstable();
                (query.label(v), query.degree(v), nls, v)
            })
            .collect();
        signature.sort();
        // canonical index of original node v
        let mut canon = vec![0u32; n];
        for (new_idx, &(_, _, _, old)) in signature.iter().enumerate() {
            canon[old as usize] = new_idx as u32;
        }
        let labels = signature.iter().map(|&(l, _, _, _)| l).collect();
        let mut edges: Vec<(u32, u32, Option<u32>)> = query
            .edges()
            .map(|(u, v)| {
                let (a, b) = (canon[u as usize], canon[v as usize]);
                (a.min(b), a.max(b), query.edge_label(u, v))
            })
            .collect();
        edges.sort_unstable();
        (Self { labels, edges, max_matches }, canon)
    }

    fn shard_of(&self, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % shards
    }
}

/// Reindexes an embedding from a query's own node numbering into the
/// canonical numbering of its [`QueryKey`] (`canon` from
/// [`QueryKey::canonical_with_map`]).
pub fn embedding_to_canonical(embedding: &[NodeId], canon: &[u32]) -> Embedding {
    let mut out = vec![0; embedding.len()];
    for (q, &data_node) in embedding.iter().enumerate() {
        out[canon[q] as usize] = data_node;
    }
    out
}

/// Reindexes a canonical-numbered embedding into a query's own numbering.
pub fn embedding_from_canonical(embedding: &[NodeId], canon: &[u32]) -> Embedding {
    canon.iter().map(|&c| embedding[c as usize]).collect()
}

/// A cached definitive answer for one canonical query.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Whether at least one embedding exists.
    pub found: bool,
    /// Number of embeddings found (under the key's `max_matches` cap).
    pub num_matches: usize,
    /// The embeddings, in **canonical** node numbering — translate with
    /// [`embedding_from_canonical`] using the requesting query's map
    /// before handing them to a caller.
    pub embeddings: Vec<Embedding>,
    /// The variant that won the race producing this answer, if raced.
    pub winner: Option<Variant>,
    /// How long the cold (uncached) execution took — lets callers report
    /// cache speedups.
    pub cold_elapsed: Duration,
}

struct Entry {
    value: std::sync::Arc<CachedAnswer>,
    last_used: u64,
}

struct Shard {
    map: HashMap<QueryKey, Entry>,
    tick: u64,
    capacity: usize,
}

impl Shard {
    fn touch(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A sharded LRU cache from canonical query keys to definitive answers.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
}

impl ShardedCache {
    /// Cache with `shards` independent locks and `capacity` total entries
    /// (split evenly; every shard holds at least one entry).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), tick: 0, capacity: per_shard }))
                .collect(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &QueryKey) -> Option<std::sync::Arc<CachedAnswer>> {
        let mut shard =
            self.shards[key.shard_of(self.shards.len())].lock().expect("cache shard lock");
        let tick = shard.touch();
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(std::sync::Arc::clone(&entry.value))
    }

    /// Inserts (or refreshes) an answer, evicting the least-recently-used
    /// entries of the shard when full.
    pub fn insert(&self, key: QueryKey, value: std::sync::Arc<CachedAnswer>) {
        let mut shard =
            self.shards[key.shard_of(self.shards.len())].lock().expect("cache shard lock");
        let tick = shard.touch();
        while shard.map.len() >= shard.capacity && !shard.map.contains_key(&key) {
            // O(shard size) eviction scan: shards are small (capacity /
            // shard count) and inserts happen at most once per cache miss,
            // so this stays off the hot (hit) path.
            let Some(oldest) =
                shard.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            shard.map.remove(&oldest);
        }
        shard.map.insert(key, Entry { value, last_used: tick });
    }

    /// Invalidates every cached answer across all shards, returning the
    /// number of entries dropped. Used when the stored graph mutates:
    /// cached answers were computed against an earlier graph epoch, and
    /// a hit on one would serve a stale (possibly wrong) result.
    pub fn clear(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let mut shard = s.lock().expect("cache shard lock");
                let dropped = shard.map.len();
                shard.map.clear();
                dropped
            })
            .sum()
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard lock").map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    fn answer(n: usize) -> std::sync::Arc<CachedAnswer> {
        std::sync::Arc::new(CachedAnswer {
            found: n > 0,
            num_matches: n,
            embeddings: Vec::new(),
            winner: None,
            cold_elapsed: Duration::from_millis(1),
        })
    }

    #[test]
    fn identical_queries_share_a_key() {
        let a = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert_eq!(QueryKey::canonical(&a, 1000), QueryKey::canonical(&b, 1000));
    }

    #[test]
    fn renumbered_queries_share_a_key_when_labels_differ() {
        // Same path, nodes listed in a different order: the refinement
        // (distinct labels) fully determines the canonical order.
        let a = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let b = graph_from_parts(&[2, 1, 0], &[(2, 1), (1, 0)]);
        assert_eq!(QueryKey::canonical(&a, 1000), QueryKey::canonical(&b, 1000));
    }

    #[test]
    fn different_structure_never_collides() {
        // Same label multiset and edge count: a path vs. a triangle-free
        // star. Keys must differ because structure differs.
        let path = graph_from_parts(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 3)]);
        let star = graph_from_parts(&[0, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        assert_ne!(QueryKey::canonical(&path, 1000), QueryKey::canonical(&star, 1000));
    }

    #[test]
    fn edge_labels_are_part_of_the_key() {
        use psi_graph::GraphBuilder;
        let labeled = |edge_label: u32| {
            let mut b = GraphBuilder::new();
            let u = b.add_node(0);
            let v = b.add_node(0);
            b.add_labeled_edge(u, v, edge_label).expect("valid edge");
            b.build().expect("valid graph")
        };
        assert_ne!(
            QueryKey::canonical(&labeled(1), 1000),
            QueryKey::canonical(&labeled(2), 1000),
            "same topology, different edge labels must not collide"
        );
        assert_eq!(QueryKey::canonical(&labeled(1), 1000), QueryKey::canonical(&labeled(1), 1000));
    }

    #[test]
    fn embedding_canonical_round_trip() {
        // Query nodes 0,1,2 map to canonical 2,0,1: translating to
        // canonical numbering and back is the identity.
        let canon = vec![2, 0, 1];
        let emb = vec![10, 20, 30];
        let canonical = embedding_to_canonical(&emb, &canon);
        assert_eq!(canonical, vec![20, 30, 10]);
        assert_eq!(embedding_from_canonical(&canonical, &canon), emb);
    }

    #[test]
    fn max_matches_is_part_of_the_key() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        assert_ne!(QueryKey::canonical(&g, 1), QueryKey::canonical(&g, 1000));
    }

    #[test]
    fn cache_hit_and_miss() {
        let cache = ShardedCache::new(4, 64);
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        let key = QueryKey::canonical(&g, 1);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), answer(3));
        assert_eq!(cache.get(&key).expect("hit").num_matches, 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_drops_every_shard() {
        let cache = ShardedCache::new(4, 64);
        let keys: Vec<QueryKey> = (0..6)
            .map(|i| {
                QueryKey::canonical(&graph_from_parts(&[i as u32, i as u32 + 1], &[(0, 1)]), 1)
            })
            .collect();
        for key in &keys {
            cache.insert(key.clone(), answer(1));
        }
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.clear(), 6);
        assert!(cache.is_empty());
        assert!(keys.iter().all(|k| cache.get(k).is_none()));
        assert_eq!(cache.clear(), 0, "clearing an empty cache drops nothing");
    }

    #[test]
    fn lru_evicts_oldest_within_shard() {
        // One shard, capacity 2: inserting a third key evicts the least
        // recently used of the first two.
        let cache = ShardedCache::new(1, 2);
        let keys: Vec<QueryKey> = (0..3)
            .map(|i| {
                QueryKey::canonical(&graph_from_parts(&[i as u32, i as u32 + 1], &[(0, 1)]), 1)
            })
            .collect();
        cache.insert(keys[0].clone(), answer(0));
        cache.insert(keys[1].clone(), answer(1));
        assert!(cache.get(&keys[0]).is_some()); // refresh key 0
        cache.insert(keys[2].clone(), answer(2));
        assert!(cache.get(&keys[0]).is_some(), "recently used survives");
        assert!(cache.get(&keys[1]).is_none(), "LRU entry evicted");
        assert!(cache.get(&keys[2]).is_some());
    }
}
