//! Metrics export: point-in-time snapshots of engine observability
//! state, renderable as Prometheus text or JSON.
//!
//! A [`MetricsExporter`] is a *snapshot*, not a live view: construct one
//! with [`crate::Engine::exporter`] / [`crate::MultiEngine::exporter`]
//! at scrape time, render it, drop it. Snapshotting decouples rendering
//! from the hot path — the only cost on the serving side is the atomic
//! loads taken while the snapshot is built.
//!
//! The Prometheus rendering follows the text exposition format: one
//! `# TYPE` line per metric family, `psi_`-prefixed names, a `graph`
//! label distinguishing tenants of a [`crate::MultiEngine`], and native
//! histogram families (`_bucket{le=...}` / `_sum` / `_count`) for the
//! log-bucketed latency histograms. Only buckets that hold samples are
//! emitted (plus `+Inf`), so the series count tracks the observed
//! latency spread, not the 1920-bucket histogram resolution.

use crate::engine::Engine;
use crate::stats::{EngineStats, HistogramSnapshot};
use crate::telemetry::SlowQuery;
use std::fmt::Write as _;

/// Which latency histogram of a graph to address in
/// [`MetricsExporter::histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramKind {
    /// End-to-end query latency (all served queries).
    Latency,
    /// Admission → race setup (queue wait).
    QueueWait,
    /// Time spent parked in the waiting room (submission → slot grant).
    ParkWait,
    /// Race setup → finalize start.
    RaceStage,
    /// The finalize body itself.
    FinalizeStage,
}

/// Point-in-time observability snapshot of one graph's engine.
#[derive(Debug, Clone)]
pub struct GraphMetricsSnapshot {
    /// Registered graph name; `None` for a standalone [`Engine`].
    pub name: Option<String>,
    /// Counter / rate snapshot.
    pub stats: EngineStats,
    /// End-to-end latency histogram over every served query.
    pub latency: HistogramSnapshot,
    /// Queue-wait stage histogram (admission → setup).
    pub queue_wait: HistogramSnapshot,
    /// Waiting-room park time histogram (submission → slot grant).
    pub park_wait: HistogramSnapshot,
    /// Race stage histogram (setup → finalize start).
    pub race_stage: HistogramSnapshot,
    /// Finalize stage histogram.
    pub finalize_stage: HistogramSnapshot,
    /// Trace events dropped because rings were full.
    pub trace_dropped: u64,
    /// The worst-latency queries, slowest first, with per-entrant timing.
    pub slow: Vec<SlowQuery>,
}

impl GraphMetricsSnapshot {
    fn capture(name: Option<String>, engine: &Engine) -> Self {
        let c = engine.stats_collector();
        Self {
            name,
            stats: engine.stats(),
            latency: c.latency.snapshot(),
            queue_wait: c.queue_wait.snapshot(),
            park_wait: c.park_wait.snapshot(),
            race_stage: c.race_stage.snapshot(),
            finalize_stage: c.finalize_stage.snapshot(),
            trace_dropped: engine.trace_dropped(),
            slow: engine.slow_queries(),
        }
    }

    fn histogram(&self, kind: HistogramKind) -> &HistogramSnapshot {
        match kind {
            HistogramKind::Latency => &self.latency,
            HistogramKind::QueueWait => &self.queue_wait,
            HistogramKind::ParkWait => &self.park_wait,
            HistogramKind::RaceStage => &self.race_stage,
            HistogramKind::FinalizeStage => &self.finalize_stage,
        }
    }
}

/// A renderable snapshot of every graph's metrics. See the module docs.
#[derive(Debug, Clone)]
pub struct MetricsExporter {
    graphs: Vec<GraphMetricsSnapshot>,
}

impl MetricsExporter {
    pub(crate) fn from_graphs(graphs: Vec<(Option<String>, &Engine)>) -> Self {
        Self {
            graphs: graphs
                .into_iter()
                .map(|(name, engine)| GraphMetricsSnapshot::capture(name, engine))
                .collect(),
        }
    }

    /// The per-graph snapshots, in registration order.
    pub fn graphs(&self) -> &[GraphMetricsSnapshot] {
        &self.graphs
    }

    /// One graph's histogram snapshot by graph index, for programmatic
    /// inspection (tests, dashboards). `graph` indexes [`Self::graphs`].
    pub fn histogram(&self, graph: usize, kind: HistogramKind) -> Option<&HistogramSnapshot> {
        self.graphs.get(graph).map(|g| g.histogram(kind))
    }

    /// The pooled histogram across every graph: bucket-wise merge of the
    /// per-graph snapshots.
    pub fn merged_histogram(&self, kind: HistogramKind) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for g in &self.graphs {
            merged.merge(g.histogram(kind));
        }
        merged
    }

    fn labels(&self, graph: &GraphMetricsSnapshot, extra: &[(&str, &str)]) -> String {
        let mut pairs: Vec<String> = Vec::new();
        if let Some(name) = &graph.name {
            pairs.push(format!("graph=\"{}\"", escape_label(name)));
        }
        for (k, v) in extra {
            pairs.push(format!("{k}=\"{v}\""));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        type CounterFamily = (&'static str, &'static str, fn(&EngineStats) -> u64);
        let counters: [CounterFamily; 19] = [
            ("psi_queries_total", "Queries accepted", |s| s.queries),
            ("psi_cache_hits_total", "Result-cache hits", |s| s.cache_hits),
            ("psi_cache_misses_total", "Result-cache misses", |s| s.cache_misses),
            ("psi_races_total", "Full races run", |s| s.races),
            ("psi_fast_paths_total", "Predictor fast-path serves", |s| s.fast_paths),
            ("psi_fast_path_fallbacks_total", "Fast paths that fell back to a race", |s| {
                s.fast_path_fallbacks
            }),
            ("psi_cancelled_variants_total", "Losing entrants cancelled", |s| s.cancelled_variants),
            (
                "psi_busy_rejections_total",
                "Submissions bounced at admission (no waiting room)",
                |s| s.busy_rejections,
            ),
            (
                "psi_queue_full_total",
                "Submissions refused because the waiting room overflowed",
                |s| s.queue_full_rejections,
            ),
            ("psi_parked_total", "Submissions parked in the waiting room", |s| s.parked),
            ("psi_inconclusive_total", "Races with no conclusive winner", |s| s.inconclusive),
            ("psi_topk_races_total", "Races launched as a pruned top-K heat", |s| s.topk_races),
            ("psi_pruned_entrants_total", "Entrants never launched (pruned)", |s| {
                s.pruned_entrants
            }),
            ("psi_escalations_total", "Pruned heats escalated to the full field", |s| {
                s.escalations
            }),
            ("psi_slices_total", "Slice tasks spawned for sliced heat entrants", |s| {
                s.slices_spawned
            }),
            ("psi_slice_steals_total", "Root-candidate ranges stolen across slices", |s| {
                s.slice_steals
            }),
            ("psi_updates_applied_total", "Graph-mutation batches applied", |s| s.updates_applied),
            ("psi_compactions_total", "Delta overlays folded into a new epoch", |s| s.compactions),
            (
                "psi_cache_invalidations_total",
                "Cache partition wipes (mutations and epoch swaps)",
                |s| s.cache_invalidations,
            ),
        ];
        for (name, help, get) in counters {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for g in &self.graphs {
                let _ = writeln!(out, "{name}{} {}", self.labels(g, &[]), get(&g.stats));
            }
        }
        let _ = writeln!(out, "# HELP psi_edge_probes_total Adjacency probes by index kind");
        let _ = writeln!(out, "# TYPE psi_edge_probes_total counter");
        for g in &self.graphs {
            let _ = writeln!(
                out,
                "psi_edge_probes_total{} {}",
                self.labels(g, &[("kind", "bitset")]),
                g.stats.edge_probes_bitset
            );
            let _ = writeln!(
                out,
                "psi_edge_probes_total{} {}",
                self.labels(g, &[("kind", "binary")]),
                g.stats.edge_probes_binary
            );
        }
        let _ = writeln!(out, "# HELP psi_trace_dropped_total Trace events dropped (rings full)");
        let _ = writeln!(out, "# TYPE psi_trace_dropped_total counter");
        for g in &self.graphs {
            let _ =
                writeln!(out, "psi_trace_dropped_total{} {}", self.labels(g, &[]), g.trace_dropped);
        }
        type GaugeFamily = (&'static str, &'static str, fn(&GraphMetricsSnapshot) -> f64);
        let gauges: [GaugeFamily; 6] = [
            ("psi_uptime_seconds", "Engine uptime", |g| g.stats.uptime.as_secs_f64()),
            ("psi_cache_hit_rate", "Cache hit rate (hits / lookups)", |g| g.stats.hit_rate),
            ("psi_escalation_rate", "Escalations per top-K race", |g| g.stats.escalation_rate),
            ("psi_index_build_us", "One-time target-index build cost", |g| {
                g.stats.index_build_us as f64
            }),
            ("psi_waiting_room_depth", "Requests currently parked in the waiting room", |g| {
                g.stats.waiting_room_depth as f64
            }),
            ("psi_epoch", "Live-graph epoch (bumped per compaction)", |g| g.stats.epoch as f64),
        ];
        for (name, help, get) in gauges {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            for g in &self.graphs {
                let _ = writeln!(out, "{name}{} {}", self.labels(g, &[]), get(g));
            }
        }
        // End-to-end latency: its own family.
        let _ = writeln!(out, "# HELP psi_query_latency_us End-to-end query latency");
        let _ = writeln!(out, "# TYPE psi_query_latency_us histogram");
        for g in &self.graphs {
            self.render_histogram(&mut out, "psi_query_latency_us", g, &[], &g.latency);
        }
        // Stage breakdowns share one family, distinguished by a label.
        let _ = writeln!(out, "# HELP psi_stage_latency_us Per-stage query latency");
        let _ = writeln!(out, "# TYPE psi_stage_latency_us histogram");
        for g in &self.graphs {
            for (stage, hist) in [
                ("queue_wait", &g.queue_wait),
                ("race", &g.race_stage),
                ("finalize", &g.finalize_stage),
            ] {
                self.render_histogram(
                    &mut out,
                    "psi_stage_latency_us",
                    g,
                    &[("stage", stage)],
                    hist,
                );
            }
        }
        // Park wait: its own family — it measures time *outside* the
        // query pipeline (before admission), not a pipeline stage.
        let _ = writeln!(out, "# HELP psi_park_wait_us Waiting-room park time");
        let _ = writeln!(out, "# TYPE psi_park_wait_us histogram");
        for g in &self.graphs {
            self.render_histogram(&mut out, "psi_park_wait_us", g, &[], &g.park_wait);
        }
        out
    }

    fn render_histogram(
        &self,
        out: &mut String,
        name: &str,
        graph: &GraphMetricsSnapshot,
        extra: &[(&str, &str)],
        hist: &HistogramSnapshot,
    ) {
        let mut cumulative = 0u64;
        for &(upper, count) in &hist.buckets {
            cumulative += count;
            let upper = upper.to_string();
            let mut labels: Vec<(&str, &str)> = extra.to_vec();
            labels.push(("le", upper.as_str()));
            let _ = writeln!(out, "{name}_bucket{} {cumulative}", self.labels(graph, &labels));
        }
        let mut labels: Vec<(&str, &str)> = extra.to_vec();
        labels.push(("le", "+Inf"));
        let _ = writeln!(out, "{name}_bucket{} {}", self.labels(graph, &labels), hist.count);
        let _ = writeln!(out, "{name}_sum{} {}", self.labels(graph, extra), hist.sum_us);
        let _ = writeln!(out, "{name}_count{} {}", self.labels(graph, extra), hist.count);
    }

    /// Renders the snapshot as a self-contained JSON document: per-graph
    /// counters, latency percentiles, stage breakdowns and the
    /// slow-query log with per-entrant timing.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"graphs\":[");
        for (i, g) in self.graphs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            match &g.name {
                Some(name) => {
                    let _ = write!(out, "\"name\":\"{}\",", escape_json(name));
                }
                None => out.push_str("\"name\":null,"),
            }
            let s = &g.stats;
            let _ = write!(
                out,
                "\"queries\":{},\"cache_hits\":{},\"cache_misses\":{},\"hit_rate\":{:.6},\
                 \"races\":{},\"fast_paths\":{},\"fast_path_fallbacks\":{},\
                 \"cancelled_variants\":{},\"busy_rejections\":{},\
                 \"queue_full_rejections\":{},\"parked\":{},\"waiting_room_depth\":{},\
                 \"inconclusive\":{},\
                 \"topk_races\":{},\"pruned_entrants\":{},\"escalations\":{},\
                 \"escalation_rate\":{:.6},\
                 \"sliced_races\":{},\"slices_spawned\":{},\"slice_steals\":{},\
                 \"index_build_us\":{},\
                 \"edge_probes_bitset\":{},\"edge_probes_binary\":{},\
                 \"updates_applied\":{},\"compactions\":{},\"compaction_us\":{},\
                 \"cache_invalidations\":{},\"epoch\":{},\
                 \"throughput_qps\":{:.3},\"uptime_us\":{},\"trace_dropped\":{}",
                s.queries,
                s.cache_hits,
                s.cache_misses,
                s.hit_rate,
                s.races,
                s.fast_paths,
                s.fast_path_fallbacks,
                s.cancelled_variants,
                s.busy_rejections,
                s.queue_full_rejections,
                s.parked,
                s.waiting_room_depth,
                s.inconclusive,
                s.topk_races,
                s.pruned_entrants,
                s.escalations,
                s.escalation_rate,
                s.sliced_races,
                s.slices_spawned,
                s.slice_steals,
                s.index_build_us,
                s.edge_probes_bitset,
                s.edge_probes_binary,
                s.updates_applied,
                s.compactions,
                s.compaction_us,
                s.cache_invalidations,
                s.epoch,
                s.throughput_qps,
                s.uptime.as_micros(),
                g.trace_dropped,
            );
            let _ = write!(
                out,
                ",\"latency_us\":{{\"p50\":{},\"p99\":{},\"mean\":{:.1},\"count\":{}}}",
                g.latency.percentile(0.50),
                g.latency.percentile(0.99),
                g.latency.mean_us(),
                g.latency.count,
            );
            out.push_str(",\"stages\":{");
            for (j, (stage, hist)) in [
                ("queue_wait", &g.queue_wait),
                ("park_wait", &g.park_wait),
                ("race", &g.race_stage),
                ("finalize", &g.finalize_stage),
            ]
            .into_iter()
            .enumerate()
            {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\"{stage}\":{{\"p50\":{},\"p99\":{},\"count\":{}}}",
                    hist.percentile(0.50),
                    hist.percentile(0.99),
                    hist.count,
                );
            }
            out.push('}');
            out.push_str(",\"slow_queries\":[");
            for (j, q) in g.slow.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"query\":{},\"elapsed_us\":{},\"path\":\"{:?}\",\"conclusive\":{},",
                    q.query, q.elapsed_us, q.path, q.conclusive
                );
                match q.winner {
                    Some(w) => {
                        let _ = write!(out, "\"winner\":\"{w}\",");
                    }
                    None => out.push_str("\"winner\":null,"),
                }
                out.push_str("\"entrants\":[");
                for (k, e) in q.entrants.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"variant\":\"{}\",\"stop\":\"{:?}\",\"wall_us\":{},\"pruned\":{}}}",
                        e.variant, e.stop, e.wall_us, e.pruned
                    );
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

impl Engine {
    /// A point-in-time [`MetricsExporter`] over this engine's metrics.
    pub fn exporter(&self) -> MetricsExporter {
        MetricsExporter::from_graphs(vec![(None, self)])
    }
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping_handles_quotes_and_backslashes() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("tab\there\n"), "tab\\there\\n");
    }
}
