//! The unified submission API: one request builder, one trait, one
//! completion handle.
//!
//! The engine used to expose a 4-way matrix of blocking calls (`submit`,
//! `submit_with_budget`, `try_submit`, `try_submit_with_budget`),
//! duplicated again per-graph on [`crate::MultiEngine`] — eight entry
//! points, each an OS-thread-per-query contract. This module replaces
//! that matrix with three pieces:
//!
//! * [`QueryRequest`] — a builder carrying the query plus its optional
//!   budget, target graph and [`Priority`]; the *only* way options reach
//!   the admission path, so budget defaulting happens in exactly one
//!   place.
//! * [`Submit`] — the trait both [`crate::Engine`] and
//!   [`crate::MultiEngine`] implement, so workload drivers, benches and
//!   examples are generic over which engine serves them.
//! * [`QueryTicket`] — a completion handle returned *immediately* after
//!   admission. The race runs entirely on pooled workers; the ticket
//!   polls, waits (with or without a timeout), or registers with a
//!   [`CompletionQueue`] for epoll-style draining of many tickets from
//!   one thread. Dropping a ticket cancels its race through the shared
//!   `CancelToken`, freeing the pool slots the race occupied.
//!
//! Backpressure is still surfaced at *ticket creation*, but in two
//! stages: over-limit [`Submit::submit_nonblocking`] calls park in the
//! engine's bounded waiting room (the ticket returns immediately and the
//! query launches when the fair gate grants it a slot), and only a full
//! room refuses — with a typed [`crate::AdmissionError`] — so a network
//! layer multiplexing thousands of clients absorbs short bursts and
//! sheds only sustained overload.

use crate::engine::{AdmissionGate, EngineResponse, SubmitError};
use crate::registry::GraphId;
use psi_core::RaceBudget;
use psi_graph::Graph;
use psi_matchers::CancelToken;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Relative urgency of a query in the admission queue. Priorities order
/// *waiting* submissions only — they never preempt a race already on the
/// pool, and the fair cross-graph gate applies them after its max–min
/// fairness rule (so a flood of high-priority traffic from one graph
/// still cannot starve another graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Jump ahead of normal traffic when a slot frees.
    High,
    /// The default.
    #[default]
    Normal,
    /// Yield freed slots to everyone else (batch / backfill traffic).
    Low,
}

impl Priority {
    /// Admission rank: lower is served first.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One query submission, built fluently:
///
/// ```
/// use psi_core::RaceBudget;
/// use psi_engine::{Priority, QueryRequest};
/// use psi_graph::graph::graph_from_parts;
///
/// let query = graph_from_parts(&[0, 1], &[(0, 1)]);
/// let request = QueryRequest::new(query)
///     .budget(RaceBudget::decision())
///     .priority(Priority::High);
/// assert_eq!(request.priority_value(), Priority::High);
/// ```
///
/// A request without a budget races under the serving engine's
/// configured default. The target graph matters only to a
/// [`crate::MultiEngine`] (a standalone [`crate::Engine`] stores exactly
/// one graph and ignores it).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    pub(crate) query: Graph,
    pub(crate) budget: Option<RaceBudget>,
    pub(crate) graph: Option<GraphId>,
    pub(crate) priority: Priority,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tag: Option<u64>,
}

impl QueryRequest {
    /// A request for `query` with default budget, no target graph and
    /// [`Priority::Normal`].
    pub fn new(query: Graph) -> Self {
        Self {
            query,
            budget: None,
            graph: None,
            priority: Priority::Normal,
            deadline: None,
            tag: None,
        }
    }

    /// Races under an explicit budget instead of the engine default.
    pub fn budget(mut self, budget: RaceBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Targets a registered graph of a [`crate::MultiEngine`].
    pub fn graph(mut self, graph: GraphId) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Sets the admission priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Caps the query's end-to-end time: the deadline is anchored at
    /// *admission* (the paper's convention — queue wait burns the
    /// caller's budget, not the server's) and folds into the race
    /// budget's wall-clock timeout as the tighter of the two. A query
    /// past its deadline finalizes inconclusive.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Correlation id for [`Submit::submit_into`]: the tag pushed onto
    /// the completion queue when this query finishes (defaults to the
    /// engine-assigned query id). Opaque to the engine.
    pub fn tag(mut self, tag: u64) -> Self {
        self.tag = Some(tag);
        self
    }

    /// The query this request asks about.
    pub fn query(&self) -> &Graph {
        &self.query
    }

    /// The explicit budget, if one was set.
    pub fn budget_value(&self) -> Option<&RaceBudget> {
        self.budget.as_ref()
    }

    /// The target graph, if one was set.
    pub fn graph_value(&self) -> Option<GraphId> {
        self.graph
    }

    /// The admission priority.
    pub fn priority_value(&self) -> Priority {
        self.priority
    }

    /// The admission-anchored deadline, if one was set.
    pub fn deadline_value(&self) -> Option<Duration> {
        self.deadline
    }

    /// The completion-queue correlation tag, if one was set.
    pub fn tag_value(&self) -> Option<u64> {
        self.tag
    }
}

/// The unified submission interface over [`crate::Engine`] and
/// [`crate::MultiEngine`]. All submissions — blocking or not — flow
/// through the same internal admission path; the blocking methods are
/// `ticket + wait` by construction, so the two surfaces cannot drift.
pub trait Submit {
    /// Admits `request` without blocking and returns a completion
    /// handle. At the concurrent-race limit the query *parks* in the
    /// engine's bounded waiting room (the ticket still returns
    /// immediately); a full room refuses with
    /// [`crate::AdmissionError::QueueFull`] — or
    /// [`crate::AdmissionError::Busy`] when the room is disabled. Cache
    /// hits are always served, even at capacity. The returned ticket
    /// completes when the pooled race (or fast path) finishes; dropping
    /// it cancels the race (or frees the parked slot).
    fn submit_nonblocking(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError>;

    /// Like [`Submit::submit_nonblocking`], but blocks for an admission
    /// slot instead of parking — the ticket it returns is already
    /// admitted. Errors only on routing problems
    /// ([`crate::RouteError::UnknownGraph`] / [`crate::RouteError::NoGraph`]).
    fn submit_queued(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError>;

    /// Blocking convenience: `submit_queued` + [`QueryTicket::wait`].
    fn submit_request(&self, request: QueryRequest) -> Result<EngineResponse, SubmitError> {
        Ok(self.submit_queued(request)?.wait())
    }

    /// Non-blocking submission pre-registered with a [`CompletionQueue`]:
    /// when the query completes, the request's [`QueryRequest::tag`]
    /// (defaulting to the engine-assigned query id) is pushed onto
    /// `queue`. This replaces the racy attach-after-submit dance — the
    /// registration exists before the race can possibly finish, in one
    /// call. The returned ticket must be kept (dropping it still cancels
    /// the query); index it by the tag in the driver's pending table.
    fn submit_into(
        &self,
        request: QueryRequest,
        queue: &CompletionQueue,
    ) -> Result<QueryTicket, SubmitError> {
        let tag = request.tag;
        let ticket = self.submit_nonblocking(request)?;
        ticket.register_waiter(queue, tag.unwrap_or_else(|| ticket.query_id()));
        Ok(ticket)
    }

    /// [`Submit::submit_into`]'s blocking sibling: waits for an admission
    /// slot ([`Submit::submit_queued`]) and pre-registers the queue the
    /// same way.
    fn submit_queued_into(
        &self,
        request: QueryRequest,
        queue: &CompletionQueue,
    ) -> Result<QueryTicket, SubmitError> {
        let tag = request.tag;
        let ticket = self.submit_queued(request)?;
        ticket.register_waiter(queue, tag.unwrap_or_else(|| ticket.query_id()));
        Ok(ticket)
    }
}

/// Where a completed response lands and where a waiting ticket blocks.
/// Shared between the ticket (reader) and the in-flight race or fast
/// path (writer); fulfilled exactly once.
pub(crate) struct CompletionSlot {
    inner: Mutex<SlotInner>,
    ready: Condvar,
}

struct SlotInner {
    response: Option<EngineResponse>,
    /// Completion-queue registration: `(queue, tag)` to notify on
    /// fulfillment. Registered after fulfillment, the notification fires
    /// immediately instead.
    waiter: Option<(Arc<QueueInner>, u64)>,
}

impl CompletionSlot {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new(SlotInner { response: None, waiter: None }),
            ready: Condvar::new(),
        }
    }

    /// A slot that is already complete (cache hits never race).
    pub(crate) fn completed(response: EngineResponse) -> Self {
        Self {
            inner: Mutex::new(SlotInner { response: Some(response), waiter: None }),
            ready: Condvar::new(),
        }
    }

    /// Delivers the response; wakes waiters and notifies an attached
    /// completion queue. Must be called at most once.
    pub(crate) fn fulfill(&self, response: EngineResponse) {
        let waiter = {
            let mut inner = self.inner.lock().expect("completion slot lock");
            debug_assert!(inner.response.is_none(), "a completion slot is fulfilled once");
            inner.response = Some(response);
            inner.waiter.take()
        };
        self.ready.notify_all();
        if let Some((queue, tag)) = waiter {
            queue.push(tag);
        }
    }
}

/// A completion handle for one submitted query.
///
/// Returned by [`Submit::submit_nonblocking`] / [`Submit::submit_queued`]
/// immediately after admission; the race itself runs on the engine's
/// pooled workers. Consume the result with [`QueryTicket::poll`] (never
/// blocks), [`QueryTicket::wait`] / [`QueryTicket::wait_timeout`], or
/// attach the ticket to a [`CompletionQueue`] and drain many tickets
/// from one thread.
///
/// ## Consuming vs. borrowing, cancel vs. detach
///
/// The waiting story is deliberately asymmetric:
///
/// * [`QueryTicket::wait`]`(self)` **consumes** — waiting forever is the
///   last thing a caller does with a ticket, and consuming makes
///   wait-then-cancel unrepresentable.
/// * [`QueryTicket::wait_timeout`]`(&self)` **borrows** — a timeout is a
///   polling step, not a verdict; the ticket stays live (not cancelled,
///   not poisoned) and a later wait still gets the answer.
/// * [`QueryTicket::into_response`]`(self)` consumes *only on success*:
///   the completed response, or the ticket handed back untouched.
///
/// **Dropping a ticket cancels its query**: the shared `CancelToken`
/// unwinds every entrant of the race at its next budget check, the race
/// finalizes as inconclusive, and its admission slot and pool workers
/// free promptly. A ticket still *parked* in the waiting room leaves the
/// room instead (its slot frees without ever racing). When
/// fire-and-forget is intended — submit, warm the cache, never read the
/// answer — [`QueryTicket::detach`] releases the handle without
/// cancelling.
#[must_use = "dropping a QueryTicket cancels its query"]
pub struct QueryTicket {
    slot: Arc<CompletionSlot>,
    cancel: CancelToken,
    query_id: u64,
    /// While parked in the waiting room: the gate and park ticket that
    /// remove the entry on cancel/drop. Taken (at most once) by whoever
    /// cancels first; a launched query's entry is already gone and the
    /// gate call is a cheap no-op.
    park: Mutex<Option<(Arc<dyn AdmissionGate>, u64)>>,
    /// Set by [`QueryTicket::detach`]: drop without cancelling.
    detached: bool,
}

impl QueryTicket {
    pub(crate) fn pending(slot: Arc<CompletionSlot>, cancel: CancelToken, query_id: u64) -> Self {
        Self { slot, cancel, query_id, park: Mutex::new(None), detached: false }
    }

    /// A ticket whose query is parked in the waiting room: additionally
    /// carries the handle that unparks it on cancel/drop.
    pub(crate) fn parked(
        slot: Arc<CompletionSlot>,
        cancel: CancelToken,
        query_id: u64,
        gate: Arc<dyn AdmissionGate>,
        park_ticket: u64,
    ) -> Self {
        Self {
            slot,
            cancel,
            query_id,
            park: Mutex::new(Some((gate, park_ticket))),
            detached: false,
        }
    }

    /// A ticket that is already complete (cache hit).
    pub(crate) fn completed(response: EngineResponse, query_id: u64) -> Self {
        Self {
            slot: Arc::new(CompletionSlot::completed(response)),
            cancel: CancelToken::new(),
            query_id,
            park: Mutex::new(None),
            detached: false,
        }
    }

    /// The engine-assigned query id, matching the `query` field of this
    /// submission's [`crate::TraceEvent`]s — the join key between tickets
    /// and the trace stream.
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// The response, if the query has completed. Never blocks; may be
    /// called repeatedly (before *and* after completion).
    pub fn poll(&self) -> Option<EngineResponse> {
        self.slot.inner.lock().expect("completion slot lock").response.clone()
    }

    /// Whether the query has completed.
    pub fn is_complete(&self) -> bool {
        self.slot.inner.lock().expect("completion slot lock").response.is_some()
    }

    /// Blocks until the query completes and returns its response,
    /// consuming the ticket (see the type docs for why `wait` consumes
    /// while [`QueryTicket::wait_timeout`] borrows).
    pub fn wait(self) -> EngineResponse {
        let mut inner = self.slot.inner.lock().expect("completion slot lock");
        loop {
            if let Some(response) = inner.response.clone() {
                return response;
            }
            inner = self.slot.ready.wait(inner).expect("completion slot lock");
        }
    }

    /// Blocks up to `timeout` for the response. `None` means the query
    /// is still running — the ticket is untouched (not cancelled, not
    /// poisoned) and any later `wait`/`poll` still completes normally.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<EngineResponse> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.slot.inner.lock().expect("completion slot lock");
        loop {
            if let Some(response) = inner.response.clone() {
                return Some(response);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, result) =
                self.slot.ready.wait_timeout(inner, left).expect("completion slot lock");
            inner = guard;
            if result.timed_out() && inner.response.is_none() {
                return None;
            }
        }
    }

    /// Cancels the query now (identical to dropping the ticket, but the
    /// handle stays usable — the race finalizes inconclusive and the
    /// ticket completes with that verdict). A query still parked in the
    /// waiting room leaves the room immediately and completes
    /// inconclusive without ever racing.
    pub fn cancel(&self) {
        self.cancel.cancel();
        self.cancel_parking();
    }

    /// Consumes the ticket if its query has completed: the response, or
    /// the ticket handed back untouched so the caller can keep waiting.
    pub fn into_response(self) -> Result<EngineResponse, QueryTicket> {
        match self.poll() {
            Some(response) => Ok(response),
            None => Err(self),
        }
    }

    /// Releases the handle **without** cancelling: the query keeps
    /// running (or stays parked) to completion, its answer feeding the
    /// cache and predictor as usual — fire-and-forget. The response is
    /// unobservable afterwards; use [`Submit::submit_into`] when the
    /// answer matters but the handle should live in a table.
    pub fn detach(mut self) {
        self.detached = true;
    }

    /// Removes this query from the waiting room, if it is still parked.
    fn cancel_parking(&self) {
        let parked = self.park.lock().expect("park handle lock").take();
        if let Some((gate, ticket)) = parked {
            gate.cancel_parked(ticket);
        }
    }

    /// Registers this ticket with `queue`: when the query completes,
    /// `tag` is pushed onto the queue (immediately, if it already has).
    /// Re-attaching replaces any earlier registration.
    #[deprecated(
        since = "0.7.0",
        note = "use Submit::submit_into, which registers the queue before the race can finish"
    )]
    pub fn attach(&self, queue: &CompletionQueue, tag: u64) {
        self.register_waiter(queue, tag);
    }

    /// [`QueryTicket::attach`] without the deprecation — the shared body
    /// behind `attach` and [`Submit::submit_into`].
    pub(crate) fn register_waiter(&self, queue: &CompletionQueue, tag: u64) {
        let completed = {
            let mut inner = self.slot.inner.lock().expect("completion slot lock");
            if inner.response.is_some() {
                true
            } else {
                inner.waiter = Some((Arc::clone(&queue.inner), tag));
                false
            }
        };
        if completed {
            queue.inner.push(tag);
        }
    }
}

impl fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryTicket")
            .field("query_id", &self.query_id)
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl Drop for QueryTicket {
    fn drop(&mut self) {
        if self.detached {
            return;
        }
        // Cancelling a finished (or cache-served) query is a no-op; an
        // in-flight one unwinds its entrants at their next budget check;
        // a parked one leaves the waiting room.
        self.cancel.cancel();
        self.cancel_parking();
    }
}

struct QueueInner {
    ready: Mutex<VecDeque<u64>>,
    arrived: Condvar,
}

impl QueueInner {
    fn push(&self, tag: u64) {
        self.ready.lock().expect("completion queue lock").push_back(tag);
        self.arrived.notify_one();
    }
}

/// An epoll-style completion queue: attach any number of
/// [`QueryTicket`]s (each with a caller-chosen `u64` tag), then drain
/// completions from one thread as they arrive — the pattern a network
/// frontend uses to multiplex thousands of in-flight queries over a few
/// event-loop threads.
///
/// Clones share the same queue. Tags are opaque to the engine; callers
/// typically use them to index a table of pending tickets.
#[derive(Clone, Default)]
pub struct CompletionQueue {
    inner: Arc<QueueInner>,
}

impl Default for QueueInner {
    fn default() -> Self {
        Self { ready: Mutex::new(VecDeque::new()), arrived: Condvar::new() }
    }
}

impl CompletionQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tag of a completed ticket, if any completion is pending.
    pub fn try_next(&self) -> Option<u64> {
        self.inner.ready.lock().expect("completion queue lock").pop_front()
    }

    /// Blocks until some attached ticket completes; returns its tag.
    pub fn wait(&self) -> u64 {
        let mut ready = self.inner.ready.lock().expect("completion queue lock");
        loop {
            if let Some(tag) = ready.pop_front() {
                return tag;
            }
            ready = self.inner.arrived.wait(ready).expect("completion queue lock");
        }
    }

    /// Blocks up to `timeout` for a completion; `None` if none arrived.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<u64> {
        let deadline = Instant::now() + timeout;
        let mut ready = self.inner.ready.lock().expect("completion queue lock");
        loop {
            if let Some(tag) = ready.pop_front() {
                return Some(tag);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            let (guard, result) =
                self.inner.arrived.wait_timeout(ready, left).expect("completion queue lock");
            ready = guard;
            if result.timed_out() && ready.is_empty() {
                return None;
            }
        }
    }

    /// Completions delivered but not yet drained.
    pub fn ready_len(&self) -> usize {
        self.inner.ready.lock().expect("completion queue lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedAnswer;
    use crate::engine::ServePath;
    use std::time::Duration;

    fn response() -> EngineResponse {
        EngineResponse {
            answer: Arc::new(CachedAnswer {
                found: true,
                num_matches: 1,
                embeddings: vec![vec![0]],
                winner: None,
                cold_elapsed: Duration::ZERO,
            }),
            path: ServePath::CacheHit,
            elapsed: Duration::ZERO,
            conclusive: true,
        }
    }

    #[test]
    fn request_builder_carries_every_option() {
        let query = psi_graph::graph::graph_from_parts(&[0, 1], &[(0, 1)]);
        let request =
            QueryRequest::new(query.clone()).budget(RaceBudget::decision()).priority(Priority::Low);
        assert_eq!(request.query().node_count(), query.node_count());
        assert_eq!(request.budget_value().map(|b| b.max_matches), Some(1));
        assert_eq!(request.graph_value(), None);
        assert_eq!(request.priority_value(), Priority::Low);
        assert_eq!(QueryRequest::new(query).priority_value(), Priority::Normal);
    }

    #[test]
    fn priority_ranks_order_high_first() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
    }

    #[test]
    fn ticket_poll_wait_and_fulfill() {
        let slot = Arc::new(CompletionSlot::new());
        let ticket = QueryTicket::pending(Arc::clone(&slot), CancelToken::new(), 0);
        assert!(!ticket.is_complete());
        assert!(ticket.poll().is_none());
        assert!(ticket.wait_timeout(Duration::from_millis(5)).is_none());
        slot.fulfill(response());
        assert!(ticket.is_complete());
        assert!(ticket.poll().is_some_and(|r| r.found()));
        assert!(ticket.wait().found());
    }

    #[test]
    fn wait_blocks_until_fulfilled_from_another_thread() {
        let slot = Arc::new(CompletionSlot::new());
        let ticket = QueryTicket::pending(Arc::clone(&slot), CancelToken::new(), 0);
        let filler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.fulfill(response());
        });
        assert!(ticket.wait().found());
        filler.join().expect("filler thread");
    }

    #[test]
    fn dropping_a_pending_ticket_cancels_its_token() {
        let token = CancelToken::new();
        let ticket = QueryTicket::pending(Arc::new(CompletionSlot::new()), token.clone(), 0);
        assert!(!token.is_cancelled());
        drop(ticket);
        assert!(token.is_cancelled());
    }

    #[test]
    fn completion_queue_delivers_tags_in_completion_order() {
        let queue = CompletionQueue::new();
        let slots: Vec<Arc<CompletionSlot>> =
            (0..3).map(|_| Arc::new(CompletionSlot::new())).collect();
        let tickets: Vec<QueryTicket> = slots
            .iter()
            .enumerate()
            .map(|(tag, s)| QueryTicket::pending(Arc::clone(s), CancelToken::new(), tag as u64))
            .collect();
        for (tag, ticket) in tickets.iter().enumerate() {
            ticket.register_waiter(&queue, tag as u64);
        }
        assert_eq!(queue.try_next(), None);
        slots[2].fulfill(response());
        slots[0].fulfill(response());
        assert_eq!(queue.wait(), 2);
        assert_eq!(queue.wait(), 0);
        assert_eq!(queue.wait_timeout(Duration::from_millis(5)), None);
        slots[1].fulfill(response());
        assert_eq!(queue.wait_timeout(Duration::from_secs(1)), Some(1));
        assert_eq!(queue.ready_len(), 0);
    }

    #[test]
    fn attaching_an_already_completed_ticket_fires_immediately() {
        let queue = CompletionQueue::new();
        let ticket = QueryTicket::completed(response(), 7);
        ticket.register_waiter(&queue, 42);
        assert_eq!(queue.try_next(), Some(42));
    }

    #[test]
    fn into_response_consumes_only_on_completion() {
        let slot = Arc::new(CompletionSlot::new());
        let ticket = QueryTicket::pending(Arc::clone(&slot), CancelToken::new(), 3);
        let ticket = ticket.into_response().expect_err("still pending: ticket comes back");
        slot.fulfill(response());
        assert!(ticket.into_response().expect("completed now").found());
    }

    #[test]
    fn detach_releases_without_cancelling() {
        let token = CancelToken::new();
        let ticket = QueryTicket::pending(Arc::new(CompletionSlot::new()), token.clone(), 0);
        ticket.detach();
        assert!(!token.is_cancelled(), "detach must not cancel the query");
    }

    #[test]
    fn request_deadline_and_tag_ride_the_builder() {
        let query = psi_graph::graph::graph_from_parts(&[0, 1], &[(0, 1)]);
        let request = QueryRequest::new(query).deadline(Duration::from_millis(40)).tag(0xBEEF);
        assert_eq!(request.deadline_value(), Some(Duration::from_millis(40)));
        assert_eq!(request.tag_value(), Some(0xBEEF));
    }
}
