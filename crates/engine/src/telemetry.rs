//! Ψ-trace: structured per-query lifecycle events in lock-free bounded
//! ring buffers, plus the slow-query log.
//!
//! Every stage of a query's life emits one [`TraceEvent`] — admitted,
//! cache hit, queue wait measured at setup, heat launch, per-entrant
//! start/finish, win claim, escalation, reserve pruning, finalize — tagged
//! with a per-engine query id and a microsecond timestamp against the
//! engine's epoch. Events land in one of a fixed set of bounded MPMC
//! rings (Vyukov-style sequence-stamped cells), sharded by recording
//! thread so concurrent workers rarely contend on the same head. When a
//! ring is full the event is *dropped and counted*, never blocking the
//! serving path: tracing is an observer, not a participant.
//!
//! Draining merges the shards and sorts by a global sequence number, so
//! consumers see one totally ordered stream. The [`TraceSubscriber`]
//! trait is the streaming hook a future network frontend implements.

use psi_core::Variant;
use psi_matchers::StopReason;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::engine::ServePath;

/// Ring shards per engine: enough that a saturated worker pool rarely
/// collides on one enqueue head, small enough to drain cheaply.
const TRACE_SHARDS: usize = 8;

/// Telemetry knobs carried in [`crate::EngineConfig`].
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Emit lifecycle [`TraceEvent`]s (default on; the overhead contract
    /// is <5% of saturated throughput, enforced by the bench gate).
    pub trace_events: bool,
    /// Total trace-ring capacity in events, split across internal shards
    /// and rounded up per shard to a power of two (default 8192). Events
    /// beyond capacity are dropped and counted, never blocking.
    pub trace_capacity: usize,
    /// Worst-offender queries retained in the slow-query log with
    /// per-entrant timing (default 16; 0 disables the log).
    pub slow_query_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self { trace_events: true, trace_capacity: 8192, slow_query_capacity: 16 }
    }
}

/// One structured lifecycle event. All variants are `Copy`: recording
/// moves a few words into a ring cell, no allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// The query passed admission (or is about to be probed against the
    /// cache) and received its id.
    Admitted {
        /// Engine-assigned query id.
        query: u64,
    },
    /// Terminal: served from the result cache.
    CacheHit {
        /// Engine-assigned query id.
        query: u64,
        /// Probe-to-fulfilled wall time, µs.
        elapsed_us: u64,
    },
    /// The engine was at its concurrent-race limit: the query parked in
    /// the bounded waiting room instead of bouncing. Followed by
    /// [`TraceEvent::Unparked`] when a slot grant launches it, or
    /// directly by a cancelled [`TraceEvent::Finalized`] if its ticket
    /// is dropped while parked.
    Parked {
        /// Engine-assigned query id.
        query: u64,
        /// Waiting-room occupancy for this graph observed just after
        /// parking (counts this entry, so ≥ 1).
        depth: u32,
    },
    /// A parked query received a slot grant and launched.
    Unparked {
        /// Engine-assigned query id.
        query: u64,
        /// Time spent parked (submission → slot grant), µs.
        waited_us: u64,
    },
    /// A worker picked the query up and began race setup; `queue_us` is
    /// the admission→setup queue wait.
    SetupStarted {
        /// Engine-assigned query id.
        query: u64,
        /// Admission-to-setup queue wait, µs.
        queue_us: u64,
    },
    /// The predictor's single-variant fast path ran (before any race).
    /// Inconclusive fast paths fall back to a full race; conclusive ones
    /// are followed by a [`TraceEvent::Finalized`].
    FastPath {
        /// Engine-assigned query id.
        query: u64,
        /// The variant the predictor backed.
        variant: Variant,
        /// Whether the single-variant attempt settled the query.
        conclusive: bool,
        /// Admission-to-attempt-completion wall time, µs.
        elapsed_us: u64,
    },
    /// The first heat launched on the pool.
    HeatLaunched {
        /// Engine-assigned query id.
        query: u64,
        /// Entrants submitted in the first heat.
        launched: u32,
        /// Entrants held back as the escalation reserve.
        reserved: u32,
    },
    /// An entrant body began executing on a worker (via the
    /// [`psi_core::RaceObserver`] stage hook).
    EntrantStarted {
        /// Engine-assigned query id.
        query: u64,
        /// Entrant index in configuration order.
        entrant: u32,
    },
    /// One slice task of a sliced entrant was submitted to the pool
    /// (adaptive scheduling only; unsliced entrants emit none).
    SliceSpawned {
        /// Engine-assigned query id.
        query: u64,
        /// Entrant index in configuration order.
        entrant: u32,
        /// Slice index within the entrant's group (`0..slices`).
        slice: u32,
    },
    /// A slice task finished its share of the root-candidate domain.
    /// The entrant's own [`TraceEvent::EntrantFinished`] follows once
    /// the last slice merges the group.
    SliceFinished {
        /// Engine-assigned query id.
        query: u64,
        /// Entrant index in configuration order.
        entrant: u32,
        /// Slice index within the entrant's group.
        slice: u32,
        /// Root-candidate chunks this slice claimed and ran.
        chunks: u32,
        /// Task-start-to-finish wall time, µs.
        wall_us: u64,
    },
    /// An entrant reported its result.
    EntrantFinished {
        /// Engine-assigned query id.
        query: u64,
        /// Entrant index in configuration order.
        entrant: u32,
        /// Why the entrant's search stopped.
        stop: StopReason,
        /// Race-anchor-to-report wall time, µs.
        wall_us: u64,
    },
    /// An entrant claimed the race (first conclusive finisher; the
    /// cancellation of the losers starts here).
    WinClaimed {
        /// Engine-assigned query id.
        query: u64,
        /// The winning entrant's index.
        entrant: u32,
        /// Race-anchor-to-claim wall time, µs — the paper's Ψ query time.
        wall_us: u64,
    },
    /// A staged race's deadline passed without a verdict: the reserve
    /// launched.
    Escalated {
        /// Engine-assigned query id.
        query: u64,
        /// Reserve entrants submitted.
        launched: u32,
    },
    /// Reserve entrants were pruned because the heat decided the race
    /// without them.
    ReservePruned {
        /// Engine-assigned query id.
        query: u64,
        /// Entrants that never launched.
        count: u32,
    },
    /// Terminal: the query's response was fulfilled (race finalized, fast
    /// path concluded, or the flight was abandoned/cancelled).
    Finalized {
        /// Engine-assigned query id.
        query: u64,
        /// Whether the answer was definitive.
        conclusive: bool,
        /// Whether the query's token was cancelled (ticket drop or
        /// engine shutdown) — only meaningful when not conclusive.
        cancelled: bool,
        /// The winning variant, if any.
        winner: Option<Variant>,
        /// Admission-to-fulfilled wall time, µs.
        elapsed_us: u64,
    },
}

impl TraceEvent {
    /// The query id this event belongs to.
    pub fn query(&self) -> u64 {
        match *self {
            TraceEvent::Admitted { query }
            | TraceEvent::CacheHit { query, .. }
            | TraceEvent::Parked { query, .. }
            | TraceEvent::Unparked { query, .. }
            | TraceEvent::SetupStarted { query, .. }
            | TraceEvent::FastPath { query, .. }
            | TraceEvent::HeatLaunched { query, .. }
            | TraceEvent::EntrantStarted { query, .. }
            | TraceEvent::SliceSpawned { query, .. }
            | TraceEvent::SliceFinished { query, .. }
            | TraceEvent::EntrantFinished { query, .. }
            | TraceEvent::WinClaimed { query, .. }
            | TraceEvent::Escalated { query, .. }
            | TraceEvent::ReservePruned { query, .. }
            | TraceEvent::Finalized { query, .. } => query,
        }
    }

    /// Whether this event ends its query's lifecycle ([`TraceEvent::CacheHit`]
    /// or [`TraceEvent::Finalized`]). Every accepted query emits exactly
    /// one terminal event.
    pub fn is_terminal(&self) -> bool {
        matches!(self, TraceEvent::CacheHit { .. } | TraceEvent::Finalized { .. })
    }
}

/// A [`TraceEvent`] stamped with its global order and emission time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Global per-engine sequence number (drain order).
    pub seq: u64,
    /// Microseconds since the engine's epoch.
    pub at_us: u64,
    /// The event payload.
    pub event: TraceEvent,
}

/// A consumer of drained trace streams — the hook a network frontend or
/// log shipper implements. Batches arrive in global sequence order.
pub trait TraceSubscriber {
    /// Receives one drained batch (may be empty).
    fn on_events(&mut self, events: &[TraceRecord]);
}

impl<F: FnMut(&[TraceRecord])> TraceSubscriber for F {
    fn on_events(&mut self, events: &[TraceRecord]) {
        self(events)
    }
}

/// One cell of a Vyukov bounded MPMC ring: the sequence stamp arbitrates
/// producer/consumer ownership without locks.
struct Cell {
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<TraceRecord>>,
}

/// A bounded lock-free MPMC ring of [`TraceRecord`]s (power-of-two
/// capacity). Push fails (rather than blocking or overwriting) when the
/// ring is full.
struct TraceRing {
    mask: usize,
    cells: Box<[Cell]>,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: cell payloads are only touched by the producer/consumer that
// won the cell via its sequence stamp (Acquire load / Release store
// pairs order the payload access); `TraceRecord` is `Copy` + `Send`.
unsafe impl Send for TraceRing {}
unsafe impl Sync for TraceRing {}

impl TraceRing {
    fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        let cells = (0..capacity)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Self {
            mask: capacity - 1,
            cells,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// Enqueues `record`; `false` when the ring is full.
    fn push(&self, record: TraceRecord) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of the cell until the seq store below.
                        unsafe { (*cell.value.get()).write(record) };
                        cell.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                return false;
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest record; `None` when the ring is empty.
    fn pop(&self) -> Option<TraceRecord> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[pos & self.mask];
            let seq = cell.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of the initialized cell payload.
                        let record = unsafe { (*cell.value.get()).assume_init_read() };
                        cell.seq
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return Some(record);
                    }
                    Err(found) => pos = found,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }
}

/// Picks a stable per-thread shard so workers spread across rings.
fn thread_shard(shards: usize) -> usize {
    static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD_SEED: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    }
    SHARD_SEED.with(|s| *s) % shards
}

/// The per-engine trace collector: sharded rings plus the global
/// sequence counter that restores total order on drain.
pub(crate) struct TraceSink {
    shards: Vec<TraceRing>,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

impl TraceSink {
    pub(crate) fn new(total_capacity: usize, epoch: Instant) -> Self {
        let per_shard = (total_capacity / TRACE_SHARDS).max(8);
        let shards = (0..TRACE_SHARDS).map(|_| TraceRing::with_capacity(per_shard)).collect();
        Self { shards, seq: AtomicU64::new(0), dropped: AtomicU64::new(0), epoch }
    }

    /// Records one event on the calling thread's shard; drops (and
    /// counts) when that shard is full.
    pub(crate) fn emit(&self, event: TraceEvent) {
        let record = TraceRecord {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            at_us: self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64,
            event,
        };
        if !self.shards[thread_shard(self.shards.len())].push(record) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains every shard and merges into one sequence-ordered batch.
    pub(crate) fn drain(&self) -> Vec<TraceRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            while let Some(record) = shard.pop() {
                out.push(record);
            }
        }
        out.sort_unstable_by_key(|r| r.seq);
        out
    }

    /// Events dropped because a shard was full.
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Per-entrant timing attached to a slow-query record.
#[derive(Debug, Clone)]
pub struct EntrantTiming {
    /// The entrant's (algorithm × rewriting) identity.
    pub variant: Variant,
    /// Why its search stopped.
    pub stop: StopReason,
    /// Race-anchor-to-report wall time, µs (0 for pruned entrants).
    pub wall_us: u64,
    /// Whether the entrant was pruned before launching.
    pub pruned: bool,
}

/// One worst-offender query retained by the [`SlowQueryLog`].
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Engine-assigned query id.
    pub query: u64,
    /// Admission-to-fulfilled wall time, µs.
    pub elapsed_us: u64,
    /// How the query was served.
    pub path: ServePath,
    /// Whether the answer was definitive.
    pub conclusive: bool,
    /// The winning variant, if any.
    pub winner: Option<Variant>,
    /// Per-entrant timing, in configuration order.
    pub entrants: Vec<EntrantTiming>,
}

/// A bounded keep-the-worst log of served queries: cheap rejection of
/// fast queries via an atomic floor, a small mutex-held sorted vec for
/// the true offenders.
pub(crate) struct SlowQueryLog {
    capacity: usize,
    floor_us: AtomicU64,
    entries: Mutex<Vec<SlowQuery>>,
}

impl SlowQueryLog {
    pub(crate) fn new(capacity: usize) -> Self {
        Self { capacity, floor_us: AtomicU64::new(0), entries: Mutex::new(Vec::new()) }
    }

    /// Offers one served query; kept only if it ranks among the worst.
    pub(crate) fn record(&self, entry: SlowQuery) {
        if self.capacity == 0 || entry.elapsed_us < self.floor_us.load(Ordering::Relaxed) {
            return;
        }
        let mut entries = self.entries.lock().expect("slow-query log lock");
        entries.push(entry);
        entries.sort_by_key(|e| std::cmp::Reverse(e.elapsed_us));
        entries.truncate(self.capacity);
        if entries.len() == self.capacity {
            // Full: future queries must beat the current least-worst.
            self.floor_us.store(entries.last().map_or(0, |e| e.elapsed_us), Ordering::Relaxed);
        }
    }

    /// The retained offenders, worst first.
    pub(crate) fn worst(&self) -> Vec<SlowQuery> {
        self.entries.lock().expect("slow-query log lock").clone()
    }
}

/// Everything one engine's serving path needs to observe itself: the
/// query-id allocator, the optional trace sink, and the slow-query log.
pub(crate) struct Telemetry {
    pub(crate) trace: Option<Arc<TraceSink>>,
    pub(crate) slow: SlowQueryLog,
    next_query: AtomicU64,
}

impl Telemetry {
    pub(crate) fn new(config: &TelemetryConfig, epoch: Instant) -> Self {
        Self {
            trace: config.trace_events.then(|| {
                Arc::new(TraceSink::new(config.trace_capacity.max(TRACE_SHARDS * 8), epoch))
            }),
            slow: SlowQueryLog::new(config.slow_query_capacity),
            next_query: AtomicU64::new(0),
        }
    }

    /// Allocates the next query id (monotonic per engine).
    pub(crate) fn next_query_id(&self) -> u64 {
        self.next_query.fetch_add(1, Ordering::Relaxed)
    }

    /// Emits one trace event if tracing is enabled.
    #[inline]
    pub(crate) fn emit(&self, event: TraceEvent) {
        if let Some(trace) = &self.trace {
            trace.emit(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord { seq, at_us: seq * 10, event: TraceEvent::Admitted { query: seq } }
    }

    #[test]
    fn ring_is_fifo_and_bounded() {
        let ring = TraceRing::with_capacity(8);
        for i in 0..8 {
            assert!(ring.push(rec(i)));
        }
        assert!(!ring.push(rec(99)), "full ring rejects");
        for i in 0..8 {
            assert_eq!(ring.pop().expect("has records").seq, i);
        }
        assert!(ring.pop().is_none());
        // Wraps cleanly after a full cycle.
        assert!(ring.push(rec(100)));
        assert_eq!(ring.pop().unwrap().seq, 100);
    }

    #[test]
    fn ring_survives_concurrent_producers_and_consumer() {
        let ring = Arc::new(TraceRing::with_capacity(1024));
        let done = Arc::new(AtomicBool::new(false));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        while !ring.push(rec(p * 1000 + i)) {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumer = {
            let ring = Arc::clone(&ring);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                loop {
                    match ring.pop() {
                        Some(_) => seen += 1,
                        None if done.load(Ordering::Acquire) && ring.pop().is_none() => break,
                        None => std::thread::yield_now(),
                    }
                }
                seen
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Release);
        assert_eq!(consumer.join().unwrap(), 2000, "nothing lost, nothing duplicated");
    }

    #[test]
    fn sink_orders_drain_by_sequence() {
        let sink = TraceSink::new(1024, Instant::now());
        for q in 0..50u64 {
            sink.emit(TraceEvent::Admitted { query: q });
        }
        let drained = sink.drain();
        assert_eq!(drained.len(), 50);
        for (i, r) in drained.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
        assert_eq!(sink.dropped(), 0);
        assert!(sink.drain().is_empty(), "drain consumes");
    }

    #[test]
    fn sink_counts_drops_when_saturated() {
        // Tiny capacity, single thread => one shard of >= 8 slots.
        let sink = TraceSink::new(1, Instant::now());
        for q in 0..100u64 {
            sink.emit(TraceEvent::Admitted { query: q });
        }
        let drained = sink.drain();
        assert!(!drained.is_empty());
        assert_eq!(drained.len() as u64 + sink.dropped(), 100);
        assert!(sink.dropped() > 0, "overflow must be visible");
    }

    #[test]
    fn slow_log_keeps_the_worst() {
        let log = SlowQueryLog::new(3);
        for (q, us) in [(0u64, 50u64), (1, 500), (2, 10), (3, 5000), (4, 100), (5, 700)] {
            log.record(SlowQuery {
                query: q,
                elapsed_us: us,
                path: ServePath::Race,
                conclusive: true,
                winner: None,
                entrants: Vec::new(),
            });
        }
        let worst = log.worst();
        let ids: Vec<u64> = worst.iter().map(|e| e.query).collect();
        assert_eq!(ids, vec![3, 5, 1], "worst three, descending");
    }

    #[test]
    fn slow_log_capacity_zero_disables() {
        let log = SlowQueryLog::new(0);
        log.record(SlowQuery {
            query: 0,
            elapsed_us: 1 << 40,
            path: ServePath::Race,
            conclusive: false,
            winner: None,
            entrants: Vec::new(),
        });
        assert!(log.worst().is_empty());
    }

    #[test]
    fn terminal_event_classification() {
        assert!(TraceEvent::CacheHit { query: 1, elapsed_us: 5 }.is_terminal());
        assert!(TraceEvent::Finalized {
            query: 1,
            conclusive: true,
            cancelled: false,
            winner: None,
            elapsed_us: 5
        }
        .is_terminal());
        assert!(!TraceEvent::Admitted { query: 1 }.is_terminal());
        assert!(!TraceEvent::Parked { query: 1, depth: 4 }.is_terminal());
        assert!(!TraceEvent::Unparked { query: 1, waited_us: 250 }.is_terminal());
        assert_eq!(TraceEvent::Parked { query: 9, depth: 1 }.query(), 9);
        assert!(!TraceEvent::HeatLaunched { query: 1, launched: 2, reserved: 1 }.is_terminal());
        assert_eq!(TraceEvent::Escalated { query: 7, launched: 3 }.query(), 7);
        assert!(!TraceEvent::SliceSpawned { query: 2, entrant: 0, slice: 1 }.is_terminal());
        assert_eq!(
            TraceEvent::SliceFinished { query: 8, entrant: 1, slice: 2, chunks: 3, wall_us: 40 }
                .query(),
            8
        );
    }
}
