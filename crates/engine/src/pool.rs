//! A bounded worker pool shared by every in-flight race.
//!
//! The one-shot library (`psi_core::race`) spawns one OS thread per
//! entrant per query — fine for a single query, catastrophic under load:
//! T concurrent queries × V variants oversubscribe the machine and
//! latency collapses. The engine instead owns `workers` long-lived
//! threads; races submit their entrants as tasks, and loser cancellation
//! still flows through the shared `CancelToken` carried by each task's
//! `SearchBudget`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, ThreadId};

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of task-running worker threads.
///
/// Tasks are closures; submission never blocks (the queue is unbounded —
/// the engine's admission control bounds how many tasks can be pending).
/// A panicking task is contained: the worker survives and the panic is
/// counted, mirroring how a production server isolates request failures.
pub struct WorkerPool {
    sender: Option<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    panics: Arc<AtomicU64>,
    active: Arc<AtomicUsize>,
    owner: ThreadId,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        let panics = Arc::new(AtomicU64::new(0));
        let active = Arc::new(AtomicUsize::new(0));
        let handles = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let panics = Arc::clone(&panics);
                let active = Arc::clone(&active);
                std::thread::Builder::new()
                    .name(format!("psi-engine-worker-{i}"))
                    .spawn(move || worker_loop(&receiver, &panics, &active))
                    .expect("spawning a worker thread must succeed")
            })
            .collect();
        Self {
            sender: Some(sender),
            handles,
            workers,
            panics,
            active,
            owner: std::thread::current().id(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of tasks that panicked (and were contained) so far.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Number of workers currently running a task — the occupancy gauge
    /// the adaptive race scheduler reads. A point-in-time snapshot: it
    /// can be stale by the time the caller acts on it, which is fine for
    /// a scheduling *hint* (never used for correctness).
    pub fn busy(&self) -> usize {
        self.active.load(Ordering::Relaxed).min(self.workers)
    }

    /// Workers not currently running a task (see [`WorkerPool::busy`]).
    pub fn idle(&self) -> usize {
        self.workers - self.busy()
    }

    /// Enqueues a task. Never blocks; ordering is FIFO per the queue.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool sender alive until drop")
            .send(Box::new(task))
            .expect("workers alive until drop");
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Task>>, panics: &AtomicU64, active: &AtomicUsize) {
    loop {
        // Hold the lock only for the dequeue, not while running the task.
        let task = {
            let rx = receiver.lock().expect("worker queue lock");
            rx.recv()
        };
        match task {
            Ok(task) => {
                active.fetch_add(1, Ordering::Relaxed);
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
                active.fetch_sub(1, Ordering::Relaxed);
            }
            Err(_) => break, // Sender dropped: pool is shutting down.
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel lets each worker drain remaining tasks and
        // exit; then join so no task outlives the pool. Join only from
        // the thread that built the pool: pooled tasks and the stage
        // timer upgrade `Weak` handles to the pool, so during engine
        // teardown one of *their* threads can briefly hold the last
        // strong reference and run this drop — joining from there risks
        // a self-join (a worker joining itself) or a mutual join with
        // the stage timer's drop, both of which pthread_join rejects
        // with EDEADLK and std turns into a panic. The closed channel
        // already guarantees those threads drain and exit on their own.
        self.sender.take();
        if std::thread::current().id() == self.owner {
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_all_tasks_across_workers() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::Relaxed);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv_timeout(Duration::from_secs(5)).expect("task completes");
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn drop_drains_pending_tasks() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    std::thread::sleep(Duration::from_micros(100));
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // Drop joins after draining.
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn panicking_task_does_not_kill_worker() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        pool.submit(|| panic!("boom"));
        pool.submit(move || tx.send(42).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        assert_eq!(pool.panics(), 1);
    }

    #[test]
    fn at_least_one_worker() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn busy_gauge_tracks_running_tasks() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.busy(), 0);
        assert_eq!(pool.idle(), 2);
        let (hold_tx, hold_rx) = channel::<()>();
        let hold_rx = Arc::new(Mutex::new(hold_rx));
        let (started_tx, started_rx) = channel();
        for _ in 0..2 {
            let hold_rx = Arc::clone(&hold_rx);
            let started_tx = started_tx.clone();
            pool.submit(move || {
                started_tx.send(()).unwrap();
                let _ = hold_rx.lock().unwrap().recv();
            });
        }
        for _ in 0..2 {
            started_rx.recv_timeout(Duration::from_secs(5)).expect("task starts");
        }
        assert_eq!(pool.busy(), 2);
        assert_eq!(pool.idle(), 0);
        drop(hold_tx);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.busy() != 0 {
            assert!(std::time::Instant::now() < deadline, "workers must go idle");
            std::thread::yield_now();
        }
        assert_eq!(pool.idle(), 2);
    }
}
