//! # psi-engine — concurrent query serving for the Ψ-framework
//!
//! `psi_core::race` answers **one** query by racing its
//! (rewriting × algorithm) variants on freshly spawned scoped threads.
//! That is the paper's experiment setup — and exactly wrong for a server:
//! T concurrent queries × V variants spawn T×V threads, oversubscribe the
//! machine, and collapse latency. This crate is the serving layer that
//! fixes it, shaped like the long-lived engines of production graph
//! stores: one [`Engine`] owns the shared resources and all queries flow
//! through it.
//!
//! * [`pool`] — a bounded [`pool::WorkerPool`] shared by every in-flight
//!   race; variants are tasks, loser cancellation still flows through the
//!   shared `CancelToken`, and total thread count is fixed at
//!   construction.
//! * [`submit`] — the unified submission API: one [`QueryRequest`]
//!   builder instead of a blocking-call matrix, both engines behind the
//!   [`Submit`] trait, and a non-blocking frontend —
//!   `submit_nonblocking` returns a [`QueryTicket`] completion handle
//!   right after admission (poll / wait / [`CompletionQueue`] draining;
//!   dropping the ticket cancels the race). Races complete reactively on
//!   pooled workers, so thousands of queries can be in flight from a few
//!   client threads.
//! * [`engine`] — admission control keeping in-flight work ≤
//!   `max_concurrent_races × variants`: blocking submissions queue by
//!   [`Priority`]; non-blocking submissions over the limit park in a
//!   bounded per-graph **waiting room** (FIFO within priority, fed by
//!   the same fair grant chain) and only bounce — with a typed
//!   [`AdmissionError`] — once the room overflows; the
//!   predictor fast path (single confident variant instead of a race,
//!   with race fallback); deadlines anchored at admission so queueing
//!   delay counts against the race budget; and adaptive top-K racing
//!   ([`RaceStrategy::TopK`]) — only the predictor-ranked leading
//!   entrants launch, with staged escalation to the full field if the
//!   pruned heat is inconclusive by a fraction of the race budget.
//! * [`cache`] — query canonicalization ([`cache::QueryKey`]) feeding a
//!   sharded LRU result cache; repeated queries skip the race entirely.
//! * [`stats`] — an [`EngineStats`] snapshot: throughput, cache hit
//!   rate, races vs. fast paths, cancelled variants, and p50/p99
//!   latency from log-bucketed [`LatencyHistogram`]s covering **every**
//!   query (≤ 1/32 relative bucket error), with per-stage breakdowns
//!   (queue wait / race / finalize).
//! * [`registry`] — multi-graph serving: a [`MultiEngine`] registers
//!   named stored graphs (each with its own runner, predictor state and
//!   cache partition) and routes all of their races through **one**
//!   shared pool with fair cross-graph admission. Tenants persist via
//!   `psi_store`: [`MultiEngine::save_graph`] snapshots the graph, its
//!   `TargetIndex` and the learned predictor state (compacting the
//!   learned-state WAL); [`MultiEngine::load_graph`] cold-opens the
//!   snapshot, replays the WAL tail and serves without rebuilding or
//!   retraining.
//! * [`telemetry`] — Ψ-trace: per-query lifecycle events (admitted →
//!   setup → heat launch → per-entrant finish → escalation → finalize)
//!   buffered in lock-free per-shard rings, drained via
//!   [`Engine::drain_trace`] or a [`TraceSubscriber`]; plus a
//!   ring-buffer slow-query log with per-entrant timing.
//! * [`export`] — a [`MetricsExporter`] rendering counters, histograms
//!   and the slow-query log as Prometheus text or a JSON snapshot.
//!
//! ```
//! use psi_core::{PsiRunner, RaceBudget};
//! use psi_engine::{Engine, EngineConfig, QueryRequest, Submit};
//! use psi_graph::graph::graph_from_parts;
//!
//! let stored = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let engine = Engine::new(
//!     PsiRunner::nfv_default(&stored),
//!     EngineConfig { workers: 2, default_budget: RaceBudget::decision(), ..EngineConfig::default() },
//! );
//! let query = graph_from_parts(&[0, 1], &[(0, 1)]);
//! // Non-blocking submission: the ticket returns at admission, the race
//! // runs on pooled workers, and `wait` collects the answer.
//! let ticket = engine.submit_nonblocking(QueryRequest::new(query.clone())).unwrap();
//! let first = ticket.wait();
//! assert!(first.found());
//! let again = engine.submit_request(QueryRequest::new(query)).unwrap(); // identical query: cache
//! assert_eq!(again.path, psi_engine::ServePath::CacheHit);
//! assert_eq!(again.num_matches(), first.num_matches());
//! ```
//!
//! ## Multi-graph quickstart
//!
//! One process serving several stored graphs over one shared pool —
//! register each graph, route by [`GraphId`]. Building a `PsiRunner`
//! (and therefore registering a graph) also builds its shared
//! `psi_graph::TargetIndex` once — label candidate lists, neighborhood
//! signatures and the dense adjacency bitset every racing entrant then
//! probes; the one-time cost is reported as `EngineStats::index_build_us`:
//!
//! ```
//! use psi_core::{PsiRunner, RaceBudget};
//! use psi_engine::{EngineConfig, MultiEngine, MultiEngineConfig};
//! use psi_graph::graph::graph_from_parts;
//!
//! let multi = MultiEngine::new(MultiEngineConfig {
//!     workers: 2,
//!     max_concurrent_races: 2,
//!     tenant: EngineConfig { default_budget: RaceBudget::decision(), ..EngineConfig::default() },
//! });
//! let square = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let pair = graph_from_parts(&[5, 6], &[(0, 1)]);
//! let sq = multi.register("square", PsiRunner::nfv_default(&square)).unwrap();
//! let pr = multi.register("pair", PsiRunner::nfv_default(&pair)).unwrap();
//!
//! let query = graph_from_parts(&[0, 1], &[(0, 1)]);
//! assert!(multi.submit(sq, &query).unwrap().found());
//! assert!(!multi.submit(pr, &query).unwrap().found()); // per-graph answers
//! assert_eq!(multi.graph_stats(sq).unwrap().queries, 1);
//! assert_eq!(multi.stats().queries, 2); // aggregate across graphs
//! ```

pub mod cache;
pub mod engine;
pub mod export;
mod flight;
pub mod pool;
pub mod registry;
pub mod scheduler;
pub mod stats;
pub mod submit;
pub mod telemetry;

pub use cache::{
    embedding_from_canonical, embedding_to_canonical, CachedAnswer, QueryKey, ShardedCache,
};
pub use engine::{
    AdmissionError, ApplyError, Engine, EngineConfig, EngineResponse, RaceStrategy, RouteError,
    ServePath, SubmitError,
};
pub use export::{GraphMetricsSnapshot, HistogramKind, MetricsExporter};
pub use pool::WorkerPool;
pub use registry::{
    GraphId, GraphRegistry, LoadReport, MultiEngine, MultiEngineConfig, PersistError,
    RegistryError, SaveReport,
};
pub use scheduler::{plan_race, RacePlan, SchedulerInputs};
pub use stats::{EngineStats, HistogramSnapshot, LatencyHistogram, StageLatencies};
pub use submit::{CompletionQueue, Priority, QueryRequest, QueryTicket, Submit};
pub use telemetry::{
    EntrantTiming, SlowQuery, TelemetryConfig, TraceEvent, TraceRecord, TraceSubscriber,
};
