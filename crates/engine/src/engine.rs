//! The query-serving engine: admission control in front of a shared
//! worker pool, a result cache, and a predictor fast path — fronted by
//! the unified ticket submission API ([`crate::QueryRequest`] /
//! [`crate::Submit`] / [`crate::QueryTicket`]).
//!
//! Serving pipeline per query:
//!
//! 1. **Canonicalize + cache probe** — repeated queries return the cached
//!    definitive answer without touching the pool (an already-completed
//!    ticket).
//! 2. **Admission** — at most `max_concurrent_races` queries may occupy
//!    the pool at once. Over-limit non-blocking submissions *park* in a
//!    bounded waiting room ([`EngineConfig::waiting_room`]): the ticket
//!    returns immediately and the query launches when the fair gate
//!    grants it a slot (FIFO per priority, fed through the same grant
//!    chain as blocking waiters; dropping the ticket frees the parked
//!    slot). Only when the room is full does admission refuse, with
//!    [`AdmissionError::QueueFull`] — or [`AdmissionError::Busy`] when
//!    the room is disabled. [`crate::Submit::submit_queued`] blocks for
//!    a slot instead, ordered by [`crate::Priority`] and then arrival.
//!    This bounds in-flight work to `max_concurrent_races × variants`
//!    tasks no matter how many callers pile on.
//! 3. **Predictor fast path** — once the k-NN predictor has seen enough
//!    races and votes confidently, the single predicted variant runs on
//!    the pool instead of a full race; an inconclusive result falls back
//!    to the race (the race's insurance is never lost).
//! 4. **Pooled race** — every variant is one pool task sharing a
//!    [`psi_core::RaceState`]; the first conclusive finisher cancels the rest
//!    through the shared `CancelToken`, exactly as in
//!    [`psi_core::race`]. Deadlines are anchored at *admission* time, so
//!    queueing delay counts against the race budget (the paper's cap
//!    convention). Completion is reactive (see [`crate::flight`]): the
//!    last entrant to report finalizes the race and fulfills the ticket,
//!    so no thread belongs to any one in-flight query.
//!
//! The four blocking legacy methods ([`Engine::submit`] and friends) are
//! thin wrappers over the ticket path — `submit = submit_queued + wait` —
//! so there is exactly one admission code path.

use crate::cache::{
    embedding_from_canonical, embedding_to_canonical, CachedAnswer, QueryKey, ShardedCache,
};
use crate::flight::{prepare_and_launch, AdmittedQuery, StageTimer};
use crate::pool::WorkerPool;
use crate::stats::{EngineStats, StatsCollector};
use crate::submit::{CompletionSlot, Priority, QueryRequest, QueryTicket, Submit};
use crate::telemetry::{
    SlowQuery, Telemetry, TelemetryConfig, TraceEvent, TraceRecord, TraceSubscriber,
};
use psi_core::predictor::{EntrantTally, QueryFeatures, VariantPredictor};
use psi_core::{Compaction, GraphUpdate, PsiRunner, RaceBudget};
use psi_graph::Graph;
use psi_matchers::CancelToken;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// How a cache-missing, non-fast-path query races its entrant field on
/// the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RaceStrategy {
    /// Race every configured variant at once — the paper's §8 setup and
    /// the engine's default.
    Full,
    /// Adaptive top-K racing with staged escalation: launch only the `k`
    /// predictor-ranked leading entrants, holding the rest of the field
    /// back as a reserve. If the pruned heat has not decided the race by
    /// the `escalate_after` fraction of the race budget — or finishes
    /// earlier without a conclusive result — the reserve launches on the
    /// same pool under the same [`psi_core::RaceState`], so a late full-field
    /// winner still cancels everyone and deadlines stay anchored at
    /// admission. Until the predictor has seen
    /// `predictor_min_observations` races, the full field races (the
    /// training phase), preserving the race's worst-case insurance.
    TopK {
        /// Entrants in the first heat (clamped to the field size;
        /// 0 or ≥ field size degrades to [`RaceStrategy::Full`]).
        k: usize,
        /// Fraction of the race budget after which an undecided pruned
        /// heat escalates, in `[0, 1]`. Budgets without a wall-clock
        /// timeout measure the fraction against a small fixed window.
        escalate_after: f64,
    },
    /// Self-tuning scheduler deciding *both* how many entrants launch
    /// and how many root-candidate **slices** each entrant's search is
    /// split into ([`psi_matchers::sliced_search_view`] semantics, run
    /// as cooperating pool tasks with work stealing). The per-query
    /// plan ([`crate::scheduler::plan_race`]) weighs the predictor's
    /// vote margin, the observed escalation rate, and live pool
    /// occupancy: a heavy query on an idle pool races few entrants ×
    /// many slices; a saturated pool degrades to many queries × one
    /// slice each (exactly [`RaceStrategy::TopK`] behaviour). Undecided
    /// pruned heats escalate to the full field at `escalate_after`,
    /// like `TopK` — escalated reserves run single-slice.
    Adaptive {
        /// Upper bound on slices per entrant (1 disables slicing and
        /// leaves only the entrant-count tuning; default 4).
        max_slices: usize,
        /// Fraction of the race budget after which an undecided pruned
        /// heat escalates, in `[0, 1]` (see [`RaceStrategy::TopK`]).
        escalate_after: f64,
    },
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads shared by all in-flight races (default: available
    /// parallelism).
    pub workers: usize,
    /// Maximum races occupying the pool concurrently; further submissions
    /// block, park in the waiting room, or bounce with
    /// [`AdmissionError::Busy`]. Default: `workers`, so the pool always
    /// has at least one task slot per admitted race.
    pub max_concurrent_races: usize,
    /// Bounded waiting room for over-limit **non-blocking** submissions:
    /// up to this many parked requests queue per graph for a slot grant
    /// instead of bouncing, so short bursts absorb rather than error.
    /// `0` restores hard rejection ([`AdmissionError::Busy`]); a full
    /// room refuses with [`AdmissionError::QueueFull`]. Default 1024.
    pub waiting_room: usize,
    /// Independently-locked cache shards (default 8).
    pub cache_shards: usize,
    /// Total cached answers across shards (default 4096); 0 disables the
    /// cache.
    pub cache_capacity: usize,
    /// Neighbours consulted by the variant predictor (default 3).
    pub predictor_k: usize,
    /// Race observations required before the fast path may trigger
    /// (default 32).
    pub predictor_min_observations: usize,
    /// Most recent race observations the predictor retains (default 4096);
    /// bounds predictor memory and per-miss prediction cost in a
    /// long-lived engine.
    pub predictor_window: usize,
    /// Minimum vote share for a fast-path prediction, in `(0, 1]`; set
    /// above 1.0 to disable the fast path (default 0.8).
    pub predictor_confidence: f64,
    /// How cache-missing queries race their entrant field (default
    /// [`RaceStrategy::Full`]; see [`RaceStrategy::TopK`] for adaptive
    /// pruned racing with staged escalation and
    /// [`RaceStrategy::Adaptive`] for the self-tuning entrants×slices
    /// scheduler).
    pub race_strategy: RaceStrategy,
    /// Smallest query (in nodes) eligible for intra-query slicing under
    /// [`RaceStrategy::Adaptive`]: tiny queries finish faster than the
    /// slice-coordination overhead costs, so they always run
    /// single-slice. Default 6.
    pub slice_min_query_nodes: usize,
    /// Budget applied to requests that set none
    /// ([`crate::QueryRequest::budget`] overrides per query).
    pub default_budget: RaceBudget,
    /// Pending overlay operations that trigger a background compaction:
    /// after an applied update batch leaves at least this many ops in
    /// the tenant's delta overlay, a compaction task is queued on the
    /// worker pool (single-flight — at most one per tenant at a time)
    /// to fold the overlay into a fresh base graph + index and swap the
    /// epoch. `0` disables automatic compaction; explicit
    /// [`crate::Engine::compact_now`] still works. Default 512.
    pub compact_threshold: usize,
    /// Ψ-trace knobs: lifecycle event tracing, ring capacity, slow-query
    /// log size (see [`TelemetryConfig`]).
    pub telemetry: TelemetryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            workers,
            max_concurrent_races: workers,
            waiting_room: 1024,
            cache_shards: 8,
            cache_capacity: 4096,
            predictor_k: 3,
            predictor_min_observations: 32,
            predictor_window: 4096,
            predictor_confidence: 0.8,
            race_strategy: RaceStrategy::Full,
            slice_min_query_nodes: 6,
            default_budget: RaceBudget::matching(),
            compact_threshold: 512,
            telemetry: TelemetryConfig::default(),
        }
    }
}

/// Why admission refused a query — backpressure, not a caller mistake.
/// Only the non-blocking submission path refuses; blocking submissions
/// queue instead. `#[non_exhaustive]`: future admission policies may add
/// refusal reasons, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionError {
    /// The concurrent-race limit is reached and the waiting room is
    /// disabled ([`EngineConfig::waiting_room`] is 0).
    Busy {
        /// Suggested client backoff before resubmitting: the engine's
        /// current median end-to-end latency, clamped to a sane range —
        /// roughly when the next slot is expected to free.
        retry_hint: Duration,
    },
    /// The waiting room is at capacity: the engine is over its
    /// concurrent-race limit *and* [`EngineConfig::waiting_room`]
    /// requests are already parked for this graph. The burst is no
    /// longer short; shed load.
    QueueFull,
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::Busy { retry_hint } => {
                write!(f, "engine at concurrent-race capacity (retry in ~{retry_hint:?})")
            }
            AdmissionError::QueueFull => f.write_str("waiting room full"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Why a request could not be routed to a serving engine — a caller
/// mistake (bad target), never backpressure. `#[non_exhaustive]` for the
/// same forward-compatibility reason as [`AdmissionError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RouteError {
    /// The targeted graph is not registered (multi-graph serving only;
    /// see [`crate::MultiEngine`]).
    UnknownGraph,
    /// The request targets no graph but was submitted to a
    /// [`crate::MultiEngine`], which cannot route it (set
    /// [`crate::QueryRequest::graph`]).
    NoGraph,
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownGraph => f.write_str("graph not registered with this engine"),
            RouteError::NoGraph => {
                f.write_str("request targets no graph (set QueryRequest::graph)")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Any submission failure: backpressure ([`AdmissionError`]) or a bad
/// target ([`RouteError`]). The split matters to clients — admission
/// errors are retryable, routing errors are not — and to the wire
/// protocol, which maps each variant to a stable status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// Refused at admission; retry after backoff.
    Admission(AdmissionError),
    /// Unroutable; retrying cannot help.
    Route(RouteError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Admission(e) => e.fmt(f),
            SubmitError::Route(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SubmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SubmitError::Admission(e) => Some(e),
            SubmitError::Route(e) => Some(e),
        }
    }
}

impl From<AdmissionError> for SubmitError {
    fn from(e: AdmissionError) -> Self {
        SubmitError::Admission(e)
    }
}

impl From<RouteError> for SubmitError {
    fn from(e: RouteError) -> Self {
        SubmitError::Route(e)
    }
}

/// Why a graph mutation could not be applied: routing (the target graph
/// does not exist — [`crate::MultiEngine`] only) or a semantic problem
/// with the batch itself ([`psi_core::UpdateError`]). Mutations are
/// validated atomically — a rejected batch leaves the graph untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ApplyError {
    /// Unroutable; retrying cannot help.
    Route(RouteError),
    /// The batch references unknown/removed nodes, duplicates an edge,
    /// or is otherwise invalid against the current live graph.
    Update(psi_core::UpdateError),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::Route(e) => e.fmt(f),
            ApplyError::Update(e) => write!(f, "invalid graph update: {e}"),
        }
    }
}

impl std::error::Error for ApplyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ApplyError::Route(e) => Some(e),
            ApplyError::Update(e) => Some(e),
        }
    }
}

impl From<RouteError> for ApplyError {
    fn from(e: RouteError) -> Self {
        ApplyError::Route(e)
    }
}

impl From<psi_core::UpdateError> for ApplyError {
    fn from(e: psi_core::UpdateError) -> Self {
        ApplyError::Update(e)
    }
}

/// How a query was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePath {
    /// Answered from the result cache; no search executed.
    CacheHit,
    /// Answered by the predictor's single-variant fast path.
    FastPath,
    /// Answered by a full (rewriting × algorithm) race on the pool.
    Race,
}

/// One served query's answer and serving metadata.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// The definitive (or, on race timeout, best-effort) answer.
    pub answer: Arc<CachedAnswer>,
    /// Which pipeline stage produced the answer.
    pub path: ServePath,
    /// End-to-end latency from admission to answer.
    pub elapsed: Duration,
    /// Whether the answer is definitive (cache hits always are).
    pub conclusive: bool,
}

impl EngineResponse {
    /// Decision-problem convenience: did the query embed?
    pub fn found(&self) -> bool {
        self.answer.found
    }

    /// Number of embeddings in the answer.
    pub fn num_matches(&self) -> usize {
        self.answer.num_matches
    }
}

/// Where an engine gets permission to occupy the worker pool with a
/// race. Both engines use the registry's grant-chaining fair gate
/// (`FairCore`): the standalone [`Engine`] as a single-slot instance
/// (priority, then FIFO), a [`crate::MultiEngine`] tenant through the
/// shared instance arbitrating slots *across* graphs (max–min fairness
/// first, then priority).
pub(crate) trait AdmissionGate: Send + Sync {
    /// Blocks until a race slot is granted; among waiters, higher
    /// [`Priority`] is served first, FIFO within a priority.
    fn acquire(&self, priority: Priority);
    /// Takes a slot if one is immediately available (and nobody with a
    /// pending grant is queued ahead). Production code uses [`Self::admit`]
    /// (which adds the waiting room); this probe remains for capacity
    /// tests.
    #[cfg(test)]
    fn try_acquire(&self) -> bool;
    /// Returns a previously acquired slot.
    fn release(&self);
    /// Non-blocking admission with parking: takes a slot immediately
    /// ([`Admit::Ready`]), parks the launch in the bounded waiting room
    /// ([`Admit::Parked`]), or hands the launch back when the room (of
    /// capacity `room`) is full ([`Admit::Full`]). A parked launch fires
    /// from whichever thread frees the slot that grants it.
    fn admit(&self, priority: Priority, launch: DeferredLaunch, room: usize) -> Admit;
    /// Removes a parked launch by its park ticket, abandoning its query
    /// (the ticket completes inconclusive/cancelled). `false` when the
    /// launch already left the room — launched or gone.
    fn cancel_parked(&self, ticket: u64) -> bool;
    /// Requests currently parked in this gate's waiting room (all graphs
    /// for the shared gate — the gauge the exporter reports).
    fn waiting(&self) -> usize;
}

/// Outcome of [`AdmissionGate::admit`].
pub(crate) enum Admit {
    /// A slot was taken; launch now.
    Ready(DeferredLaunch),
    /// Parked in the waiting room; the gate owns the launch and will fire
    /// it on grant. `ticket` cancels the parking; `depth` is the queue
    /// position observed at park time (for the `Parked` trace event).
    Parked { ticket: u64, depth: usize },
    /// Waiting room full (or disabled); the launch comes back untouched
    /// so the caller can discard it without side effects.
    Full(DeferredLaunch),
}

/// Everything a not-yet-admitted query needs to launch later: the
/// serving core, the raw query, the ticket plumbing, and weak handles to
/// the pool/timer/gate (weak so a parked entry can never keep a
/// shut-down engine alive — if the upgrade fails at launch time the
/// query is abandoned instead).
pub(crate) struct DeferredInner {
    pub(crate) core: Arc<ServeCore>,
    pub(crate) query: Graph,
    pub(crate) query_id: u64,
    pub(crate) budget: RaceBudget,
    pub(crate) admitted: Instant,
    pub(crate) keyed: Option<(QueryKey, Vec<u32>)>,
    pub(crate) token: CancelToken,
    pub(crate) slot: Arc<CompletionSlot>,
    pub(crate) pool: Weak<WorkerPool>,
    pub(crate) timer: Weak<StageTimer>,
    pub(crate) gate: Weak<dyn AdmissionGate>,
}

/// A query's launch, deferred until admission grants a slot. Created at
/// submission, then either launched immediately (capacity free), parked
/// in the waiting room, or discarded (room full → typed error).
///
/// **Drop = abandon**: a `DeferredLaunch` dropped while still armed —
/// parked entry cancelled, gate torn down with queries still parked,
/// engine shut down under it — fulfills its ticket inconclusive so no
/// waiter hangs. Only [`DeferredLaunch::discard`] suppresses that (used
/// on the rejection path, where no ticket was ever handed out).
pub(crate) struct DeferredLaunch {
    inner: Option<DeferredInner>,
}

impl DeferredLaunch {
    pub(crate) fn new(inner: DeferredInner) -> Self {
        Self { inner: Some(inner) }
    }

    /// Takes the slot this launch was granted: counts the admission,
    /// emits `Unparked` (when it waited) + `Admitted`, and hands the
    /// query to the pool. Safe from any thread — including a pooled
    /// worker releasing its own permit.
    pub(crate) fn launch(mut self, waited: Option<Duration>) {
        let Some(d) = self.inner.take() else { return };
        let (Some(pool), Some(gate)) = (d.pool.upgrade(), d.gate.upgrade()) else {
            // Engine shut down while this query was parked: re-arm so
            // Drop abandons (fulfills the ticket inconclusive).
            self.inner = Some(d);
            return;
        };
        if let Some(waited) = waited {
            d.core.stats.park_wait.record_duration(waited);
            d.core.telemetry.emit(TraceEvent::Unparked {
                query: d.query_id,
                waited_us: waited.as_micros().min(u64::MAX as u128) as u64,
            });
        }
        // The slot was taken by the gate on this launch's behalf; the
        // permit releases it when the flight finalizes.
        let permit = OwnedPermit::new(gate);
        d.core.stats.queries.fetch_add(1, Ordering::Relaxed);
        d.core.stats.cache_misses.fetch_add(1, Ordering::Relaxed);
        d.core.telemetry.emit(TraceEvent::Admitted { query: d.query_id });
        let DeferredInner {
            core,
            query,
            query_id,
            budget,
            admitted,
            keyed,
            token,
            slot,
            pool: pool_weak,
            timer,
            ..
        } = d;
        let setup =
            AdmittedQuery { core, query, query_id, budget, admitted, keyed, token, slot, permit };
        pool.submit(move || prepare_and_launch(setup, pool_weak, timer));
    }

    /// Disarms without fulfilling anything: the rejection path, where the
    /// caller returns a typed error and no ticket exists. Must **not**
    /// route through the Drop-abandon path — that would count an
    /// inconclusive query that was never admitted.
    pub(crate) fn discard(mut self) {
        self.inner = None;
    }

    /// A launch with no payload, for exercising gate scheduling policy
    /// in unit tests without standing up an engine. Launching or
    /// dropping it is a no-op.
    #[cfg(test)]
    pub(crate) fn disarmed() -> Self {
        Self { inner: None }
    }
}

impl Drop for DeferredLaunch {
    fn drop(&mut self) {
        if let Some(d) = self.inner.take() {
            crate::flight::abandon(
                &d.core,
                d.admitted,
                &d.slot,
                d.query_id,
                d.token.is_cancelled(),
            );
        }
    }
}

/// An owned admission slot, released on drop. Travels with the in-flight
/// race ([`crate::flight::PendingRace`]) so the slot frees exactly when
/// the flight finalizes — including after panics or ticket cancellation.
pub(crate) struct OwnedPermit(Arc<dyn AdmissionGate>);

impl OwnedPermit {
    pub(crate) fn new(gate: Arc<dyn AdmissionGate>) -> Self {
        Self(gate)
    }
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// The pool-free serving internals shared by the engine front and every
/// in-flight race task: the prepared runner, the result cache, the
/// predictor, and the statistics collectors. Deliberately does **not**
/// own the worker pool or stage timer — race tasks hold this `Arc`
/// strongly, and a structure that joined threads on drop could then be
/// dropped from inside a pooled worker.
pub(crate) struct ServeCore {
    pub(crate) runner: Arc<PsiRunner>,
    pub(crate) cache: ShardedCache,
    pub(crate) predictor: Mutex<VariantPredictor>,
    pub(crate) stats: StatsCollector,
    /// Staged races scheduled so far; every exploration-period-th one
    /// becomes a full-field exploration probe.
    pub(crate) staged_seq: AtomicU64,
    /// Ψ-trace: query-id allocator, trace-event rings, slow-query log.
    pub(crate) telemetry: Telemetry,
    /// The tenant's learned-state WAL. `None` until persistence is
    /// attached by [`crate::MultiEngine::save_graph`] /
    /// [`crate::MultiEngine::load_graph`]; once attached, every race
    /// finalize mirrors its predictor mutations here, and every applied
    /// graph-mutation batch appends an update record. The lock also
    /// orders mutations against save-time compaction cuts: `save_graph`
    /// holds it across compact + snapshot + reset, so no update record
    /// can slip between the state the snapshot captures and the cut
    /// that discards the records it absorbed.
    pub(crate) learned_wal: Mutex<Option<psi_store::Wal>>,
    /// Single-flight latch for background compaction: at most one
    /// compaction task per tenant occupies the pool at a time. (The
    /// runner's own epoch guard makes concurrent compactions *safe*;
    /// this flag just keeps them from wasting workers.)
    pub(crate) compacting: AtomicBool,
    pub(crate) config: EngineConfig,
}

impl ServeCore {
    /// The predictor's ranked entrant field and leader vote share for
    /// this query, or `None` when no caller needs it (fast path disabled
    /// *and* races unstaged) or the predictor is still inside its
    /// training phase — pruning or predicting on no evidence would
    /// forfeit the race's worst-case insurance for nothing.
    pub(crate) fn consult_predictor(
        &self,
        features: &QueryFeatures,
        variants: usize,
    ) -> Option<(Vec<usize>, f64)> {
        let fast_path = self.config.predictor_confidence <= 1.0;
        let staged = match self.config.race_strategy {
            RaceStrategy::TopK { k, .. } => k > 0 && k < variants,
            // Adaptive picks its heat size *from* the ranking, so it
            // always wants one when the predictor is trained.
            RaceStrategy::Adaptive { .. } => variants > 1,
            RaceStrategy::Full => false,
        };
        if !fast_path && !staged {
            return None;
        }
        let predictor = self.predictor.lock().expect("predictor lock");
        if predictor.observations() < self.config.predictor_min_observations {
            return None;
        }
        Some(predictor.rank_with_vote_share(features, variants))
    }

    /// Stores `answer` in the cache (no-op when caching is disabled),
    /// translating embeddings into canonical numbering so any renumbering
    /// of the query can use the entry on a hit.
    pub(crate) fn cache_store(
        &self,
        keyed: Option<&(QueryKey, Vec<u32>)>,
        answer: &Arc<CachedAnswer>,
    ) {
        let Some((key, canon)) = keyed else { return };
        self.cache.insert(
            key.clone(),
            Arc::new(CachedAnswer {
                embeddings: answer
                    .embeddings
                    .iter()
                    .map(|e| embedding_to_canonical(e, canon))
                    .collect(),
                ..(**answer).clone()
            }),
        );
    }

    /// Lifetime win/loss/timeout tallies of each racing entrant, indexed
    /// like the runner's variant list (entrants that never raced read
    /// zero).
    pub(crate) fn entrant_tallies(&self) -> Vec<EntrantTally> {
        let mut tallies = self.predictor.lock().expect("predictor lock").tallies().to_vec();
        let variants = self.runner.config().variants.len();
        if tallies.len() < variants {
            tallies.resize(variants, EntrantTally::default());
        }
        tallies
    }

    /// Mirrors one finalize's predictor mutations into the attached
    /// learned-state WAL (no-op when persistence is not enabled). An I/O
    /// failure detaches the log rather than failing the query: learned
    /// state keeps accruing in memory, and the next `save_graph` folds
    /// it into a fresh snapshot wholesale.
    pub(crate) fn wal_append(&self, records: &[psi_store::WalRecord]) {
        if records.is_empty() {
            return;
        }
        let mut guard = self.learned_wal.lock().expect("wal lock");
        let Some(wal) = guard.as_mut() else { return };
        for record in records {
            if wal.append(record).is_err() {
                *guard = None;
                return;
            }
        }
        self.stats.wal_appended.fetch_add(records.len() as u64, Ordering::Relaxed);
    }

    /// Runs one compaction attempt with full serving bookkeeping: folds
    /// the runner's delta overlay into a fresh base graph + rebuilt
    /// index (a new epoch), then invalidates everything trained or
    /// cached against the old epoch — the tenant's whole cache
    /// partition, and the predictor's version stamp. `None` when there
    /// was nothing to fold, or a concurrent compaction won the install.
    ///
    /// In-flight races are untouched: each holds a pinned view of the
    /// epoch it started under and finishes against it.
    pub(crate) fn compact_with_stats(&self) -> Option<Compaction> {
        let compaction = self.runner.compact()?;
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        self.stats.compaction_time_us.fetch_add(
            compaction.duration.as_micros().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        // Cached answers and learned samples reference the pre-swap
        // epoch. Answers must go (a stale hit could be wrong); samples
        // survive with a bumped version stamp (ranking evidence is
        // advisory — a stale rank costs latency, never correctness).
        self.cache.clear();
        self.stats.cache_invalidations.fetch_add(1, Ordering::Relaxed);
        self.predictor.lock().expect("predictor lock").bump_version();
        Some(compaction)
    }

    /// [`ServeCore::compact_with_stats`] behind the single-flight latch:
    /// the entry point for background (pool-queued) and explicit
    /// compaction. Returns `None` without compacting when another
    /// compaction for this tenant is already running.
    pub(crate) fn compact_single_flight(&self) -> Option<Compaction> {
        if self
            .compacting
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        let result = self.compact_with_stats();
        self.compacting.store(false, Ordering::Release);
        result
    }

    /// The predictor's full learned state, exported in the store's
    /// serialization types (winner indices narrowed to `u32` — variant
    /// rosters are tiny).
    pub(crate) fn learned_state(&self) -> psi_store::LearnedState {
        let predictor = self.predictor.lock().expect("predictor lock");
        psi_store::LearnedState {
            observed: predictor.observations() as u64,
            samples: predictor.samples().into_iter().map(|(f, w)| (f, w as u32)).collect(),
            tallies: predictor.tallies().to_vec(),
        }
    }
}

/// A long-lived, concurrency-safe query-serving engine over one prepared
/// [`PsiRunner`]. Cheap to share: all methods take `&self`.
///
/// Submit through the unified [`Submit`] trait (tickets), or through the
/// blocking convenience wrappers ([`Engine::submit`] and friends), which
/// delegate to the same ticket path.
pub struct Engine {
    core: Arc<ServeCore>,
    pool: Arc<WorkerPool>,
    admission: Arc<dyn AdmissionGate>,
    /// `None` for a standalone engine whose strategy can never stage —
    /// no point keeping a deadline thread that can never fire. Tenants
    /// of a [`crate::MultiEngine`] always share the registry's timer
    /// (per-tenant configs may opt into staging at registration).
    timer: Option<Arc<StageTimer>>,
}

impl Engine {
    /// Builds an engine serving queries against `runner`'s stored graph
    /// and variant configuration.
    pub fn new(runner: PsiRunner, config: EngineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers));
        let admission = crate::registry::standalone_gate(config.max_concurrent_races);
        // Only a staged strategy ever registers a deadline; Full-racing
        // engines skip the timer thread entirely.
        let timer = matches!(
            config.race_strategy,
            RaceStrategy::TopK { .. } | RaceStrategy::Adaptive { .. }
        )
        .then(|| Arc::new(StageTimer::new()));
        Self::with_shared(Arc::new(runner), config, pool, admission, timer, Instant::now())
    }

    /// Builds an engine on *shared* infrastructure: the worker pool,
    /// admission gate and stage timer are owned elsewhere (by a
    /// [`crate::MultiEngine`] whose registered graphs all drain into one
    /// pool). `config.workers` and `config.max_concurrent_races` are
    /// ignored — capacity lives in the shared pool and gate. `epoch`
    /// anchors trace-event timestamps; a registry passes its own start so
    /// all tenants stamp against one clock and cross-graph drains
    /// interleave correctly.
    pub(crate) fn with_shared(
        runner: Arc<PsiRunner>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        admission: Arc<dyn AdmissionGate>,
        timer: Option<Arc<StageTimer>>,
        epoch: Instant,
    ) -> Self {
        let core = Arc::new(ServeCore {
            runner,
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity.max(1)),
            predictor: Mutex::new(VariantPredictor::with_window(
                config.predictor_k.max(1),
                config.predictor_window.max(1),
            )),
            stats: StatsCollector::new(),
            staged_seq: AtomicU64::new(0),
            telemetry: Telemetry::new(&config.telemetry, epoch),
            learned_wal: Mutex::new(None),
            compacting: AtomicBool::new(false),
            config,
        });
        Self { core, pool, admission, timer }
    }

    /// Engine with default tuning.
    pub fn with_defaults(runner: PsiRunner) -> Self {
        Self::new(runner, EngineConfig::default())
    }

    /// The underlying runner (stored graph, variants, matchers).
    pub fn runner(&self) -> &Arc<PsiRunner> {
        &self.core.runner
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.core.config
    }

    /// Current serving statistics.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.core.stats.snapshot();
        // The index is built once at runner construction; its cost is a
        // property of the registration, reported alongside the serving
        // counters (0 for legacy scan-mode runners, which have none).
        stats.index_build_us = self.core.runner.target_index().map_or(0, |ix| ix.build_micros());
        // Waiting-room depth is gate state, not collector state: read it
        // live at snapshot time, like the index cost above.
        stats.waiting_room_depth = self.admission.waiting() as u64;
        // The graph epoch is runner state: 0 at construction, +1 per
        // compaction.
        stats.epoch = self.core.runner.epoch();
        stats
    }

    /// The live collector behind [`Engine::stats`] — lets the registry
    /// merge latency histograms across graphs for aggregate percentiles.
    pub(crate) fn stats_collector(&self) -> &StatsCollector {
        &self.core.stats
    }

    /// The shared serving core — the registry's persistence paths reach
    /// the predictor and WAL slot through it.
    pub(crate) fn serve_core(&self) -> &Arc<ServeCore> {
        &self.core
    }

    /// Drains and returns the buffered lifecycle trace events, merged
    /// across ring shards into global sequence order. Empty when tracing
    /// is disabled ([`TelemetryConfig::trace_events`]).
    pub fn drain_trace(&self) -> Vec<TraceRecord> {
        self.core.telemetry.trace.as_ref().map_or_else(Vec::new, |t| t.drain())
    }

    /// Drains the trace into `subscriber` (one batch; may be empty).
    /// Returns the number of records delivered.
    pub fn drain_trace_into(&self, subscriber: &mut dyn TraceSubscriber) -> usize {
        let batch = self.drain_trace();
        subscriber.on_events(&batch);
        batch.len()
    }

    /// Trace events dropped because a ring shard was full — nonzero means
    /// the consumer drains too slowly for the configured
    /// [`TelemetryConfig::trace_capacity`].
    pub fn trace_dropped(&self) -> u64 {
        self.core.telemetry.trace.as_ref().map_or(0, |t| t.dropped())
    }

    /// The worst-offender served queries with per-entrant timing, worst
    /// first (bounded by [`TelemetryConfig::slow_query_capacity`]).
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.core.telemetry.slow.worst()
    }

    /// Lifetime win/loss/timeout tallies of each racing entrant, indexed
    /// like the runner's variant list (entrants that never raced read
    /// zero). These are the learned statistics behind top-K ranking.
    pub fn entrant_tallies(&self) -> Vec<EntrantTally> {
        self.core.entrant_tallies()
    }

    /// Applies one validated mutation batch to the live graph, returning
    /// the epoch it landed in. The write goes through the same
    /// admission gate as queries — it occupies one race slot for its
    /// (short) duration, so a stream of writes is arbitrated by the
    /// fair-grant machinery like any other tenant traffic and can
    /// neither starve nor be starved by reads. The batch is atomic: on
    /// any [`psi_core::UpdateError`] the live graph is untouched.
    ///
    /// On success the tenant's cache partition is invalidated (cached
    /// answers predate the mutation), the batch is appended to the
    /// learned-state WAL when persistence is attached (replayed on cold
    /// open), and — once the overlay holds at least
    /// [`EngineConfig::compact_threshold`] pending ops — a background
    /// compaction is queued on the worker pool. Queries racing while
    /// the update lands keep their pinned pre-update view; queries
    /// admitted afterwards see the mutated graph.
    pub fn apply_update(&self, update: &GraphUpdate) -> Result<u64, psi_core::UpdateError> {
        self.admission.acquire(Priority::Normal);
        let _permit = OwnedPermit::new(Arc::clone(&self.admission));
        let epoch = {
            // Hold the WAL slot across apply + append so a concurrent
            // save_graph cannot cut the log between the two (its
            // snapshot would miss the update *and* the reset would
            // discard the record).
            let mut wal_guard = self.core.learned_wal.lock().expect("wal lock");
            let epoch = self.core.runner.apply_update(update)?;
            if let Some(wal) = wal_guard.as_mut() {
                let record = psi_store::WalRecord::Update { bytes: update.encode() };
                if wal.append(&record).is_err() {
                    // Same policy as race-finalize appends: an I/O
                    // failure detaches the log; the next save_graph
                    // snapshots the live state wholesale.
                    *wal_guard = None;
                } else {
                    self.core.stats.wal_appended.fetch_add(1, Ordering::Relaxed);
                }
            }
            epoch
        };
        self.core.stats.updates_applied.fetch_add(1, Ordering::Relaxed);
        // Every cached answer was computed against the pre-update graph.
        self.core.cache.clear();
        self.core.stats.cache_invalidations.fetch_add(1, Ordering::Relaxed);
        let threshold = self.core.config.compact_threshold;
        if threshold > 0 && self.core.runner.pending_ops() >= threshold {
            let core = Arc::clone(&self.core);
            // The single-flight latch is taken inside the task (not
            // here), so a burst of triggering updates queues at most a
            // few no-op tasks rather than racing on the flag twice.
            self.pool.submit(move || {
                core.compact_single_flight();
            });
        }
        Ok(epoch)
    }

    /// Explicitly folds any pending delta overlay into a fresh base
    /// graph + rebuilt index, swapping the tenant to a new epoch.
    /// Returns what was compacted, or `None` when the overlay was empty
    /// or a background compaction is already running. In-flight races
    /// finish against their pinned pre-swap epoch; the swap never
    /// pauses them.
    pub fn compact_now(&self) -> Option<Compaction> {
        self.core.compact_single_flight()
    }

    /// The live graph's current epoch: 0 at construction, +1 per
    /// compaction.
    pub fn epoch(&self) -> u64 {
        self.core.runner.epoch()
    }

    /// Serves `query` under the configured default budget, blocking while
    /// the engine is at its concurrent-race limit. Thin wrapper:
    /// `submit_queued(request).wait()`.
    pub fn submit(&self, query: &Graph) -> EngineResponse {
        self.submit_request(QueryRequest::new(query.clone()))
            .expect("blocking single-graph submit cannot fail")
    }

    /// Serves `query` under an explicit budget, blocking for admission.
    /// Thin wrapper over the ticket path.
    pub fn submit_with_budget(&self, query: &Graph, budget: RaceBudget) -> EngineResponse {
        self.submit_request(QueryRequest::new(query.clone()).budget(budget))
            .expect("blocking single-graph submit cannot fail")
    }

    /// Non-blocking variant of [`Engine::submit`]: parks in the waiting
    /// room (or refuses with an [`AdmissionError`]) instead of blocking
    /// when the engine is at its concurrent-race limit. (Cache hits are
    /// always served, even at capacity.) Thin wrapper:
    /// `submit_nonblocking(request)?.wait()`.
    pub fn try_submit(&self, query: &Graph) -> Result<EngineResponse, SubmitError> {
        Ok(self.submit_nonblocking(QueryRequest::new(query.clone()))?.wait())
    }

    /// Non-blocking submit with an explicit budget. Thin wrapper over
    /// the ticket path.
    pub fn try_submit_with_budget(
        &self,
        query: &Graph,
        budget: RaceBudget,
    ) -> Result<EngineResponse, SubmitError> {
        Ok(self.submit_nonblocking(QueryRequest::new(query.clone()).budget(budget))?.wait())
    }

    /// The backoff reported with [`AdmissionError::Busy`]: the median
    /// end-to-end latency — roughly when the next slot frees — clamped
    /// so a cold engine still hints something useful.
    fn retry_hint(&self) -> Duration {
        self.core
            .stats
            .latency
            .percentile_duration(0.50)
            .clamp(Duration::from_micros(200), Duration::from_millis(100))
    }

    /// The one admission path: every submission — blocking wrapper,
    /// non-blocking ticket, single- or multi-graph — lands here.
    pub(crate) fn submit_ticket(
        &self,
        request: QueryRequest,
        block: bool,
    ) -> Result<QueryTicket, SubmitError> {
        // Admission time anchors every deadline downstream: a query that
        // waits in line burns its own budget, not the server's.
        let admitted = Instant::now();
        let QueryRequest { query, budget, priority, deadline, graph: _, tag: _ } = request;
        // The one budget-defaulting site for both engines.
        let mut budget = budget.unwrap_or_else(|| self.core.config.default_budget.clone());
        // A request deadline folds into the race budget's wall-clock cap:
        // both are anchored at admission, so the effective timeout is
        // simply the tighter of the two.
        if let Some(deadline) = deadline {
            budget.timeout = Some(budget.timeout.map_or(deadline, |t| t.min(deadline)));
        }
        let core = &self.core;
        // Canonicalization is only needed for the cache; skip it (and its
        // sorts/allocations) entirely when caching is disabled.
        let keyed = (core.config.cache_capacity > 0)
            .then(|| QueryKey::canonical_with_map(&query, budget.max_matches));
        let query_id = core.telemetry.next_query_id();

        if let Some((key, canon)) = &keyed {
            if let Some(cached) = core.cache.get(key) {
                core.stats.queries.fetch_add(1, Ordering::Relaxed);
                core.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                // Cached embeddings live in canonical numbering; hand the
                // caller embeddings in *its* numbering (queries sharing a
                // key can be renumberings of each other).
                let answer = Arc::new(CachedAnswer {
                    embeddings: cached
                        .embeddings
                        .iter()
                        .map(|e| embedding_from_canonical(e, canon))
                        .collect(),
                    ..(*cached).clone()
                });
                let elapsed = admitted.elapsed();
                core.stats.record_latency(elapsed);
                core.telemetry.emit(TraceEvent::CacheHit {
                    query: query_id,
                    elapsed_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
                });
                return Ok(QueryTicket::completed(
                    EngineResponse { answer, path: ServePath::CacheHit, elapsed, conclusive: true },
                    query_id,
                ));
            }
        }

        let token = CancelToken::new();
        let slot = Arc::new(CompletionSlot::new());
        // Everything past admission — entrant preparation, the one
        // predictor consultation per miss, the fast-path-or-race
        // decision, the race itself — happens on pooled workers (see
        // [`crate::flight`]). Ticket creation stays cheap so a few
        // event-loop client threads can keep hundreds of queries in
        // flight.
        let launch = DeferredLaunch::new(DeferredInner {
            core: Arc::clone(core),
            query,
            query_id,
            budget,
            admitted,
            keyed,
            token: token.clone(),
            slot: Arc::clone(&slot),
            pool: Arc::downgrade(&self.pool),
            timer: self.timer.as_ref().map_or_else(Weak::new, Arc::downgrade),
            gate: Arc::downgrade(&self.admission),
        });

        if block {
            self.admission.acquire(priority);
            launch.launch(None);
            return Ok(QueryTicket::pending(slot, token, query_id));
        }
        match self.admission.admit(priority, launch, core.config.waiting_room) {
            Admit::Ready(launch) => {
                launch.launch(None);
                Ok(QueryTicket::pending(slot, token, query_id))
            }
            Admit::Parked { ticket, depth } => {
                core.stats.parked.fetch_add(1, Ordering::Relaxed);
                core.telemetry.emit(TraceEvent::Parked {
                    query: query_id,
                    depth: depth.min(u32::MAX as usize) as u32,
                });
                Ok(QueryTicket::parked(slot, token, query_id, Arc::clone(&self.admission), ticket))
            }
            Admit::Full(launch) => {
                // No ticket was handed out; tear the launch down without
                // the Drop-abandon side effects (stats, trace, fulfill).
                launch.discard();
                if core.config.waiting_room == 0 {
                    core.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    Err(AdmissionError::Busy { retry_hint: self.retry_hint() }.into())
                } else {
                    core.stats.queue_full_rejections.fetch_add(1, Ordering::Relaxed);
                    Err(AdmissionError::QueueFull.into())
                }
            }
        }
    }
}

impl Submit for Engine {
    fn submit_nonblocking(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError> {
        self.submit_ticket(request, false)
    }

    fn submit_queued(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError> {
        self.submit_ticket(request, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::standalone_gate;

    // The grant-chaining policy itself (fairness, priorities,
    // grant-vs-late-arrival races) is unit-tested on the pure FairCore
    // state machine in `registry.rs`; these exercise the standalone
    // single-slot instance through the AdmissionGate interface.

    #[test]
    fn blocking_acquire_admits_everyone_under_contention() {
        use std::sync::atomic::AtomicUsize;
        let gate = standalone_gate(2);
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for i in 0..16 {
                let (gate, admitted) = (&gate, &admitted);
                let priority = [Priority::High, Priority::Normal, Priority::Low][i % 3];
                scope.spawn(move || {
                    gate.acquire(priority);
                    admitted.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                    gate.release();
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 16);
        // The gate must be fully drained: capacity available again.
        assert!(gate.try_acquire());
        gate.release();
    }

    #[test]
    fn try_acquire_respects_capacity() {
        let gate = standalone_gate(1);
        assert!(gate.try_acquire());
        assert!(!gate.try_acquire(), "at capacity");
        gate.release();
        assert!(gate.try_acquire());
        gate.release();
    }
}
