//! The query-serving engine: admission control in front of a shared
//! worker pool, a result cache, and a predictor fast path.
//!
//! Serving pipeline per query:
//!
//! 1. **Canonicalize + cache probe** — repeated queries return the cached
//!    definitive answer without touching the pool.
//! 2. **Admission** — at most `max_concurrent_races` queries may occupy
//!    the pool at once; [`Engine::submit`] blocks for a slot,
//!    [`Engine::try_submit`] returns [`EngineError::Busy`]. This bounds
//!    in-flight work to `max_concurrent_races × variants` tasks no matter
//!    how many callers pile on.
//! 3. **Predictor fast path** — once the k-NN predictor has seen enough
//!    races and votes confidently, the single predicted variant runs on
//!    the pool instead of a full race; an inconclusive result falls back
//!    to the race (the race's insurance is never lost).
//! 4. **Pooled race** — every variant is submitted as one pool task
//!    sharing a [`RaceState`]; the first conclusive finisher cancels the
//!    rest through the shared `CancelToken`, exactly as in
//!    [`psi_core::race`]. Deadlines are anchored at *admission* time, so
//!    queueing delay counts against the race budget (the paper's cap
//!    convention).

use crate::cache::{
    embedding_from_canonical, embedding_to_canonical, CachedAnswer, QueryKey, ShardedCache,
};
use crate::pool::WorkerPool;
use crate::stats::{EngineStats, StatsCollector};
use psi_core::predictor::{EntrantTally, QueryFeatures, VariantPredictor};
use psi_core::{PreparedEntrant, PsiRunner, RaceBudget, RaceState, Variant, VariantResult};
use psi_graph::Graph;
use psi_matchers::{CancelToken, MatchResult, StopReason};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a cache-missing, non-fast-path query races its entrant field on
/// the pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RaceStrategy {
    /// Race every configured variant at once — the paper's §8 setup and
    /// the engine's default.
    Full,
    /// Adaptive top-K racing with staged escalation: launch only the `k`
    /// predictor-ranked leading entrants, holding the rest of the field
    /// back as a reserve. If the pruned heat has not decided the race by
    /// the `escalate_after` fraction of the race budget — or finishes
    /// earlier without a conclusive result — the reserve launches on the
    /// same pool under the same [`RaceState`], so a late full-field
    /// winner still cancels everyone and deadlines stay anchored at
    /// admission. Until the predictor has seen
    /// `predictor_min_observations` races, the full field races (the
    /// training phase), preserving the race's worst-case insurance.
    TopK {
        /// Entrants in the first heat (clamped to the field size;
        /// 0 or ≥ field size degrades to [`RaceStrategy::Full`]).
        k: usize,
        /// Fraction of the race budget after which an undecided pruned
        /// heat escalates, in `[0, 1]`. Budgets without a wall-clock
        /// timeout measure the fraction against a small fixed window.
        escalate_after: f64,
    },
}

/// Notional race window used to place the stage deadline when the race
/// budget has no wall-clock timeout. Conclusive heats on typical serving
/// queries finish far inside this; only genuinely stuck heats escalate.
const UNTIMED_STAGE_WINDOW: Duration = Duration::from_millis(25);

/// Every Nth staged race runs the full field instead — an exploration
/// probe. An uncontested heat win is self-fulfilling evidence (the
/// pruned entrants never get to disprove the ranking), so only probes
/// and escalated races feed the predictor; the cadence bounds how long
/// workload drift can hide behind a stale ranking.
const EXPLORATION_PERIOD: u64 = 16;

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads shared by all in-flight races (default: available
    /// parallelism).
    pub workers: usize,
    /// Maximum races occupying the pool concurrently; further submissions
    /// block (or bounce with [`EngineError::Busy`]). Default: `workers`,
    /// so the pool always has at least one task slot per admitted race.
    pub max_concurrent_races: usize,
    /// Independently-locked cache shards (default 8).
    pub cache_shards: usize,
    /// Total cached answers across shards (default 4096); 0 disables the
    /// cache.
    pub cache_capacity: usize,
    /// Neighbours consulted by the variant predictor (default 3).
    pub predictor_k: usize,
    /// Race observations required before the fast path may trigger
    /// (default 32).
    pub predictor_min_observations: usize,
    /// Most recent race observations the predictor retains (default 4096);
    /// bounds predictor memory and per-miss prediction cost in a
    /// long-lived engine.
    pub predictor_window: usize,
    /// Minimum vote share for a fast-path prediction, in `(0, 1]`; set
    /// above 1.0 to disable the fast path (default 0.8).
    pub predictor_confidence: f64,
    /// How cache-missing queries race their entrant field (default
    /// [`RaceStrategy::Full`]; see [`RaceStrategy::TopK`] for adaptive
    /// pruned racing with staged escalation).
    pub race_strategy: RaceStrategy,
    /// Budget applied by [`Engine::submit`] / [`Engine::try_submit`].
    pub default_budget: RaceBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            workers,
            max_concurrent_races: workers,
            cache_shards: 8,
            cache_capacity: 4096,
            predictor_k: 3,
            predictor_min_observations: 32,
            predictor_window: 4096,
            predictor_confidence: 0.8,
            race_strategy: RaceStrategy::Full,
            default_budget: RaceBudget::matching(),
        }
    }
}

/// Why the engine refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The concurrent-race limit is reached (only from
    /// [`Engine::try_submit`]; [`Engine::submit`] blocks instead).
    Busy,
    /// The targeted graph is not registered (multi-graph serving only;
    /// see [`crate::MultiEngine`]).
    UnknownGraph,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Busy => f.write_str("engine at concurrent-race capacity"),
            EngineError::UnknownGraph => f.write_str("graph not registered with this engine"),
        }
    }
}

impl std::error::Error for EngineError {}

/// How a query was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePath {
    /// Answered from the result cache; no search executed.
    CacheHit,
    /// Answered by the predictor's single-variant fast path.
    FastPath,
    /// Answered by a full (rewriting × algorithm) race on the pool.
    Race,
}

/// One served query's answer and serving metadata.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// The definitive (or, on race timeout, best-effort) answer.
    pub answer: Arc<CachedAnswer>,
    /// Which pipeline stage produced the answer.
    pub path: ServePath,
    /// End-to-end latency from admission to answer.
    pub elapsed: Duration,
    /// Whether the answer is definitive (cache hits always are).
    pub conclusive: bool,
}

impl EngineResponse {
    /// Decision-problem convenience: did the query embed?
    pub fn found(&self) -> bool {
        self.answer.found
    }

    /// Number of embeddings in the answer.
    pub fn num_matches(&self) -> usize {
        self.answer.num_matches
    }
}

/// Where an engine gets permission to occupy the worker pool with a
/// race. The standalone [`Engine`] uses a plain counting semaphore
/// ([`Admission`]); a tenant of a [`crate::MultiEngine`] instead goes
/// through the registry's shared fair gate, which arbitrates slots
/// *across* graphs.
pub(crate) trait AdmissionGate: Send + Sync {
    /// Blocks until a race slot is granted.
    fn acquire(&self);
    /// Takes a slot if one is immediately available.
    fn try_acquire(&self) -> bool;
    /// Returns a previously acquired slot.
    fn release(&self);
}

/// Counting semaphore bounding concurrently admitted races.
struct Admission {
    in_flight: Mutex<usize>,
    freed: Condvar,
    max: usize,
}

impl AdmissionGate for Admission {
    fn acquire(&self) {
        let mut in_flight = self.in_flight.lock().expect("admission lock");
        while *in_flight >= self.max {
            in_flight = self.freed.wait(in_flight).expect("admission lock");
        }
        *in_flight += 1;
    }

    fn try_acquire(&self) -> bool {
        let mut in_flight = self.in_flight.lock().expect("admission lock");
        if *in_flight >= self.max {
            false
        } else {
            *in_flight += 1;
            true
        }
    }

    fn release(&self) {
        *self.in_flight.lock().expect("admission lock") -= 1;
        self.freed.notify_one();
    }
}

/// RAII admission slot.
struct Permit<'a>(&'a dyn AdmissionGate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A long-lived, concurrency-safe query-serving engine over one prepared
/// [`PsiRunner`]. Cheap to share: all methods take `&self`.
pub struct Engine {
    runner: Arc<PsiRunner>,
    pool: Arc<WorkerPool>,
    cache: ShardedCache,
    predictor: Mutex<VariantPredictor>,
    admission: Arc<dyn AdmissionGate>,
    stats: StatsCollector,
    /// Staged races scheduled so far; every [`EXPLORATION_PERIOD`]th one
    /// becomes a full-field exploration probe.
    staged_seq: AtomicU64,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine serving queries against `runner`'s stored graph
    /// and variant configuration.
    pub fn new(runner: PsiRunner, config: EngineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers));
        let admission = Arc::new(Admission {
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            max: config.max_concurrent_races.max(1),
        });
        Self::with_shared(Arc::new(runner), config, pool, admission)
    }

    /// Builds an engine on *shared* infrastructure: the worker pool and
    /// admission gate are owned elsewhere (by a [`crate::MultiEngine`]
    /// whose registered graphs all drain into one pool). `config.workers`
    /// and `config.max_concurrent_races` are ignored — capacity lives in
    /// the shared pool and gate.
    pub(crate) fn with_shared(
        runner: Arc<PsiRunner>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        admission: Arc<dyn AdmissionGate>,
    ) -> Self {
        Self {
            runner,
            pool,
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity.max(1)),
            predictor: Mutex::new(VariantPredictor::with_window(
                config.predictor_k.max(1),
                config.predictor_window.max(1),
            )),
            admission,
            stats: StatsCollector::new(),
            staged_seq: AtomicU64::new(0),
            config,
        }
    }

    /// Engine with default tuning.
    pub fn with_defaults(runner: PsiRunner) -> Self {
        Self::new(runner, EngineConfig::default())
    }

    /// The underlying runner (stored graph, variants, matchers).
    pub fn runner(&self) -> &Arc<PsiRunner> {
        &self.runner
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// The live collector behind [`Engine::stats`] — lets the registry
    /// merge raw latency samples across graphs for aggregate percentiles.
    pub(crate) fn stats_collector(&self) -> &StatsCollector {
        &self.stats
    }

    /// Serves `query` under the configured default budget, blocking while
    /// the engine is at its concurrent-race limit.
    pub fn submit(&self, query: &Graph) -> EngineResponse {
        self.serve(query, self.config.default_budget.clone(), true)
            .expect("blocking submit cannot be Busy")
    }

    /// Serves `query` under an explicit budget, blocking for admission.
    pub fn submit_with_budget(&self, query: &Graph, budget: RaceBudget) -> EngineResponse {
        self.serve(query, budget, true).expect("blocking submit cannot be Busy")
    }

    /// Non-blocking variant of [`Engine::submit`]: returns
    /// [`EngineError::Busy`] instead of waiting when the engine is at its
    /// concurrent-race limit. (Cache hits are always served, even at
    /// capacity.)
    pub fn try_submit(&self, query: &Graph) -> Result<EngineResponse, EngineError> {
        self.serve(query, self.config.default_budget.clone(), false)
    }

    /// Non-blocking submit with an explicit budget.
    pub fn try_submit_with_budget(
        &self,
        query: &Graph,
        budget: RaceBudget,
    ) -> Result<EngineResponse, EngineError> {
        self.serve(query, budget, false)
    }

    fn serve(
        &self,
        query: &Graph,
        budget: RaceBudget,
        block: bool,
    ) -> Result<EngineResponse, EngineError> {
        // Admission time anchors every deadline downstream: a query that
        // waits in line burns its own budget, not the server's.
        let admitted = Instant::now();
        // Canonicalization is only needed for the cache; skip it (and its
        // sorts/allocations) entirely when caching is disabled.
        let keyed = (self.config.cache_capacity > 0)
            .then(|| QueryKey::canonical_with_map(query, budget.max_matches));

        if let Some((key, canon)) = &keyed {
            if let Some(cached) = self.cache.get(key) {
                self.stats.queries.fetch_add(1, Ordering::Relaxed);
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                // Cached embeddings live in canonical numbering; hand the
                // caller embeddings in *its* numbering (queries sharing a
                // key can be renumberings of each other).
                let answer = Arc::new(CachedAnswer {
                    embeddings: cached
                        .embeddings
                        .iter()
                        .map(|e| embedding_from_canonical(e, canon))
                        .collect(),
                    ..(*cached).clone()
                });
                let elapsed = admitted.elapsed();
                self.stats.record_latency(elapsed);
                return Ok(EngineResponse {
                    answer,
                    path: ServePath::CacheHit,
                    elapsed,
                    conclusive: true,
                });
            }
        }

        if block {
            self.admission.acquire();
        } else if !self.admission.try_acquire() {
            self.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Busy);
        }
        let _permit = Permit(self.admission.as_ref());
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        let entrants = self.runner.prepare_entrants(query);
        let features = QueryFeatures::extract(query, self.runner.label_stats());

        // One predictor consultation per miss: the ranked field serves
        // both the fast-path confidence check and top-K heat selection.
        let ranking = self.consult_predictor(&features, entrants.len());

        // Predictor fast path: run only the top-ranked variant when the
        // neighbourhood vote is confident enough.
        if let Some((order, share)) = &ranking {
            if self.config.predictor_confidence <= 1.0 && *share >= self.config.predictor_confidence
            {
                if let Some(response) =
                    self.serve_fast_path(&entrants[order[0]], &budget, admitted, keyed.as_ref())
                {
                    return Ok(response);
                }
                self.stats.fast_path_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
        }

        Ok(self.serve_race(entrants, &features, ranking, &budget, admitted, keyed.as_ref()))
    }

    /// The predictor's ranked entrant field and leader vote share for
    /// this query, or `None` when no caller needs it (fast path disabled
    /// *and* races unstaged) or the predictor is still inside its
    /// training phase — pruning or predicting on no evidence would
    /// forfeit the race's worst-case insurance for nothing.
    fn consult_predictor(
        &self,
        features: &QueryFeatures,
        variants: usize,
    ) -> Option<(Vec<usize>, f64)> {
        let fast_path = self.config.predictor_confidence <= 1.0;
        let staged = matches!(self.config.race_strategy, RaceStrategy::TopK { k, .. } if k > 0 && k < variants);
        if !fast_path && !staged {
            return None;
        }
        let predictor = self.predictor.lock().expect("predictor lock");
        if predictor.observations() < self.config.predictor_min_observations {
            return None;
        }
        Some(predictor.rank_with_vote_share(features, variants))
    }

    /// Lifetime win/loss/timeout tallies of each racing entrant, indexed
    /// like the runner's variant list (entrants that never raced read
    /// zero). These are the learned statistics behind top-K ranking.
    pub fn entrant_tallies(&self) -> Vec<EntrantTally> {
        let mut tallies = self.predictor.lock().expect("predictor lock").tallies().to_vec();
        let variants = self.runner.config().variants.len();
        if tallies.len() < variants {
            tallies.resize(variants, EntrantTally::default());
        }
        tallies
    }

    /// Stores `answer` in the cache (no-op when caching is disabled),
    /// translating embeddings into canonical numbering so any renumbering
    /// of the query can use the entry on a hit.
    fn cache_store(&self, keyed: Option<&(QueryKey, Vec<u32>)>, answer: &Arc<CachedAnswer>) {
        let Some((key, canon)) = keyed else { return };
        self.cache.insert(
            key.clone(),
            Arc::new(CachedAnswer {
                embeddings: answer
                    .embeddings
                    .iter()
                    .map(|e| embedding_to_canonical(e, canon))
                    .collect(),
                ..(**answer).clone()
            }),
        );
    }

    /// Runs the single predicted variant as one pool task. Returns `None`
    /// when the result is inconclusive (caller falls back to a race).
    fn serve_fast_path(
        &self,
        entrant: &PreparedEntrant,
        budget: &RaceBudget,
        admitted: Instant,
        keyed: Option<&(QueryKey, Vec<u32>)>,
    ) -> Option<EngineResponse> {
        let search_budget = budget.entrant_budget(CancelToken::new(), admitted);
        let entrant = entrant.clone();
        let variant = entrant.variant;
        let (tx, rx) = mpsc::channel();
        self.pool.submit(move || {
            let _ = tx.send(entrant.execute(&search_budget));
        });
        let result = rx.recv().ok()?;
        if !result.stop.is_conclusive() {
            return None;
        }
        self.stats.fast_paths.fetch_add(1, Ordering::Relaxed);
        let elapsed = admitted.elapsed();
        let answer = Arc::new(CachedAnswer {
            found: result.found(),
            num_matches: result.num_matches,
            embeddings: result.embeddings,
            winner: Some(variant),
            cold_elapsed: elapsed,
        });
        self.cache_store(keyed, &answer);
        self.stats.record_latency(elapsed);
        Some(EngineResponse { answer, path: ServePath::FastPath, elapsed, conclusive: true })
    }

    /// Races the entrant field on the worker pool — the whole field at
    /// once ([`RaceStrategy::Full`]), or a predictor-ranked top-K first
    /// heat with the rest held back as an escalation reserve
    /// ([`RaceStrategy::TopK`]).
    fn serve_race(
        &self,
        entrants: Vec<PreparedEntrant>,
        features: &QueryFeatures,
        ranking: Option<(Vec<usize>, f64)>,
        budget: &RaceBudget,
        admitted: Instant,
        keyed: Option<&(QueryKey, Vec<u32>)>,
    ) -> EngineResponse {
        let variants: Vec<Variant> = entrants.iter().map(|e| e.variant).collect();
        let n = entrants.len();
        let state = Arc::new(RaceState::new(admitted));
        let (tx, rx) = mpsc::channel::<(usize, VariantResult<Variant>)>();

        // Package every entrant as a ready-to-submit pool task owning its
        // own sender clone: the channel disconnects exactly when no task
        // (launched or still in reserve) can report anymore, which keeps
        // the collection loop below panic-tolerant in both modes.
        let make_task =
            |idx: usize, entrant: PreparedEntrant| -> Box<dyn FnOnce() + Send + 'static> {
                let state = Arc::clone(&state);
                let budget = budget.clone();
                let tx = tx.clone();
                Box::new(move || {
                    let variant = entrant.variant;
                    let (result, wall) = state.run_entrant(idx, &budget, |b| entrant.execute(b));
                    let _ = tx.send((idx, VariantResult { label: variant, result, wall }));
                })
            };

        // Stage only when the strategy says so AND the predictor was
        // consultable (trained past its observation floor): a `ranking`
        // may also be present purely for the fast path under Full. Every
        // EXPLORATION_PERIODth would-be staged race runs the full field
        // instead, so contested evidence keeps flowing and a drifted
        // ranking cannot entrench itself behind uncontested heat wins.
        let heat = match self.config.race_strategy {
            RaceStrategy::TopK { k, .. } if k > 0 && k < n => ranking
                .filter(|_| {
                    !(self.staged_seq.fetch_add(1, Ordering::Relaxed) + 1)
                        .is_multiple_of(EXPLORATION_PERIOD)
                })
                .map(|(order, _)| (order, k)),
            _ => None,
        };
        let (order, k) = heat.unwrap_or_else(|| ((0..n).collect(), n));
        let staged = k < n;
        let mut entrant_slots: Vec<Option<PreparedEntrant>> =
            entrants.into_iter().map(Some).collect();
        // The first heat launches immediately, best-ranked first.
        for &idx in &order[..k] {
            let entrant = entrant_slots[idx].take().expect("each entrant launches once");
            self.pool.submit(make_task(idx, entrant));
        }
        // The reserve is pre-packaged so escalation is one submit away;
        // pruning it (dropping the tasks) releases their senders, letting
        // the channel disconnect once the heat drains.
        let mut reserve: Vec<(usize, Box<dyn FnOnce() + Send + 'static>)> = order[k..]
            .iter()
            .map(|&idx| {
                let entrant = entrant_slots[idx].take().expect("each entrant launches once");
                (idx, make_task(idx, entrant))
            })
            .collect();
        drop(tx);

        if staged {
            self.stats.topk_races.fetch_add(1, Ordering::Relaxed);
        }
        let escalate_after = match self.config.race_strategy {
            RaceStrategy::TopK { escalate_after, .. } => escalate_after,
            RaceStrategy::Full => 0.0,
        };
        // Timed budgets anchor the stage deadline at admission — entrant
        // deadlines are admission-anchored, so escalating any later than
        // the race deadline would be useless. Untimed budgets have no
        // such deadline to respect; their stage window anchors at the
        // instant the heat actually began executing, so pool queueing
        // delay on a saturated pool cannot trigger spurious escalations
        // before the heat has even run. `None` = heat still queued.
        let stage_deadline = || -> Option<Instant> {
            match budget.timeout {
                Some(_) => {
                    Some(budget.stage_deadline(admitted, escalate_after, UNTIMED_STAGE_WINDOW))
                }
                None => state.first_entrant_started().map(|begun| {
                    budget.stage_deadline(begun, escalate_after, UNTIMED_STAGE_WINDOW)
                }),
            }
        };

        // Collect every entrant; a slot can only stay empty if its task
        // panicked (the pool contains the panic) or never launched
        // (pruned), both reported as cancelled entrants rather than
        // poisoning the whole race.
        let mut slots: Vec<Option<VariantResult<Variant>>> = (0..n).map(|_| None).collect();
        let mut pruned = vec![false; n];
        let mut heat_reported = 0usize;
        loop {
            if !reserve.is_empty() {
                if state.is_decided() {
                    // The pruned heat decided the race: the reserve never
                    // occupies a worker.
                    for (idx, _) in reserve.drain(..) {
                        pruned[idx] = true;
                    }
                } else if heat_reported >= k
                    || stage_deadline().is_some_and(|d| Instant::now() >= d)
                {
                    // Stage escalation: the heat finished inconclusive, or
                    // the stage deadline passed undecided. Launch the rest
                    // of the field under the same race state — a late
                    // full-field winner still cancels everyone, and every
                    // deadline stays anchored at admission.
                    for (_, task) in reserve.drain(..) {
                        self.pool.submit(task);
                    }
                    self.stats.escalations.fetch_add(1, Ordering::Relaxed);
                }
            }
            let message = if reserve.is_empty() {
                rx.recv().ok()
            } else {
                let wait = match stage_deadline() {
                    Some(d) => d.saturating_duration_since(Instant::now()),
                    // Heat still queued: poll again once it could have
                    // started; no escalation can fire before then.
                    None => UNTIMED_STAGE_WINDOW,
                };
                match rx.recv_timeout(wait) {
                    Ok(m) => Some(m),
                    Err(mpsc::RecvTimeoutError::Timeout) => continue,
                    Err(mpsc::RecvTimeoutError::Disconnected) => None,
                }
            };
            match message {
                Some((idx, vr)) => {
                    slots[idx] = Some(vr);
                    heat_reported += 1;
                }
                None => break,
            }
        }
        let pruned_count = pruned.iter().filter(|&&p| p).count();
        let per_variant: Vec<VariantResult<Variant>> = slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| VariantResult {
                    label: variants[idx],
                    result: MatchResult::empty(StopReason::Cancelled),
                    wall: admitted.elapsed(),
                })
            })
            .collect();

        // Pruned entrants carry the Cancelled placeholder but never ran —
        // count them separately from the Ψ "kill" count.
        let cancelled = per_variant
            .iter()
            .enumerate()
            .filter(|&(idx, vr)| !pruned[idx] && vr.result.stop == StopReason::Cancelled)
            .count();
        let outcome = state.finish(per_variant);
        self.stats.races.fetch_add(1, Ordering::Relaxed);
        self.stats.cancelled_variants.fetch_add(cancelled as u64, Ordering::Relaxed);
        self.stats.pruned_entrants.fetch_add(pruned_count as u64, Ordering::Relaxed);

        let elapsed = admitted.elapsed();
        let conclusive = outcome.is_conclusive();
        // An uncontested win (no other entrant launched) proves nothing
        // about the rest of the field — feeding it back would make the
        // ranking self-fulfilling. Only contested races train the
        // predictor; the exploration probes above guarantee a steady
        // supply of them.
        let contested = n - pruned_count > 1;
        if contested {
            let mut predictor = self.predictor.lock().expect("predictor lock");
            if let Some(winner_idx) = outcome.winner_index {
                predictor.observe(*features, winner_idx);
            }
            for (idx, vr) in outcome.per_variant.iter().enumerate() {
                if pruned[idx] || outcome.winner_index == Some(idx) {
                    continue;
                }
                match vr.result.stop {
                    StopReason::TimedOut => predictor.record_timeout(idx),
                    _ if outcome.winner_index.is_some() => predictor.record_loss(idx),
                    _ => {}
                }
            }
        }
        if outcome.winner_index.is_none() {
            self.stats.inconclusive.fetch_add(1, Ordering::Relaxed);
        }
        let answer = Arc::new(match outcome.winner() {
            Some(w) => CachedAnswer {
                found: w.result.found(),
                num_matches: w.result.num_matches,
                embeddings: w.result.embeddings.clone(),
                winner: Some(w.label),
                cold_elapsed: elapsed,
            },
            None => CachedAnswer {
                found: false,
                num_matches: 0,
                embeddings: Vec::new(),
                winner: None,
                cold_elapsed: elapsed,
            },
        });
        // Only definitive answers are cacheable: a timed-out race might
        // succeed on retry with a fresh budget.
        if conclusive {
            self.cache_store(keyed, &answer);
        }
        self.stats.record_latency(elapsed);
        EngineResponse { answer, path: ServePath::Race, elapsed, conclusive }
    }
}
