//! The query-serving engine: admission control in front of a shared
//! worker pool, a result cache, and a predictor fast path.
//!
//! Serving pipeline per query:
//!
//! 1. **Canonicalize + cache probe** — repeated queries return the cached
//!    definitive answer without touching the pool.
//! 2. **Admission** — at most `max_concurrent_races` queries may occupy
//!    the pool at once; [`Engine::submit`] blocks for a slot,
//!    [`Engine::try_submit`] returns [`EngineError::Busy`]. This bounds
//!    in-flight work to `max_concurrent_races × variants` tasks no matter
//!    how many callers pile on.
//! 3. **Predictor fast path** — once the k-NN predictor has seen enough
//!    races and votes confidently, the single predicted variant runs on
//!    the pool instead of a full race; an inconclusive result falls back
//!    to the race (the race's insurance is never lost).
//! 4. **Pooled race** — every variant is submitted as one pool task
//!    sharing a [`RaceState`]; the first conclusive finisher cancels the
//!    rest through the shared `CancelToken`, exactly as in
//!    [`psi_core::race`]. Deadlines are anchored at *admission* time, so
//!    queueing delay counts against the race budget (the paper's cap
//!    convention).

use crate::cache::{
    embedding_from_canonical, embedding_to_canonical, CachedAnswer, QueryKey, ShardedCache,
};
use crate::pool::WorkerPool;
use crate::stats::{EngineStats, StatsCollector};
use psi_core::predictor::{QueryFeatures, VariantPredictor};
use psi_core::{PreparedEntrant, PsiRunner, RaceBudget, RaceState, Variant, VariantResult};
use psi_graph::Graph;
use psi_matchers::{CancelToken, MatchResult, StopReason};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads shared by all in-flight races (default: available
    /// parallelism).
    pub workers: usize,
    /// Maximum races occupying the pool concurrently; further submissions
    /// block (or bounce with [`EngineError::Busy`]). Default: `workers`,
    /// so the pool always has at least one task slot per admitted race.
    pub max_concurrent_races: usize,
    /// Independently-locked cache shards (default 8).
    pub cache_shards: usize,
    /// Total cached answers across shards (default 4096); 0 disables the
    /// cache.
    pub cache_capacity: usize,
    /// Neighbours consulted by the variant predictor (default 3).
    pub predictor_k: usize,
    /// Race observations required before the fast path may trigger
    /// (default 32).
    pub predictor_min_observations: usize,
    /// Most recent race observations the predictor retains (default 4096);
    /// bounds predictor memory and per-miss prediction cost in a
    /// long-lived engine.
    pub predictor_window: usize,
    /// Minimum vote share for a fast-path prediction, in `(0, 1]`; set
    /// above 1.0 to disable the fast path (default 0.8).
    pub predictor_confidence: f64,
    /// Budget applied by [`Engine::submit`] / [`Engine::try_submit`].
    pub default_budget: RaceBudget,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self {
            workers,
            max_concurrent_races: workers,
            cache_shards: 8,
            cache_capacity: 4096,
            predictor_k: 3,
            predictor_min_observations: 32,
            predictor_window: 4096,
            predictor_confidence: 0.8,
            default_budget: RaceBudget::matching(),
        }
    }
}

/// Why the engine refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The concurrent-race limit is reached (only from
    /// [`Engine::try_submit`]; [`Engine::submit`] blocks instead).
    Busy,
    /// The targeted graph is not registered (multi-graph serving only;
    /// see [`crate::MultiEngine`]).
    UnknownGraph,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Busy => f.write_str("engine at concurrent-race capacity"),
            EngineError::UnknownGraph => f.write_str("graph not registered with this engine"),
        }
    }
}

impl std::error::Error for EngineError {}

/// How a query was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePath {
    /// Answered from the result cache; no search executed.
    CacheHit,
    /// Answered by the predictor's single-variant fast path.
    FastPath,
    /// Answered by a full (rewriting × algorithm) race on the pool.
    Race,
}

/// One served query's answer and serving metadata.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// The definitive (or, on race timeout, best-effort) answer.
    pub answer: Arc<CachedAnswer>,
    /// Which pipeline stage produced the answer.
    pub path: ServePath,
    /// End-to-end latency from admission to answer.
    pub elapsed: Duration,
    /// Whether the answer is definitive (cache hits always are).
    pub conclusive: bool,
}

impl EngineResponse {
    /// Decision-problem convenience: did the query embed?
    pub fn found(&self) -> bool {
        self.answer.found
    }

    /// Number of embeddings in the answer.
    pub fn num_matches(&self) -> usize {
        self.answer.num_matches
    }
}

/// Where an engine gets permission to occupy the worker pool with a
/// race. The standalone [`Engine`] uses a plain counting semaphore
/// ([`Admission`]); a tenant of a [`crate::MultiEngine`] instead goes
/// through the registry's shared fair gate, which arbitrates slots
/// *across* graphs.
pub(crate) trait AdmissionGate: Send + Sync {
    /// Blocks until a race slot is granted.
    fn acquire(&self);
    /// Takes a slot if one is immediately available.
    fn try_acquire(&self) -> bool;
    /// Returns a previously acquired slot.
    fn release(&self);
}

/// Counting semaphore bounding concurrently admitted races.
struct Admission {
    in_flight: Mutex<usize>,
    freed: Condvar,
    max: usize,
}

impl AdmissionGate for Admission {
    fn acquire(&self) {
        let mut in_flight = self.in_flight.lock().expect("admission lock");
        while *in_flight >= self.max {
            in_flight = self.freed.wait(in_flight).expect("admission lock");
        }
        *in_flight += 1;
    }

    fn try_acquire(&self) -> bool {
        let mut in_flight = self.in_flight.lock().expect("admission lock");
        if *in_flight >= self.max {
            false
        } else {
            *in_flight += 1;
            true
        }
    }

    fn release(&self) {
        *self.in_flight.lock().expect("admission lock") -= 1;
        self.freed.notify_one();
    }
}

/// RAII admission slot.
struct Permit<'a>(&'a dyn AdmissionGate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// A long-lived, concurrency-safe query-serving engine over one prepared
/// [`PsiRunner`]. Cheap to share: all methods take `&self`.
pub struct Engine {
    runner: Arc<PsiRunner>,
    pool: Arc<WorkerPool>,
    cache: ShardedCache,
    predictor: Mutex<VariantPredictor>,
    admission: Arc<dyn AdmissionGate>,
    stats: StatsCollector,
    config: EngineConfig,
}

impl Engine {
    /// Builds an engine serving queries against `runner`'s stored graph
    /// and variant configuration.
    pub fn new(runner: PsiRunner, config: EngineConfig) -> Self {
        let pool = Arc::new(WorkerPool::new(config.workers));
        let admission = Arc::new(Admission {
            in_flight: Mutex::new(0),
            freed: Condvar::new(),
            max: config.max_concurrent_races.max(1),
        });
        Self::with_shared(Arc::new(runner), config, pool, admission)
    }

    /// Builds an engine on *shared* infrastructure: the worker pool and
    /// admission gate are owned elsewhere (by a [`crate::MultiEngine`]
    /// whose registered graphs all drain into one pool). `config.workers`
    /// and `config.max_concurrent_races` are ignored — capacity lives in
    /// the shared pool and gate.
    pub(crate) fn with_shared(
        runner: Arc<PsiRunner>,
        config: EngineConfig,
        pool: Arc<WorkerPool>,
        admission: Arc<dyn AdmissionGate>,
    ) -> Self {
        Self {
            runner,
            pool,
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity.max(1)),
            predictor: Mutex::new(VariantPredictor::with_window(
                config.predictor_k.max(1),
                config.predictor_window.max(1),
            )),
            admission,
            stats: StatsCollector::new(),
            config,
        }
    }

    /// Engine with default tuning.
    pub fn with_defaults(runner: PsiRunner) -> Self {
        Self::new(runner, EngineConfig::default())
    }

    /// The underlying runner (stored graph, variants, matchers).
    pub fn runner(&self) -> &Arc<PsiRunner> {
        &self.runner
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current serving statistics.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot()
    }

    /// The live collector behind [`Engine::stats`] — lets the registry
    /// merge raw latency samples across graphs for aggregate percentiles.
    pub(crate) fn stats_collector(&self) -> &StatsCollector {
        &self.stats
    }

    /// Serves `query` under the configured default budget, blocking while
    /// the engine is at its concurrent-race limit.
    pub fn submit(&self, query: &Graph) -> EngineResponse {
        self.serve(query, self.config.default_budget.clone(), true)
            .expect("blocking submit cannot be Busy")
    }

    /// Serves `query` under an explicit budget, blocking for admission.
    pub fn submit_with_budget(&self, query: &Graph, budget: RaceBudget) -> EngineResponse {
        self.serve(query, budget, true).expect("blocking submit cannot be Busy")
    }

    /// Non-blocking variant of [`Engine::submit`]: returns
    /// [`EngineError::Busy`] instead of waiting when the engine is at its
    /// concurrent-race limit. (Cache hits are always served, even at
    /// capacity.)
    pub fn try_submit(&self, query: &Graph) -> Result<EngineResponse, EngineError> {
        self.serve(query, self.config.default_budget.clone(), false)
    }

    /// Non-blocking submit with an explicit budget.
    pub fn try_submit_with_budget(
        &self,
        query: &Graph,
        budget: RaceBudget,
    ) -> Result<EngineResponse, EngineError> {
        self.serve(query, budget, false)
    }

    fn serve(
        &self,
        query: &Graph,
        budget: RaceBudget,
        block: bool,
    ) -> Result<EngineResponse, EngineError> {
        // Admission time anchors every deadline downstream: a query that
        // waits in line burns its own budget, not the server's.
        let admitted = Instant::now();
        // Canonicalization is only needed for the cache; skip it (and its
        // sorts/allocations) entirely when caching is disabled.
        let keyed = (self.config.cache_capacity > 0)
            .then(|| QueryKey::canonical_with_map(query, budget.max_matches));

        if let Some((key, canon)) = &keyed {
            if let Some(cached) = self.cache.get(key) {
                self.stats.queries.fetch_add(1, Ordering::Relaxed);
                self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
                // Cached embeddings live in canonical numbering; hand the
                // caller embeddings in *its* numbering (queries sharing a
                // key can be renumberings of each other).
                let answer = Arc::new(CachedAnswer {
                    embeddings: cached
                        .embeddings
                        .iter()
                        .map(|e| embedding_from_canonical(e, canon))
                        .collect(),
                    ..(*cached).clone()
                });
                let elapsed = admitted.elapsed();
                self.stats.record_latency(elapsed);
                return Ok(EngineResponse {
                    answer,
                    path: ServePath::CacheHit,
                    elapsed,
                    conclusive: true,
                });
            }
        }

        if block {
            self.admission.acquire();
        } else if !self.admission.try_acquire() {
            self.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(EngineError::Busy);
        }
        let _permit = Permit(self.admission.as_ref());
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.cache_misses.fetch_add(1, Ordering::Relaxed);

        let entrants = self.runner.prepare_entrants(query);
        let features = QueryFeatures::extract(query, self.runner.label_stats());

        // Predictor fast path: run only the predicted variant when the
        // neighbourhood vote is confident enough.
        if let Some(idx) = self.confident_prediction(&features, entrants.len()) {
            if let Some(response) =
                self.serve_fast_path(&entrants[idx], &budget, admitted, keyed.as_ref())
            {
                return Ok(response);
            }
            self.stats.fast_path_fallbacks.fetch_add(1, Ordering::Relaxed);
        }

        Ok(self.serve_race(entrants, &features, &budget, admitted, keyed.as_ref()))
    }

    fn confident_prediction(&self, features: &QueryFeatures, variants: usize) -> Option<usize> {
        if self.config.predictor_confidence > 1.0 {
            return None;
        }
        let predictor = self.predictor.lock().expect("predictor lock");
        if predictor.observations() < self.config.predictor_min_observations {
            return None;
        }
        let (idx, confidence) = predictor.predict_with_confidence(features)?;
        (confidence >= self.config.predictor_confidence && idx < variants).then_some(idx)
    }

    /// Stores `answer` in the cache (no-op when caching is disabled),
    /// translating embeddings into canonical numbering so any renumbering
    /// of the query can use the entry on a hit.
    fn cache_store(&self, keyed: Option<&(QueryKey, Vec<u32>)>, answer: &Arc<CachedAnswer>) {
        let Some((key, canon)) = keyed else { return };
        self.cache.insert(
            key.clone(),
            Arc::new(CachedAnswer {
                embeddings: answer
                    .embeddings
                    .iter()
                    .map(|e| embedding_to_canonical(e, canon))
                    .collect(),
                ..(**answer).clone()
            }),
        );
    }

    /// Runs the single predicted variant as one pool task. Returns `None`
    /// when the result is inconclusive (caller falls back to a race).
    fn serve_fast_path(
        &self,
        entrant: &PreparedEntrant,
        budget: &RaceBudget,
        admitted: Instant,
        keyed: Option<&(QueryKey, Vec<u32>)>,
    ) -> Option<EngineResponse> {
        let search_budget = budget.entrant_budget(CancelToken::new(), admitted);
        let entrant = entrant.clone();
        let variant = entrant.variant;
        let (tx, rx) = mpsc::channel();
        self.pool.submit(move || {
            let _ = tx.send(entrant.execute(&search_budget));
        });
        let result = rx.recv().ok()?;
        if !result.stop.is_conclusive() {
            return None;
        }
        self.stats.fast_paths.fetch_add(1, Ordering::Relaxed);
        let elapsed = admitted.elapsed();
        let answer = Arc::new(CachedAnswer {
            found: result.found(),
            num_matches: result.num_matches,
            embeddings: result.embeddings,
            winner: Some(variant),
            cold_elapsed: elapsed,
        });
        self.cache_store(keyed, &answer);
        self.stats.record_latency(elapsed);
        Some(EngineResponse { answer, path: ServePath::FastPath, elapsed, conclusive: true })
    }

    /// Full Ψ race across the worker pool.
    fn serve_race(
        &self,
        entrants: Vec<PreparedEntrant>,
        features: &QueryFeatures,
        budget: &RaceBudget,
        admitted: Instant,
        keyed: Option<&(QueryKey, Vec<u32>)>,
    ) -> EngineResponse {
        let variants: Vec<Variant> = entrants.iter().map(|e| e.variant).collect();
        let n = entrants.len();
        let state = Arc::new(RaceState::new(admitted));
        let (tx, rx) = mpsc::channel::<(usize, VariantResult<Variant>)>();
        for (idx, entrant) in entrants.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let budget = budget.clone();
            let tx = tx.clone();
            self.pool.submit(move || {
                let variant = entrant.variant;
                let (result, wall) = state.run_entrant(idx, &budget, |b| entrant.execute(b));
                let _ = tx.send((idx, VariantResult { label: variant, result, wall }));
            });
        }
        drop(tx);

        // Collect every entrant; a slot can only stay empty if its task
        // panicked (the pool contains the panic), which we report as a
        // cancelled entrant rather than poisoning the whole race.
        let mut slots: Vec<Option<VariantResult<Variant>>> = (0..n).map(|_| None).collect();
        while let Ok((idx, vr)) = rx.recv() {
            slots[idx] = Some(vr);
        }
        let per_variant: Vec<VariantResult<Variant>> = slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| VariantResult {
                    label: variants[idx],
                    result: MatchResult::empty(StopReason::Cancelled),
                    wall: admitted.elapsed(),
                })
            })
            .collect();

        let cancelled =
            per_variant.iter().filter(|vr| vr.result.stop == StopReason::Cancelled).count();
        let outcome = state.finish(per_variant);
        self.stats.races.fetch_add(1, Ordering::Relaxed);
        self.stats.cancelled_variants.fetch_add(cancelled as u64, Ordering::Relaxed);

        let elapsed = admitted.elapsed();
        let conclusive = outcome.is_conclusive();
        if let Some(winner_idx) = outcome.winner_index {
            self.predictor.lock().expect("predictor lock").observe(*features, winner_idx);
        } else {
            self.stats.inconclusive.fetch_add(1, Ordering::Relaxed);
        }
        let answer = Arc::new(match outcome.winner() {
            Some(w) => CachedAnswer {
                found: w.result.found(),
                num_matches: w.result.num_matches,
                embeddings: w.result.embeddings.clone(),
                winner: Some(w.label),
                cold_elapsed: elapsed,
            },
            None => CachedAnswer {
                found: false,
                num_matches: 0,
                embeddings: Vec::new(),
                winner: None,
                cold_elapsed: elapsed,
            },
        });
        // Only definitive answers are cacheable: a timed-out race might
        // succeed on retry with a fresh budget.
        if conclusive {
            self.cache_store(keyed, &answer);
        }
        self.stats.record_latency(elapsed);
        EngineResponse { answer, path: ServePath::Race, elapsed, conclusive }
    }
}
