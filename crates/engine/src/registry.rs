//! Multi-graph serving: a registry of named stored graphs multiplexed
//! over **one** shared worker pool.
//!
//! The paper evaluates Ψ across several datasets; a production graph
//! store serves all of them from one process. [`MultiEngine`] is that
//! layer: each registered graph keeps its own [`psi_core::PsiRunner`]
//! (prepared matchers and indexes), its own predictor state, its own
//! result-cache partition and its own [`EngineStats`] — but every race,
//! from every graph, drains into a single [`WorkerPool`], and admission
//! slots are arbitrated *across* graphs by a fair gate.
//!
//! **Cache partitioning.** Logically the result cache is keyed by
//! `(graph_id, QueryKey)`; physically each tenant owns a private
//! [`crate::ShardedCache`] partition, which makes the two multi-tenant
//! guarantees structural: identical queries against different graphs can
//! never collide (distinct partitions), and one graph's eviction churn
//! can never push another graph's hot entries out (distinct capacities).
//!
//! **Fair admission.** A single counting gate bounds races in flight
//! across *all* graphs. When slots are contended the gate grants the
//! freed slot to the waiting graph with the fewest races currently in
//! flight (max–min fairness), tie-broken by arrival order — so a tenant
//! flooding the engine with traffic cannot starve a light tenant, yet an
//! uncontended engine behaves exactly like per-graph FIFO.
//!
//! **The waiting room.** Waiters come in two kinds, sharing one queue
//! and one fairness policy: *thread* waiters (blocking submissions,
//! parked on a condvar until granted) and *parked* waiters (non-blocking
//! submissions over the limit, carrying a deferred launch instead of a
//! thread). When scheduling picks a parked waiter it takes the slot and
//! fires the launch right there — no wakeup round-trip — while a thread
//! waiter gets the classic grant-then-accept handshake. Only thread
//! waiters ever hold the pending grant, so cancelling a parked entry
//! (its ticket was dropped) can never orphan the grant chain.

use crate::engine::{
    AdmissionGate, Admit, ApplyError, DeferredLaunch, Engine, EngineConfig, EngineResponse,
    RouteError, SubmitError,
};
use crate::flight::StageTimer;
use crate::pool::WorkerPool;
use crate::stats::{EngineStats, LatencyHistogram, StageLatencies};
use crate::submit::{Priority, QueryRequest, QueryTicket, Submit};
use crate::telemetry::{SlowQuery, TraceRecord};
use psi_core::{Compaction, GraphUpdate, PsiConfig, PsiRunner, RaceBudget};
use psi_graph::Graph;
use psi_store::{read_snapshot, write_snapshot, SnapshotContents, StoreError, Wal, WalRecord};
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Identity of a registered graph, returned by [`MultiEngine::register`].
/// Cheap to copy; valid only for the registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(usize);

impl GraphId {
    /// The registration index (0 for the first registered graph).
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for GraphId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Why a graph could not be registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A graph with this name is already registered.
    DuplicateName(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "graph name {name:?} is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// Why a graph could not be saved to or loaded from disk.
#[derive(Debug)]
pub enum PersistError {
    /// The snapshot or WAL could not be read, written or decoded.
    Store(StoreError),
    /// Loading succeeded but registration did not (the snapshot's tenant
    /// name is already registered here).
    Registry(RegistryError),
    /// [`MultiEngine::save_graph`] was handed a [`GraphId`] this registry
    /// never issued.
    UnknownGraph,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Store(e) => write!(f, "persistence failed: {e}"),
            PersistError::Registry(e) => write!(f, "loaded snapshot cannot register: {e}"),
            PersistError::UnknownGraph => f.write_str("graph not registered with this engine"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Store(e) => Some(e),
            PersistError::Registry(e) => Some(e),
            PersistError::UnknownGraph => None,
        }
    }
}

impl From<StoreError> for PersistError {
    fn from(e: StoreError) -> Self {
        PersistError::Store(e)
    }
}

/// What [`MultiEngine::save_graph`] wrote.
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// The snapshot file (named `<tenant>.psisnap` under the save dir).
    pub snapshot_path: PathBuf,
    /// The learned-state WAL the tenant appends to from now on
    /// (`<tenant>.psiwal`, truncated by this save's compaction).
    pub wal_path: PathBuf,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Predictor samples folded into the snapshot.
    pub saved_samples: u64,
}

/// What [`MultiEngine::load_graph`] registered.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The id the loaded graph serves under.
    pub graph: GraphId,
    /// The tenant name recorded in the snapshot.
    pub name: String,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Whether the `TargetIndex` had to be rebuilt (index sections
    /// absent or written under a different layout version) instead of
    /// loaded from its flat sections.
    pub index_rebuilt: bool,
    /// Predictor samples restored: snapshot samples plus WAL-replayed
    /// wins.
    pub replayed_samples: u64,
    /// WAL records replayed on top of the snapshot's learned state.
    pub replayed_records: u64,
    /// Graph-mutation batches replayed on top of the snapshot's graph
    /// (updates applied after the last save, recovered from the WAL).
    pub replayed_updates: u64,
    /// Wall-clock cost of the restore + WAL replay, microseconds.
    pub wal_replay_us: u64,
}

/// Tuning knobs for a [`MultiEngine`].
#[derive(Debug, Clone)]
pub struct MultiEngineConfig {
    /// Worker threads in the one pool shared by every registered graph
    /// (default: available parallelism).
    pub workers: usize,
    /// Races in flight across **all** graphs; further submissions block
    /// in the fair gate (or, on the non-blocking path, park in the
    /// waiting room). Default: `workers`.
    pub max_concurrent_races: usize,
    /// Per-tenant template: cache shards/capacity, predictor knobs and
    /// default budget for each registered graph. `tenant.workers` and
    /// `tenant.max_concurrent_races` are ignored — capacity lives in the
    /// shared pool and gate. Override per graph with
    /// [`MultiEngine::register_with_config`].
    pub tenant: EngineConfig,
}

impl Default for MultiEngineConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Self { workers, max_concurrent_races: workers, tenant: EngineConfig::default() }
    }
}

/// What a queued admission is waiting *as*: a blocked thread (condvar
/// handshake) or a parked non-blocking submission (deferred launch fired
/// by the scheduler itself).
enum Waiter {
    /// A blocking submission: a thread sleeps on the gate's condvar and
    /// must wake to `accept` its grant.
    Thread,
    /// A non-blocking submission over the limit: nobody is blocked; the
    /// scheduler launches the race directly when the slot frees. Boxed:
    /// a prepared launch is ~300 bytes and the common `Thread` variant
    /// carries nothing.
    Parked { since: Instant, launch: Box<DeferredLaunch> },
}

impl Waiter {
    fn is_parked(&self) -> bool {
        matches!(self, Waiter::Parked { .. })
    }
}

/// One queued admission: sort key `(rank, ticket)` plus its waiter kind.
struct WaitEntry {
    rank: u8,
    ticket: u64,
    waiter: Waiter,
}

/// The scheduling core of the fair gate. Pure state machine (no blocking)
/// so the fairness policy is unit-testable without threads.
struct FairCore {
    in_flight_total: usize,
    /// Races in flight per graph slot.
    in_flight: Vec<usize>,
    /// Waiting entries per graph slot, sorted by `(priority rank,
    /// ticket)` — the front entry is the graph's next candidate.
    /// Priority reorders waiters *within* a graph; across graphs,
    /// max–min fairness stays primary. Thread and parked waiters share
    /// one queue so neither kind can starve the other.
    waiters: Vec<Vec<WaitEntry>>,
    next_ticket: u64,
    /// The one ticket currently cleared to take a slot. Grants chain:
    /// the grantee accepts, then scheduling runs again. **Invariant:**
    /// only `Waiter::Thread` entries are ever granted — parked entries
    /// are launched by `schedule` directly, so cancelling one can never
    /// leave a dangling grant.
    granted: Option<u64>,
}

impl FairCore {
    fn new() -> Self {
        Self {
            in_flight_total: 0,
            in_flight: Vec::new(),
            waiters: Vec::new(),
            next_ticket: 0,
            granted: None,
        }
    }

    fn add_graph(&mut self) -> usize {
        self.in_flight.push(0);
        self.waiters.push(Vec::new());
        self.in_flight.len() - 1
    }

    fn take(&mut self, graph: usize) {
        self.in_flight_total += 1;
        self.in_flight[graph] += 1;
    }

    fn insert_entry(&mut self, graph: usize, rank: u8, waiter: Waiter) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let queue = &mut self.waiters[graph];
        let at = queue.partition_point(|e| (e.rank, e.ticket) <= (rank, ticket));
        queue.insert(at, WaitEntry { rank, ticket, waiter });
        ticket
    }

    /// Queues a blocking (thread) waiter.
    fn enqueue(&mut self, graph: usize, rank: u8) -> u64 {
        self.insert_entry(graph, rank, Waiter::Thread)
    }

    /// Parks a non-blocking submission. Returns its ticket and its
    /// 1-based position among `graph`'s parked entries (the reported
    /// waiting-room depth).
    fn enqueue_parked(&mut self, graph: usize, rank: u8, launch: DeferredLaunch) -> (u64, usize) {
        let waiter = Waiter::Parked { since: Instant::now(), launch: Box::new(launch) };
        let ticket = self.insert_entry(graph, rank, waiter);
        (ticket, self.parked(graph))
    }

    /// Parked entries queued for `graph` (the waiting-room occupancy the
    /// per-graph bound is checked against).
    fn parked(&self, graph: usize) -> usize {
        self.waiters[graph].iter().filter(|e| e.waiter.is_parked()).count()
    }

    /// Parked entries across every graph.
    fn total_parked(&self) -> usize {
        self.waiters.iter().flatten().filter(|e| e.waiter.is_parked()).count()
    }

    /// Removes a parked entry by ticket (its [`crate::QueryTicket`] was
    /// cancelled or dropped). Returns the launch so the caller can drop
    /// it *outside* the lock — abandoning fulfills the completion slot,
    /// which may run arbitrary completion-queue callbacks. Removal frees
    /// no capacity, so no reschedule is needed.
    fn cancel_parked(&mut self, graph: usize, ticket: u64) -> Option<DeferredLaunch> {
        debug_assert_ne!(self.granted, Some(ticket), "parked entries are never granted");
        let at =
            self.waiters[graph].iter().position(|e| e.ticket == ticket && e.waiter.is_parked())?;
        match self.waiters[graph].remove(at).waiter {
            Waiter::Parked { launch, .. } => Some(*launch),
            Waiter::Thread => unreachable!("position matched a parked entry"),
        }
    }

    /// Whether a submission may bypass the queue entirely: capacity free,
    /// nobody waiting, no grant pending.
    fn can_fast_path(&self, max: usize) -> bool {
        self.granted.is_none()
            && self.in_flight_total < max
            && self.waiters.iter().all(|q| q.is_empty())
    }

    /// Dispenses freed capacity: among graphs with waiters, the one with
    /// the fewest races in flight wins (max–min fairness); within the
    /// chosen load level, higher priority wins; ties go to the oldest
    /// ticket. A winning *thread* waiter becomes the pending grant (it
    /// must wake and `accept`); a winning *parked* waiter takes its slot
    /// right here and its launch is returned, paired with how long it
    /// waited — the caller fires launches **outside** the lock. The loop
    /// keeps dispensing until capacity runs out, the queues drain, or a
    /// thread grant (which must round-trip through its waiter) blocks
    /// further progress.
    fn schedule(&mut self, max: usize) -> Vec<(DeferredLaunch, Duration)> {
        let mut launches = Vec::new();
        while self.granted.is_none() && self.in_flight_total < max {
            let Some(graph) = self
                .waiters
                .iter()
                .enumerate()
                .filter_map(|(g, q)| q.first().map(|e| ((self.in_flight[g], e.rank, e.ticket), g)))
                .min_by_key(|&(key, _)| key)
                .map(|(_, g)| g)
            else {
                break;
            };
            match self.waiters[graph][0].waiter {
                Waiter::Thread => self.granted = Some(self.waiters[graph][0].ticket),
                Waiter::Parked { .. } => match self.waiters[graph].remove(0).waiter {
                    Waiter::Parked { since, launch } => {
                        self.take(graph);
                        launches.push((*launch, since.elapsed()));
                    }
                    Waiter::Thread => unreachable!("match guarded on Parked"),
                },
            }
        }
        launches
    }

    /// The grantee accepts its slot. The granted ticket is removed *by
    /// value*, not by position: a higher-priority waiter may have
    /// enqueued ahead of it between the grant and this accept, and a
    /// grant, once issued, is honoured (never revoked or re-routed).
    fn accept(&mut self, graph: usize, ticket: u64, max: usize) -> Vec<(DeferredLaunch, Duration)> {
        debug_assert_eq!(self.granted, Some(ticket));
        self.granted = None;
        let at = self.waiters[graph]
            .iter()
            .position(|e| e.ticket == ticket)
            .expect("granted ticket must still be queued");
        self.waiters[graph].remove(at);
        self.take(graph);
        self.schedule(max)
    }

    fn release(&mut self, graph: usize, max: usize) -> Vec<(DeferredLaunch, Duration)> {
        self.in_flight_total -= 1;
        self.in_flight[graph] -= 1;
        self.schedule(max)
    }
}

/// The shared cross-graph admission gate (see module docs).
struct FairAdmission {
    core: Mutex<FairCore>,
    changed: Condvar,
    max: usize,
}

impl FairAdmission {
    fn new(max: usize) -> Self {
        Self { core: Mutex::new(FairCore::new()), changed: Condvar::new(), max: max.max(1) }
    }

    fn add_graph(&self) -> usize {
        self.core.lock().expect("fair admission lock").add_graph()
    }

    /// Fires the launches a scheduling pass dispensed. Must run with the
    /// core lock **released**: each launch submits to the worker pool,
    /// and a cache-coalesced or instantly-failing race could re-enter
    /// this gate (release → schedule) on the same call stack.
    fn run_launches(launches: Vec<(DeferredLaunch, Duration)>) {
        for (launch, waited) in launches {
            launch.launch(Some(waited));
        }
    }

    fn acquire(&self, graph: usize, priority: Priority) {
        let launches;
        {
            let mut core = self.core.lock().expect("fair admission lock");
            if core.can_fast_path(self.max) {
                core.take(graph);
                return;
            }
            let ticket = core.enqueue(graph, priority.rank());
            // Defensive pass; enqueueing frees no capacity, so this
            // never grants or launches in any reachable state.
            let pre = core.schedule(self.max);
            debug_assert!(pre.is_empty(), "enqueue cannot create capacity");
            loop {
                if core.granted == Some(ticket) {
                    launches = core.accept(graph, ticket, self.max);
                    break;
                }
                core = self.changed.wait(core).expect("fair admission lock");
            }
        }
        Self::run_launches(launches);
        // A chained grant (or freed capacity) may concern others.
        self.changed.notify_all();
    }

    #[cfg(test)]
    fn try_acquire(&self, graph: usize) -> bool {
        let mut core = self.core.lock().expect("fair admission lock");
        if core.can_fast_path(self.max) {
            core.take(graph);
            true
        } else {
            false
        }
    }

    /// Non-blocking admission with a waiting room of `room` parked
    /// entries per graph (see [`AdmissionGate::admit`]).
    fn admit(
        &self,
        graph: usize,
        priority: Priority,
        launch: DeferredLaunch,
        room: usize,
    ) -> Admit {
        let verdict;
        let launches;
        {
            let mut core = self.core.lock().expect("fair admission lock");
            if core.can_fast_path(self.max) {
                core.take(graph);
                return Admit::Ready(launch);
            }
            if room == 0 || core.parked(graph) >= room {
                return Admit::Full(launch);
            }
            let (ticket, depth) = core.enqueue_parked(graph, priority.rank(), launch);
            verdict = Admit::Parked { ticket, depth };
            // Defensive pass, mirroring `acquire` (parking frees no
            // capacity either).
            launches = core.schedule(self.max);
            debug_assert!(launches.is_empty(), "parking cannot create capacity");
        }
        Self::run_launches(launches);
        verdict
    }

    /// Removes a parked entry (its ticket was cancelled or dropped).
    fn cancel_parked(&self, graph: usize, ticket: u64) -> bool {
        let launch = {
            let mut core = self.core.lock().expect("fair admission lock");
            core.cancel_parked(graph, ticket)
        };
        // Dropping the launch abandons it — the completion slot is
        // fulfilled inconclusive — and that must happen outside the
        // lock (completion queues run arbitrary waker callbacks).
        launch.is_some()
    }

    fn total_parked(&self) -> usize {
        self.core.lock().expect("fair admission lock").total_parked()
    }

    fn release(&self, graph: usize) {
        let launches = {
            let mut core = self.core.lock().expect("fair admission lock");
            core.release(graph, self.max)
        };
        Self::run_launches(launches);
        self.changed.notify_all();
    }
}

/// Binds the shared fair gate to one tenant so the tenant's [`Engine`]
/// can use it through the ordinary [`AdmissionGate`] interface.
struct TenantGate {
    shared: Arc<FairAdmission>,
    graph: usize,
}

impl AdmissionGate for TenantGate {
    fn acquire(&self, priority: Priority) {
        self.shared.acquire(self.graph, priority);
    }

    #[cfg(test)]
    fn try_acquire(&self) -> bool {
        self.shared.try_acquire(self.graph)
    }

    fn admit(&self, priority: Priority, launch: DeferredLaunch, room: usize) -> Admit {
        self.shared.admit(self.graph, priority, launch, room)
    }

    fn cancel_parked(&self, ticket: u64) -> bool {
        self.shared.cancel_parked(self.graph, ticket)
    }

    fn waiting(&self) -> usize {
        self.shared.total_parked()
    }

    fn release(&self) {
        self.shared.release(self.graph);
    }
}

/// A standalone [`Engine`]'s admission gate: the fair gate with exactly
/// one registered slot. Max–min fairness over one graph degenerates to
/// priority-then-FIFO, so the one grant-chaining state machine serves
/// both engines (and is fixed and tested in one place).
pub(crate) fn standalone_gate(max_concurrent: usize) -> Arc<dyn AdmissionGate> {
    let shared = Arc::new(FairAdmission::new(max_concurrent));
    let graph = shared.add_graph();
    Arc::new(TenantGate { shared, graph })
}

/// One registered graph: its name and its serving engine (runner,
/// predictor, cache partition, stats) wired to the shared pool and gate.
pub(crate) struct Tenant {
    name: String,
    engine: Engine,
}

struct RegistryInner {
    tenants: Vec<Arc<Tenant>>,
    by_name: HashMap<String, GraphId>,
}

/// The name → graph directory of a [`MultiEngine`].
///
/// Registration goes through [`MultiEngine::register`] (the engine must
/// wire each tenant to its shared pool); the registry exposes lookup and
/// enumeration.
pub struct GraphRegistry {
    inner: RwLock<RegistryInner>,
}

impl GraphRegistry {
    fn new() -> Self {
        Self { inner: RwLock::new(RegistryInner { tenants: Vec::new(), by_name: HashMap::new() }) }
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.inner.read().expect("registry lock").tenants.len()
    }

    /// Whether no graph is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resolves a graph name to its id.
    pub fn graph_id(&self, name: &str) -> Option<GraphId> {
        self.inner.read().expect("registry lock").by_name.get(name).copied()
    }

    /// The name a graph was registered under.
    pub fn name(&self, graph: GraphId) -> Option<String> {
        self.tenant(graph).map(|t| t.name.clone())
    }

    /// All registered graphs in registration order.
    pub fn graphs(&self) -> Vec<(GraphId, String)> {
        let inner = self.inner.read().expect("registry lock");
        inner.tenants.iter().enumerate().map(|(i, t)| (GraphId(i), t.name.clone())).collect()
    }

    fn tenant(&self, graph: GraphId) -> Option<Arc<Tenant>> {
        self.inner.read().expect("registry lock").tenants.get(graph.0).cloned()
    }

    fn snapshot(&self) -> Vec<Arc<Tenant>> {
        self.inner.read().expect("registry lock").tenants.clone()
    }
}

/// A multi-graph serving engine: named stored graphs registered at
/// runtime, one shared worker pool, fair cross-graph admission, and
/// per-graph plus aggregate statistics. All methods take `&self`; share
/// it freely across client threads.
///
/// ```
/// use psi_core::{PsiRunner, RaceBudget};
/// use psi_engine::{EngineConfig, MultiEngine, MultiEngineConfig};
/// use psi_graph::graph::graph_from_parts;
///
/// let multi = MultiEngine::new(MultiEngineConfig {
///     workers: 2,
///     max_concurrent_races: 2,
///     tenant: EngineConfig { default_budget: RaceBudget::decision(), ..EngineConfig::default() },
/// });
/// let square = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
/// let pair = graph_from_parts(&[7, 7], &[(0, 1)]);
/// let a = multi.register("square", PsiRunner::nfv_default(&square)).unwrap();
/// let b = multi.register("pair", PsiRunner::nfv_default(&pair)).unwrap();
///
/// let query = graph_from_parts(&[0, 1], &[(0, 1)]);
/// assert!(multi.submit(a, &query).unwrap().found());
/// assert!(!multi.submit(b, &query).unwrap().found()); // same query, other graph
/// assert_eq!(multi.stats().queries, 2);
/// ```
pub struct MultiEngine {
    pool: Arc<WorkerPool>,
    admission: Arc<FairAdmission>,
    /// One stage-deadline timer shared by every tenant's staged races.
    timer: Arc<StageTimer>,
    registry: GraphRegistry,
    config: MultiEngineConfig,
    started: Instant,
}

impl MultiEngine {
    /// Builds an empty multi-graph engine; register graphs before
    /// submitting.
    pub fn new(config: MultiEngineConfig) -> Self {
        Self {
            pool: Arc::new(WorkerPool::new(config.workers)),
            admission: Arc::new(FairAdmission::new(config.max_concurrent_races)),
            timer: Arc::new(StageTimer::new()),
            registry: GraphRegistry::new(),
            config,
            started: Instant::now(),
        }
    }

    /// Multi-graph engine with default tuning.
    pub fn with_defaults() -> Self {
        Self::new(MultiEngineConfig::default())
    }

    /// Registers `runner`'s stored graph under `name` using the tenant
    /// template config. Returns the graph's id for routing.
    pub fn register(
        &self,
        name: impl Into<String>,
        runner: PsiRunner,
    ) -> Result<GraphId, RegistryError> {
        self.register_shared(name, Arc::new(runner))
    }

    /// Registers an already-shared runner handle (no copy; the caller may
    /// keep using the same [`PsiRunner`] for offline analysis).
    pub fn register_shared(
        &self,
        name: impl Into<String>,
        runner: Arc<PsiRunner>,
    ) -> Result<GraphId, RegistryError> {
        self.register_with_config(name, runner, self.config.tenant.clone())
    }

    /// Registers a graph with a per-tenant [`EngineConfig`] override
    /// (cache capacity, predictor knobs, default budget). The config's
    /// `workers` / `max_concurrent_races` are ignored — capacity lives in
    /// the shared pool and fair gate.
    pub fn register_with_config(
        &self,
        name: impl Into<String>,
        runner: Arc<PsiRunner>,
        tenant_config: EngineConfig,
    ) -> Result<GraphId, RegistryError> {
        let name = name.into();
        let mut inner = self.registry.inner.write().expect("registry lock");
        if inner.by_name.contains_key(&name) {
            return Err(RegistryError::DuplicateName(name));
        }
        let slot = self.admission.add_graph();
        debug_assert_eq!(slot, inner.tenants.len(), "gate slots track registration order");
        let gate = Arc::new(TenantGate { shared: Arc::clone(&self.admission), graph: slot });
        let engine = Engine::with_shared(
            runner,
            tenant_config,
            Arc::clone(&self.pool),
            gate,
            Some(Arc::clone(&self.timer)),
            // All tenants stamp trace timestamps against the registry's
            // clock, so a merged drain is ordered across graphs.
            self.started,
        );
        let id = GraphId(slot);
        inner.tenants.push(Arc::new(Tenant { name: name.clone(), engine }));
        inner.by_name.insert(name, id);
        Ok(id)
    }

    /// Snapshots `graph` to `dir` and switches the tenant to logged
    /// serving: the stored graph, its `TargetIndex` and the predictor's
    /// full learned state are written to `<name>.psisnap` (atomic
    /// temp-file + rename), the sibling `<name>.psiwal` is truncated
    /// (every record it held is now folded into the snapshot), and from
    /// here on each race finalize appends its predictor mutations to the
    /// WAL. Calling it again later compacts: same rewrite, same cut.
    ///
    /// The WAL slot is held across the snapshot write so no concurrent
    /// finalize (or [`MultiEngine::apply_update`]) can append a record
    /// that the compaction cut would then silently discard — those
    /// writers block briefly instead.
    ///
    /// A tenant with a live delta overlay is compacted first (the
    /// overlay folds into a fresh base graph and rebuilt index as a new
    /// epoch), so the snapshot always captures a flat graph and the WAL
    /// cut never loses an already-applied mutation.
    pub fn save_graph(&self, graph: GraphId, dir: &Path) -> Result<SaveReport, PersistError> {
        let tenant = self.registry.tenant(graph).ok_or(PersistError::UnknownGraph)?;
        std::fs::create_dir_all(dir).map_err(StoreError::Io)?;
        let snapshot_path = dir.join(format!("{}.psisnap", tenant.name));
        let wal_path = snapshot_path.with_extension("psiwal");
        let core = tenant.engine.serve_core();
        let mut wal_guard = core.learned_wal.lock().expect("wal lock");
        // Fold any pending overlay under the WAL lock: apply_update also
        // appends under this lock, so no mutation can land between the
        // fold and the cut below.
        core.compact_with_stats();
        let learned = core.learned_state();
        let saved_samples = learned.samples.len() as u64;
        let contents = SnapshotContents {
            name: tenant.name.clone(),
            variants: tenant.engine.runner().config().variants.clone(),
            learned,
        };
        let runner = tenant.engine.runner();
        let live_graph = runner.live_graph();
        let live_index = runner.live_index();
        let snapshot_bytes =
            write_snapshot(&snapshot_path, &live_graph, live_index.as_deref(), &contents)?;
        match wal_guard.as_mut() {
            Some(wal) => wal.reset()?,
            None => {
                // First save: any WAL left on disk predates this
                // snapshot's learned state, so open-and-cut, then attach.
                let (mut wal, _stale) = Wal::open(&wal_path)?;
                wal.reset()?;
                *wal_guard = Some(wal);
            }
        }
        Ok(SaveReport { snapshot_path, wal_path, snapshot_bytes, saved_samples })
    }

    /// Registers a tenant from a snapshot written by
    /// [`MultiEngine::save_graph`], under the tenant template config: the
    /// graph and `TargetIndex` load as flat sections (no rebuild unless
    /// the index layout version moved), the predictor restores the
    /// snapshot's learned state, the sibling WAL's records replay on top
    /// (re-executing the training they logged), and the WAL stays
    /// attached so serving keeps appending. The first query after a cold
    /// open races with a fully trained predictor.
    pub fn load_graph(&self, snapshot_path: &Path) -> Result<LoadReport, PersistError> {
        self.load_graph_with_config(snapshot_path, self.config.tenant.clone())
    }

    /// [`MultiEngine::load_graph`] with a per-tenant [`EngineConfig`]
    /// override (same contract as
    /// [`MultiEngine::register_with_config`]).
    pub fn load_graph_with_config(
        &self,
        snapshot_path: &Path,
        tenant_config: EngineConfig,
    ) -> Result<LoadReport, PersistError> {
        let loaded = read_snapshot(snapshot_path)?;
        let name = loaded.contents.name.clone();
        let runner = PsiRunner::with_prebuilt_index(
            Arc::clone(&loaded.graph),
            PsiConfig::new(loaded.contents.variants.clone()),
            Arc::clone(&loaded.index),
        );
        let id = self
            .register_with_config(name.clone(), Arc::new(runner), tenant_config)
            .map_err(PersistError::Registry)?;
        let tenant = self.registry.tenant(id).expect("tenant was just registered");
        let core = tenant.engine.serve_core();
        let replay_started = Instant::now();
        let (wal, records) = Wal::open(&snapshot_path.with_extension("psiwal"))?;
        let learned = &loaded.contents.learned;
        let mut replayed_samples = learned.samples.len() as u64;
        {
            let mut predictor = core.predictor.lock().expect("predictor lock");
            predictor.restore(
                learned.samples.iter().map(|&(f, w)| (f, w as usize)).collect(),
                learned.tallies.clone(),
                learned.observed as usize,
            );
            for record in &records {
                match record {
                    WalRecord::Sample { features, winner } => {
                        predictor.observe(*features, *winner as usize);
                        replayed_samples += 1;
                    }
                    WalRecord::Loss { idx } => predictor.record_loss(*idx as usize),
                    WalRecord::Timeout { idx } => predictor.record_timeout(*idx as usize),
                    // Graph mutations replay below, against the runner.
                    WalRecord::Update { .. } => {}
                }
            }
        }
        // Replay graph mutations logged after the snapshot's compaction
        // cut: each record is one applied batch, re-applied in WAL order
        // so the overlay converges to the pre-crash live graph.
        let mut replayed_updates = 0u64;
        {
            let runner = tenant.engine.runner();
            for record in &records {
                if let WalRecord::Update { bytes } = record {
                    let update = GraphUpdate::decode(bytes)
                        .map_err(|e| StoreError::Malformed(format!("WAL update record: {e}")))?;
                    runner
                        .apply_update(&update)
                        .map_err(|e| StoreError::Malformed(format!("WAL update replay: {e}")))?;
                    replayed_updates += 1;
                }
            }
        }
        *core.learned_wal.lock().expect("wal lock") = Some(wal);
        core.stats.wal_replayed.fetch_add(records.len() as u64, Ordering::Relaxed);
        Ok(LoadReport {
            graph: id,
            name,
            snapshot_bytes: loaded.file_bytes,
            index_rebuilt: loaded.index_rebuilt,
            replayed_samples,
            replayed_records: records.len() as u64,
            replayed_updates,
            wal_replay_us: replay_started.elapsed().as_micros().min(u64::MAX as u128) as u64,
        })
    }

    /// The name → graph directory.
    pub fn registry(&self) -> &GraphRegistry {
        &self.registry
    }

    /// Resolves a graph name to its id (shorthand for
    /// `registry().graph_id(name)`).
    pub fn graph_id(&self, name: &str) -> Option<GraphId> {
        self.registry.graph_id(name)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiEngineConfig {
        &self.config
    }

    /// Worker threads in the shared pool.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The registered runner for `graph` (stored graph, variants,
    /// prepared matchers).
    pub fn runner(&self, graph: GraphId) -> Option<Arc<PsiRunner>> {
        self.registry.tenant(graph).map(|t| Arc::clone(t.engine.runner()))
    }

    /// Applies a batch of graph mutations to `graph`'s live view and
    /// returns the epoch the batch landed in. The write takes one
    /// admission slot through the same fair gate as queries — a firehose
    /// of updates to one tenant is arbitrated against every other
    /// tenant's reads, and can no more starve them than a query flood
    /// could. The batch is validated atomically (all ops or none),
    /// logged to the tenant's WAL when one is attached, and visible to
    /// every subsequently-admitted query; races already in flight stay
    /// pinned to the epoch they started under.
    pub fn apply_update(&self, graph: GraphId, update: &GraphUpdate) -> Result<u64, ApplyError> {
        let tenant = self.registry.tenant(graph).ok_or(RouteError::UnknownGraph)?;
        tenant.engine.apply_update(update).map_err(ApplyError::Update)
    }

    /// Folds `graph`'s pending delta overlay into a fresh base graph and
    /// rebuilt index, installed as a new epoch (see
    /// [`Engine::compact_now`]). `Ok(None)` when nothing was pending or
    /// a compaction is already running.
    pub fn compact(&self, graph: GraphId) -> Result<Option<Compaction>, RouteError> {
        let tenant = self.registry.tenant(graph).ok_or(RouteError::UnknownGraph)?;
        Ok(tenant.engine.compact_now())
    }

    /// The current epoch of one registered graph (0 until its first
    /// compaction).
    pub fn epoch(&self, graph: GraphId) -> Option<u64> {
        self.registry.tenant(graph).map(|t| t.engine.epoch())
    }

    /// Resolves a request's target tenant. This is the *only* routing
    /// site: every submission — blocking wrapper or ticket — goes
    /// through it, and budget defaulting then happens in the tenant
    /// engine's single admission path.
    fn route(&self, request: &QueryRequest) -> Result<Arc<Tenant>, RouteError> {
        let graph = request.graph.ok_or(RouteError::NoGraph)?;
        self.registry.tenant(graph).ok_or(RouteError::UnknownGraph)
    }

    /// Serves `query` against `graph` under the tenant's default budget,
    /// blocking while the shared gate is at capacity. Thin wrapper:
    /// `submit_queued(request)?.wait()`.
    pub fn submit(&self, graph: GraphId, query: &Graph) -> Result<EngineResponse, SubmitError> {
        self.submit_request(QueryRequest::new(query.clone()).graph(graph))
    }

    /// Serves `query` against `graph` under an explicit budget, blocking
    /// for admission. Thin wrapper over the ticket path.
    pub fn submit_with_budget(
        &self,
        graph: GraphId,
        query: &Graph,
        budget: RaceBudget,
    ) -> Result<EngineResponse, SubmitError> {
        self.submit_request(QueryRequest::new(query.clone()).graph(graph).budget(budget))
    }

    /// Non-blocking submit: parks in the waiting room when the shared
    /// gate is at capacity, refuses with
    /// [`crate::AdmissionError::QueueFull`] when the room overflows
    /// (cache hits are always served). Thin wrapper:
    /// `submit_nonblocking(request)?.wait()`.
    pub fn try_submit(&self, graph: GraphId, query: &Graph) -> Result<EngineResponse, SubmitError> {
        Ok(self.submit_nonblocking(QueryRequest::new(query.clone()).graph(graph))?.wait())
    }

    /// Non-blocking submit with an explicit budget. Thin wrapper over
    /// the ticket path.
    pub fn try_submit_with_budget(
        &self,
        graph: GraphId,
        query: &Graph,
        budget: RaceBudget,
    ) -> Result<EngineResponse, SubmitError> {
        Ok(self
            .submit_nonblocking(QueryRequest::new(query.clone()).graph(graph).budget(budget))?
            .wait())
    }

    /// Serving statistics of one registered graph.
    pub fn graph_stats(&self, graph: GraphId) -> Option<EngineStats> {
        self.registry.tenant(graph).map(|t| t.engine.stats())
    }

    /// Per-graph learned entrant statistics: lifetime win/loss/timeout
    /// tallies of each racing variant for `graph`, indexed like its
    /// runner's variant list. This is the evidence top-K racing ranks by.
    pub fn entrant_tallies(
        &self,
        graph: GraphId,
    ) -> Option<Vec<psi_core::predictor::EntrantTally>> {
        self.registry.tenant(graph).map(|t| t.engine.entrant_tallies())
    }

    /// Aggregate serving statistics across every registered graph.
    /// Counters are summed; percentiles are computed over the *merged*
    /// latency histograms (bucket-wise addition — exactly the pooled
    /// distribution, not averaged per-graph percentiles); throughput is
    /// measured against this engine's uptime.
    pub fn stats(&self) -> EngineStats {
        let tenants = self.registry.snapshot();
        let uptime = self.started.elapsed();
        let mut agg = EngineStats {
            uptime,
            queries: 0,
            cache_hits: 0,
            cache_misses: 0,
            hit_rate: 0.0,
            races: 0,
            fast_paths: 0,
            fast_path_fallbacks: 0,
            cancelled_variants: 0,
            busy_rejections: 0,
            queue_full_rejections: 0,
            parked: 0,
            waiting_room_depth: self.admission.total_parked() as u64,
            park_wait_p50: std::time::Duration::ZERO,
            park_wait_p99: std::time::Duration::ZERO,
            inconclusive: 0,
            topk_races: 0,
            pruned_entrants: 0,
            escalations: 0,
            escalation_rate: 0.0,
            sliced_races: 0,
            slices_spawned: 0,
            slice_steals: 0,
            index_build_us: 0,
            edge_probes_bitset: 0,
            edge_probes_binary: 0,
            wal_appended: 0,
            wal_replayed: 0,
            updates_applied: 0,
            compactions: 0,
            compaction_us: 0,
            cache_invalidations: 0,
            epoch: 0,
            throughput_qps: 0.0,
            latency_p50: std::time::Duration::ZERO,
            latency_p99: std::time::Duration::ZERO,
            stages: StageLatencies::default(),
        };
        let latency = LatencyHistogram::new();
        let queue_wait = LatencyHistogram::new();
        let park_wait = LatencyHistogram::new();
        let race_stage = LatencyHistogram::new();
        let finalize_stage = LatencyHistogram::new();
        for tenant in &tenants {
            // Read the raw counters, not EngineStats snapshots: a
            // snapshot would compute per-tenant percentiles this
            // aggregate immediately discards.
            let c = tenant.engine.stats_collector();
            agg.queries += c.queries.load(Ordering::Relaxed);
            agg.cache_hits += c.cache_hits.load(Ordering::Relaxed);
            agg.cache_misses += c.cache_misses.load(Ordering::Relaxed);
            agg.races += c.races.load(Ordering::Relaxed);
            agg.fast_paths += c.fast_paths.load(Ordering::Relaxed);
            agg.fast_path_fallbacks += c.fast_path_fallbacks.load(Ordering::Relaxed);
            agg.cancelled_variants += c.cancelled_variants.load(Ordering::Relaxed);
            agg.busy_rejections += c.busy_rejections.load(Ordering::Relaxed);
            agg.queue_full_rejections += c.queue_full_rejections.load(Ordering::Relaxed);
            agg.parked += c.parked.load(Ordering::Relaxed);
            agg.inconclusive += c.inconclusive.load(Ordering::Relaxed);
            agg.topk_races += c.topk_races.load(Ordering::Relaxed);
            agg.pruned_entrants += c.pruned_entrants.load(Ordering::Relaxed);
            agg.escalations += c.escalations.load(Ordering::Relaxed);
            agg.sliced_races += c.sliced_races.load(Ordering::Relaxed);
            agg.slices_spawned += c.slices_spawned.load(Ordering::Relaxed);
            agg.slice_steals += c.slice_steals.load(Ordering::Relaxed);
            agg.edge_probes_bitset += c.edge_probes_bitset.load(Ordering::Relaxed);
            agg.edge_probes_binary += c.edge_probes_binary.load(Ordering::Relaxed);
            agg.wal_appended += c.wal_appended.load(Ordering::Relaxed);
            agg.wal_replayed += c.wal_replayed.load(Ordering::Relaxed);
            agg.updates_applied += c.updates_applied.load(Ordering::Relaxed);
            agg.compactions += c.compactions.load(Ordering::Relaxed);
            agg.compaction_us += c.compaction_time_us.load(Ordering::Relaxed);
            agg.cache_invalidations += c.cache_invalidations.load(Ordering::Relaxed);
            // Epochs are per-graph gauges; the aggregate reports the
            // furthest-advanced tenant.
            agg.epoch = agg.epoch.max(tenant.engine.runner().epoch());
            agg.index_build_us +=
                tenant.engine.runner().target_index().map_or(0, |ix| ix.build_micros());
            latency.merge_from(&c.latency);
            queue_wait.merge_from(&c.queue_wait);
            park_wait.merge_from(&c.park_wait);
            race_stage.merge_from(&c.race_stage);
            finalize_stage.merge_from(&c.finalize_stage);
        }
        agg.hit_rate = EngineStats::rate(agg.cache_hits, agg.cache_hits + agg.cache_misses);
        agg.escalation_rate = EngineStats::rate(agg.escalations, agg.topk_races);
        agg.throughput_qps = if uptime.as_secs_f64() > 0.0 {
            agg.queries as f64 / uptime.as_secs_f64()
        } else {
            0.0
        };
        agg.latency_p50 = latency.percentile_duration(0.50);
        agg.latency_p99 = latency.percentile_duration(0.99);
        agg.park_wait_p50 = park_wait.percentile_duration(0.50);
        agg.park_wait_p99 = park_wait.percentile_duration(0.99);
        agg.stages = StageLatencies {
            queue_p50: queue_wait.percentile_duration(0.50),
            queue_p99: queue_wait.percentile_duration(0.99),
            race_p50: race_stage.percentile_duration(0.50),
            race_p99: race_stage.percentile_duration(0.99),
            finalize_p50: finalize_stage.percentile_duration(0.50),
            finalize_p99: finalize_stage.percentile_duration(0.99),
        };
        agg
    }

    /// Drains buffered trace events from every registered graph, tagged
    /// with the emitting graph's id and merged into one timeline (ordered
    /// by timestamp — all tenants share this registry's epoch clock).
    /// Events read are consumed; call periodically to avoid ring drops.
    pub fn drain_trace(&self) -> Vec<(GraphId, TraceRecord)> {
        let tenants = self.registry.snapshot();
        let mut merged: Vec<(GraphId, TraceRecord)> = Vec::new();
        for (idx, tenant) in tenants.iter().enumerate() {
            let id = GraphId(idx);
            merged.extend(tenant.engine.drain_trace().into_iter().map(|r| (id, r)));
        }
        merged.sort_by_key(|(_, r)| (r.at_us, r.seq));
        merged
    }

    /// The worst-latency queries across every registered graph, tagged
    /// with their graph id, slowest first.
    pub fn slow_queries(&self) -> Vec<(GraphId, SlowQuery)> {
        let tenants = self.registry.snapshot();
        let mut all: Vec<(GraphId, SlowQuery)> = Vec::new();
        for (idx, tenant) in tenants.iter().enumerate() {
            let id = GraphId(idx);
            all.extend(tenant.engine.slow_queries().into_iter().map(|q| (id, q)));
        }
        all.sort_by_key(|(_, q)| std::cmp::Reverse(q.elapsed_us));
        all
    }

    /// A metrics exporter over every registered graph: per-graph and
    /// aggregate counters, histograms and slow-query logs, renderable as
    /// Prometheus text or JSON.
    pub fn exporter(&self) -> crate::export::MetricsExporter {
        let tenants = self.registry.snapshot();
        crate::export::MetricsExporter::from_graphs(
            tenants.iter().map(|t| (Some(t.name.clone()), &t.engine)).collect(),
        )
    }
}

impl Submit for MultiEngine {
    fn submit_nonblocking(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError> {
        self.route(&request)?.engine.submit_ticket(request, false)
    }

    fn submit_queued(&self, request: QueryRequest) -> Result<QueryTicket, SubmitError> {
        self.route(&request)?.engine.submit_ticket(request, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    // ---- FairCore policy (deterministic, no threads) ----

    #[test]
    fn fair_core_grants_light_graph_before_older_heavy_waiter() {
        let mut core = FairCore::new();
        let (g0, g1) = (core.add_graph(), core.add_graph());
        let max = 2;
        // g0 saturates both slots.
        core.take(g0);
        core.take(g0);
        // g0 queues another race *before* g1's first ever arrives.
        let t_heavy = core.enqueue(g0, Priority::Normal.rank());
        let t_light = core.enqueue(g1, Priority::Normal.rank());
        core.schedule(max);
        assert_eq!(core.granted, None, "no capacity, no grant");
        // A slot frees: the light graph (0 in flight) beats the older
        // ticket of the heavy graph (1 still in flight).
        core.release(g0, max);
        assert_eq!(core.granted, Some(t_light));
        core.accept(g1, t_light, max);
        // Next freed slot finally reaches the heavy graph's waiter.
        core.release(g0, max);
        assert_eq!(core.granted, Some(t_heavy));
        core.accept(g0, t_heavy, max);
        assert_eq!(core.in_flight, vec![1, 1]);
    }

    #[test]
    fn fair_core_ties_break_by_arrival_order() {
        let mut core = FairCore::new();
        let (g0, g1) = (core.add_graph(), core.add_graph());
        let max = 1;
        core.take(g0);
        let first = core.enqueue(g1, Priority::Normal.rank());
        let second = core.enqueue(g0, Priority::Normal.rank());
        // Slot frees; both graphs are at 0 in flight — FIFO decides.
        core.release(g0, max);
        assert_eq!(core.granted, Some(first));
        core.accept(g1, first, max);
        core.release(g1, max);
        assert_eq!(core.granted, Some(second));
    }

    #[test]
    fn fair_core_chains_grants_when_capacity_allows() {
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        let max = 2;
        core.take(g0);
        core.take(g0);
        let t1 = core.enqueue(g0, Priority::Normal.rank());
        let t2 = core.enqueue(g0, Priority::Normal.rank());
        core.release(g0, max);
        assert_eq!(core.granted, Some(t1));
        // Accepting t1 re-schedules, but capacity is full again.
        core.accept(g0, t1, max);
        assert_eq!(core.granted, None);
        // Freeing another slot chains straight to t2.
        core.release(g0, max);
        assert_eq!(core.granted, Some(t2));
    }

    #[test]
    fn fast_path_requires_empty_queue_and_capacity() {
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        assert!(core.can_fast_path(1));
        core.take(g0);
        assert!(!core.can_fast_path(1), "no capacity");
        core.enqueue(g0, Priority::Normal.rank());
        core.release(g0, 1);
        assert!(!core.can_fast_path(1), "grant pending for the waiter");
    }

    #[test]
    fn late_high_priority_arrival_cannot_displace_a_pending_grant() {
        // Regression: a High waiter that enqueues *between* a grant and
        // its accept sorts ahead of the granted ticket in the queue.
        // Accept must remove the granted ticket by value — removing the
        // queue head would evict the High waiter, re-grant a departed
        // ticket forever, and wedge the gate.
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        let max = 1;
        core.take(g0);
        let normal = core.enqueue(g0, Priority::Normal.rank());
        core.release(g0, max);
        assert_eq!(core.granted, Some(normal));
        // The grantee has not accepted yet; a High submission arrives
        // and jumps to the front of g0's queue.
        let high = core.enqueue(g0, Priority::High.rank());
        core.accept(g0, normal, max);
        assert_eq!(core.in_flight, vec![1], "the granted Normal waiter got the slot");
        // The High waiter is intact and next in line.
        core.release(g0, max);
        assert_eq!(core.granted, Some(high));
        core.accept(g0, high, max);
    }

    #[test]
    fn priority_reorders_within_a_graph_but_fairness_stays_primary() {
        let mut core = FairCore::new();
        let (g0, g1) = (core.add_graph(), core.add_graph());
        let max = 2;
        core.take(g0);
        core.take(g0);
        // Within g0: a later High waiter beats an earlier Low one.
        let g0_low = core.enqueue(g0, Priority::Low.rank());
        let g0_high = core.enqueue(g0, Priority::High.rank());
        // Across graphs: g1 (0 in flight vs g0's 1 after the release
        // below) beats g0's High waiter even at Low priority — max–min
        // fairness is primary.
        let g1_low = core.enqueue(g1, Priority::Low.rank());
        core.release(g0, max);
        assert_eq!(core.granted, Some(g1_low), "fairness before priority");
        core.accept(g1, g1_low, max);
        // Both graphs now hold 1 slot; the next freed slot goes to g0's
        // queue, reordered by priority.
        core.release(g1, max);
        assert_eq!(core.granted, Some(g0_high), "priority reorders g0's own queue");
        core.accept(g0, g0_high, max);
        core.release(g0, max);
        assert_eq!(core.granted, Some(g0_low));
    }

    // ---- Waiting-room policy (deterministic, no threads) ----

    #[test]
    fn parked_entries_launch_priority_then_fifo_as_slots_free() {
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        let max = 1;
        core.take(g0);
        let (low, _) = core.enqueue_parked(g0, Priority::Low.rank(), DeferredLaunch::disarmed());
        let (normal, _) =
            core.enqueue_parked(g0, Priority::Normal.rank(), DeferredLaunch::disarmed());
        let (high, depth) =
            core.enqueue_parked(g0, Priority::High.rank(), DeferredLaunch::disarmed());
        assert_eq!(depth, 3, "depth reports occupancy after parking");
        // Each freed slot launches exactly one parked entry, in
        // priority-then-FIFO order, without ever touching the grant.
        for expected in [high, normal, low] {
            let launched = core.release(g0, max);
            assert_eq!(launched.len(), 1);
            assert!(
                core.waiters[g0].iter().all(|e| e.ticket != expected),
                "ticket {expected} launches next"
            );
            assert_eq!(core.granted, None, "parked launches never hold the grant");
        }
        assert!(core.waiters[g0].is_empty());
        assert_eq!(core.in_flight_total, 1, "the last launch holds its slot");
    }

    #[test]
    fn thread_and_parked_waiters_share_one_queue() {
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        let max = 1;
        core.take(g0);
        let thread = core.enqueue(g0, Priority::Normal.rank());
        let (_parked, _) =
            core.enqueue_parked(g0, Priority::Normal.rank(), DeferredLaunch::disarmed());
        // The older thread waiter wins the freed slot; the parked entry
        // stays queued behind the pending grant.
        assert!(core.release(g0, max).is_empty());
        assert_eq!(core.granted, Some(thread));
        // Accepting chains the schedule, but capacity is taken again.
        assert!(core.accept(g0, thread, max).is_empty());
        // The next freed slot reaches the parked entry directly.
        assert_eq!(core.release(g0, max).len(), 1);
        assert_eq!(core.granted, None);
        assert_eq!(core.parked(g0), 0);
    }

    #[test]
    fn cancelling_a_parked_entry_frees_room_without_touching_the_grant() {
        let mut core = FairCore::new();
        let g0 = core.add_graph();
        let max = 1;
        core.take(g0);
        let (first, _) =
            core.enqueue_parked(g0, Priority::Normal.rank(), DeferredLaunch::disarmed());
        let (second, _) =
            core.enqueue_parked(g0, Priority::Normal.rank(), DeferredLaunch::disarmed());
        assert_eq!(core.parked(g0), 2);
        assert!(core.cancel_parked(g0, first).is_some());
        assert!(core.cancel_parked(g0, first).is_none(), "second cancel is a no-op");
        assert_eq!(core.parked(g0), 1);
        let launched = core.release(g0, max);
        assert_eq!(launched.len(), 1);
        assert!(core.waiters[g0].is_empty(), "the surviving entry ({second}) launched");
        assert_eq!(core.granted, None);
    }

    mod waiting_room_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Releasing slots one at a time drains parked entries in
            /// priority-then-FIFO order, whatever the arrival order.
            #[test]
            fn parked_admission_is_priority_then_fifo(
                ranks in proptest::collection::vec(0u8..3, 1..24),
            ) {
                let mut core = FairCore::new();
                let g0 = core.add_graph();
                let max = 1;
                core.take(g0);
                let mut expected: Vec<(u8, u64)> = Vec::new();
                for &rank in &ranks {
                    let (ticket, _) =
                        core.enqueue_parked(g0, rank, DeferredLaunch::disarmed());
                    expected.push((rank, ticket));
                }
                expected.sort();
                for &(_, ticket) in &expected {
                    let launched = core.release(g0, max);
                    prop_assert_eq!(launched.len(), 1);
                    prop_assert!(
                        core.waiters[g0].iter().all(|e| e.ticket != ticket),
                        "ticket {} launches next", ticket
                    );
                    prop_assert_eq!(core.granted, None);
                }
                prop_assert!(core.waiters[g0].is_empty());
            }

            /// Cancelling any subset of parked entries (their tickets
            /// were dropped) leaves the survivors draining normally and
            /// never wedges the grant chain: a blocking waiter enqueued
            /// afterwards is still granted exactly once, and the grant
            /// never names a parked ticket.
            #[test]
            fn cancelled_parked_entries_never_poison_the_grant_chain(
                ranks in proptest::collection::vec(0u8..3, 2..16),
                cancel_mask in proptest::collection::vec(any::<bool>(), 16),
            ) {
                let mut core = FairCore::new();
                let g0 = core.add_graph();
                let max = 1;
                core.take(g0);
                let mut entries = Vec::new();
                for &rank in &ranks {
                    let (ticket, _) =
                        core.enqueue_parked(g0, rank, DeferredLaunch::disarmed());
                    entries.push(ticket);
                }
                let mut survivors = entries.len();
                for (i, &ticket) in entries.iter().enumerate() {
                    if cancel_mask[i % cancel_mask.len()] {
                        prop_assert!(core.cancel_parked(g0, ticket).is_some());
                        survivors -= 1;
                    }
                }
                let thread = core.enqueue(g0, Priority::Normal.rank());
                let mut launched_total = 0;
                let mut thread_admitted = false;
                while !core.waiters[g0].is_empty() {
                    launched_total += core.release(g0, max).len();
                    if core.granted == Some(thread) {
                        prop_assert!(!thread_admitted, "granted at most once");
                        thread_admitted = true;
                        launched_total += core.accept(g0, thread, max).len();
                    }
                    prop_assert!(
                        core.granted.is_none() || core.granted == Some(thread),
                        "the grant may only ever name the thread waiter"
                    );
                }
                prop_assert!(thread_admitted);
                prop_assert_eq!(launched_total, survivors);
                prop_assert_eq!(core.granted, None);
            }
        }
    }

    // ---- FairAdmission under real threads ----

    #[test]
    fn blocking_acquire_eventually_admits_everyone() {
        let fair = Arc::new(FairAdmission::new(2));
        let g0 = fair.add_graph();
        let g1 = fair.add_graph();
        let admitted = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for i in 0..16 {
                let fair = Arc::clone(&fair);
                let admitted = Arc::clone(&admitted);
                let graph = if i % 2 == 0 { g0 } else { g1 };
                scope.spawn(move || {
                    fair.acquire(graph, Priority::Normal);
                    admitted.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_micros(200));
                    fair.release(graph);
                });
            }
        });
        assert_eq!(admitted.load(Ordering::Relaxed), 16);
        let core = fair.core.lock().unwrap();
        assert_eq!(core.in_flight_total, 0);
        assert!(core.waiters.iter().all(|q| q.is_empty()));
        assert_eq!(core.granted, None);
    }

    #[test]
    fn try_acquire_respects_capacity_and_queue() {
        let fair = FairAdmission::new(1);
        let g0 = fair.add_graph();
        let g1 = fair.add_graph();
        assert!(fair.try_acquire(g0));
        assert!(!fair.try_acquire(g1), "at capacity");
        fair.release(g0);
        assert!(fair.try_acquire(g1));
        fair.release(g1);
    }

    // ---- Registry bookkeeping (graph-free; serving paths are covered
    // by the integration tests) ----

    #[test]
    fn duplicate_names_are_rejected() {
        use psi_graph::graph::graph_from_parts;
        let multi = MultiEngine::new(MultiEngineConfig {
            workers: 1,
            max_concurrent_races: 1,
            tenant: EngineConfig::default(),
        });
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        let id = multi.register("alpha", PsiRunner::nfv_default(&g)).expect("first registration");
        assert_eq!(multi.graph_id("alpha"), Some(id));
        assert_eq!(
            multi.register("alpha", PsiRunner::nfv_default(&g)),
            Err(RegistryError::DuplicateName("alpha".into()))
        );
        assert_eq!(multi.registry().len(), 1);
    }

    #[test]
    fn unknown_graph_is_an_error_not_a_panic() {
        use psi_graph::graph::graph_from_parts;
        let multi = MultiEngine::with_defaults();
        let q = graph_from_parts(&[0], &[]);
        let bogus = GraphId(7);
        assert_eq!(
            multi.submit(bogus, &q).unwrap_err(),
            SubmitError::Route(RouteError::UnknownGraph)
        );
        assert_eq!(
            multi.try_submit(bogus, &q).unwrap_err(),
            SubmitError::Route(RouteError::UnknownGraph)
        );
        assert!(multi.graph_stats(bogus).is_none());
        assert!(multi.runner(bogus).is_none());
    }

    // ---- Persistence (save_graph / load_graph) ----

    fn persist_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("psi-registry-persist-{}", std::process::id()));
        let dir = dir.join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_multi() -> MultiEngine {
        MultiEngine::new(MultiEngineConfig {
            workers: 2,
            max_concurrent_races: 2,
            tenant: EngineConfig {
                default_budget: RaceBudget::matching(),
                // Keep the fast path out of the way so every query races
                // and trains the predictor deterministically.
                predictor_confidence: 1.1,
                ..EngineConfig::default()
            },
        })
    }

    /// A family of distinct path queries so repeated submissions miss
    /// the cache and keep racing.
    fn path_query(len: usize) -> Graph {
        use psi_graph::graph::graph_from_parts;
        let labels: Vec<u32> = (0..len as u32).map(|i| i % 2).collect();
        let edges: Vec<(u32, u32)> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
        graph_from_parts(&labels, &edges)
    }

    fn stored_cycle(n: usize) -> Graph {
        use psi_graph::graph::graph_from_parts;
        let labels: Vec<u32> = (0..n as u32).map(|i| i % 2).collect();
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        graph_from_parts(&labels, &edges)
    }

    #[test]
    fn save_then_cold_load_preserves_answers_and_learned_state() {
        let dir = persist_dir("roundtrip");
        let stored = stored_cycle(8);
        let warm = small_multi();
        let id = warm.register("tenant", PsiRunner::nfv_default(&stored)).unwrap();
        for len in 2..6 {
            warm.submit(id, &path_query(len)).unwrap();
        }
        let report = warm.save_graph(id, &dir).expect("save");
        assert!(report.snapshot_bytes > 0);
        assert!(report.saved_samples > 0, "contested races trained the predictor before save");
        assert!(report.snapshot_path.exists());
        assert!(report.wal_path.exists());
        // Post-save traffic appends to the now-attached WAL.
        for len in 2..6 {
            warm.submit(id, &path_query(len)).unwrap(); // cache hits: no WAL traffic
        }
        for len in 6..9 {
            warm.submit(id, &path_query(len)).unwrap();
        }
        let appended = warm.graph_stats(id).unwrap().wal_appended;
        assert!(appended > 0, "contested post-save races must log WAL records");

        let cold = small_multi();
        let load = cold.load_graph(&report.snapshot_path).expect("load");
        assert_eq!(load.name, "tenant");
        assert!(!load.index_rebuilt, "same layout version loads without a rebuild");
        assert_eq!(load.replayed_records, appended);
        assert!(load.replayed_samples > 0);
        assert_eq!(cold.graph_stats(load.graph).unwrap().wal_replayed, appended);
        // Learned state is byte-identical: snapshot + WAL replay re-runs
        // exactly the training the warm engine performed.
        assert_eq!(cold.entrant_tallies(load.graph), warm.entrant_tallies(id));
        // Same answers after the cold open, first query included.
        for len in 2..9 {
            let q = path_query(len);
            let a = warm.submit(id, &q).unwrap();
            let b = cold.submit(load.graph, &q).unwrap();
            assert_eq!(a.found(), b.found(), "path-{len}");
            assert_eq!(a.num_matches(), b.num_matches(), "path-{len}");
        }
    }

    #[test]
    fn load_twice_is_a_duplicate_name_error() {
        let dir = persist_dir("dup");
        let multi = small_multi();
        let id = multi.register("twice", PsiRunner::nfv_default(&stored_cycle(4))).unwrap();
        let report = multi.save_graph(id, &dir).unwrap();
        let other = small_multi();
        other.load_graph(&report.snapshot_path).unwrap();
        match other.load_graph(&report.snapshot_path) {
            Err(PersistError::Registry(RegistryError::DuplicateName(name))) => {
                assert_eq!(name, "twice");
            }
            other => panic!("expected duplicate-name error, got {other:?}"),
        }
    }

    #[test]
    fn save_unknown_graph_is_typed() {
        let dir = persist_dir("unknown");
        let multi = small_multi();
        assert!(matches!(multi.save_graph(GraphId(3), &dir), Err(PersistError::UnknownGraph)));
    }

    #[test]
    fn load_missing_snapshot_is_typed() {
        let dir = persist_dir("missing");
        let multi = small_multi();
        assert!(matches!(
            multi.load_graph(&dir.join("nope.psisnap")),
            Err(PersistError::Store(StoreError::Io(_)))
        ));
    }

    #[test]
    fn registry_directory_tracks_registration_order() {
        use psi_graph::graph::graph_from_parts;
        let multi = MultiEngine::with_defaults();
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        let a = multi.register("first", PsiRunner::nfv_default(&g)).unwrap();
        let b = multi.register("second", PsiRunner::nfv_default(&g)).unwrap();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(
            multi.registry().graphs(),
            vec![(a, "first".to_string()), (b, "second".to_string())]
        );
        assert_eq!(multi.registry().name(b).as_deref(), Some("second"));
        assert_eq!(format!("{a}"), "g0");
    }
}
