//! In-flight races as reactive state machines.
//!
//! The blocking engine drove every race from its caller's thread: submit
//! the entrant tasks, then sit in a collection loop managing staged
//! escalation until the last entrant reported. A non-blocking frontend
//! cannot afford that thread — thousands of tickets may be in flight at
//! once — so this module turns the collection loop inside out:
//!
//! * a [`RaceFlight`] holds everything one race needs to finish
//!   (result slots, the escalation reserve, the completion slot, the
//!   admission permit);
//! * every entrant task reports *into* the flight when it finishes; the
//!   report that completes the field finalizes the race — predictor
//!   feedback, cache store, stats, ticket fulfillment — right there on
//!   the pooled worker;
//! * staged races register their escalation deadline with the engine's
//!   one [`StageTimer`] thread, which fires undecided heats' reserves at
//!   the right fraction of the race budget. A heat that drains
//!   inconclusive escalates immediately from the reporting task itself.
//!
//! No thread belongs to any one query: N in-flight races cost N
//! allocations, not N threads. Entrant panics are absorbed by a report
//! guard (the panicking entrant reports a cancelled placeholder), so a
//! flight can never leak its admission slot or leave its ticket
//! unfulfilled.
//!
//! Shutdown safety: flights reference the worker pool and stage timer
//! *weakly*. Tasks hold only the pool-free [`ServeCore`], so whichever
//! thread drops the last reference never joins a worker from inside a
//! worker.

use crate::cache::{CachedAnswer, QueryKey};
use crate::engine::{EngineResponse, OwnedPermit, RaceStrategy, ServeCore, ServePath};
use crate::pool::WorkerPool;
use crate::scheduler::{plan_race, RacePlan, SchedulerInputs};
use crate::submit::CompletionSlot;
use crate::telemetry::{EntrantTiming, SlowQuery, TraceEvent, TraceSink};
use psi_core::predictor::QueryFeatures;
use psi_core::{PreparedEntrant, RaceBudget, RaceObserver, RaceState, Variant, VariantResult};
use psi_matchers::{CancelToken, MatchResult, SliceCoordinator, SliceTaskSummary, StopReason};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Notional race window used to place the stage deadline when the race
/// budget has no wall-clock timeout. Conclusive heats on typical serving
/// queries finish far inside this; only genuinely stuck heats escalate.
const UNTIMED_STAGE_WINDOW: Duration = Duration::from_millis(25);

/// Every Nth staged race runs the full field instead — an exploration
/// probe. An uncontested heat win is self-fulfilling evidence (the
/// pruned entrants never get to disprove the ranking), so only probes
/// and escalated races feed the predictor; the cadence bounds how long
/// workload drift can hide behind a stale ranking.
const EXPLORATION_PERIOD: u64 = 16;

/// Everything a cache-missing, admitted query carries into its race (or
/// predictor fast path): the prepared entrants, the resolved budget, the
/// admission-anchored clock, the ticket's completion slot and cancel
/// token, and the admission permit that frees the slot when the flight
/// finalizes.
pub(crate) struct PendingRace {
    pub core: Arc<ServeCore>,
    pub entrants: Vec<PreparedEntrant>,
    pub features: QueryFeatures,
    pub ranking: Option<(Vec<usize>, f64)>,
    pub budget: RaceBudget,
    pub admitted: Instant,
    pub query_id: u64,
    /// When race setup began executing on a worker — the boundary
    /// between the queue-wait and race stage histograms.
    pub setup_started: Instant,
    pub keyed: Option<(QueryKey, Vec<u32>)>,
    pub token: CancelToken,
    pub slot: Arc<CompletionSlot>,
    pub permit: OwnedPermit,
}

/// A best-effort inconclusive answer for a flight that cannot race
/// (cancelled before racing, or the engine shut down under it).
fn inconclusive_response(admitted: Instant) -> EngineResponse {
    let elapsed = admitted.elapsed();
    EngineResponse {
        answer: Arc::new(CachedAnswer {
            found: false,
            num_matches: 0,
            embeddings: Vec::new(),
            winner: None,
            cold_elapsed: elapsed,
        }),
        path: ServePath::Race,
        elapsed,
        conclusive: false,
    }
}

/// Completes a ticket inconclusive without racing. `cancelled` records
/// whether the flight died to its token (ticket drop) rather than an
/// engine shutdown or a degenerate configuration. Crate-visible: a
/// parked [`crate::engine::DeferredLaunch`] that dies before launching
/// (cancelled in the waiting room, or the engine shut down under it)
/// abandons through the same path.
pub(crate) fn abandon(
    core: &ServeCore,
    admitted: Instant,
    slot: &CompletionSlot,
    query_id: u64,
    cancelled: bool,
) {
    core.stats.inconclusive.fetch_add(1, Ordering::Relaxed);
    let response = inconclusive_response(admitted);
    core.stats.record_latency(response.elapsed);
    core.telemetry.emit(TraceEvent::Finalized {
        query: query_id,
        conclusive: false,
        cancelled,
        winner: None,
        elapsed_us: response.elapsed.as_micros().min(u64::MAX as u128) as u64,
    });
    slot.fulfill(response);
}

/// Completes the ticket inconclusive without racing, releasing the
/// admission slot first.
fn complete_inconclusive(pending: PendingRace) {
    let PendingRace { core, admitted, query_id, token, slot, permit, .. } = pending;
    drop(permit);
    abandon(&core, admitted, &slot, query_id, token.is_cancelled());
}

/// If the fast-path or setup body unwinds (a panicking matcher or
/// preparation step), the ticket still completes and the admission slot
/// still frees — the worker pool contains the panic, this guard
/// contains its consequences.
struct FastPathGuard(Option<PendingRace>);

impl Drop for FastPathGuard {
    fn drop(&mut self) {
        if let Some(pending) = self.0.take() {
            complete_inconclusive(pending);
        }
    }
}

/// Everything an admitted query carries from the submission thread onto
/// the pool: the raw query plus the ticket plumbing. Preparation
/// (entrant packaging, feature extraction, the predictor consult) runs
/// in [`prepare_and_launch`] on a pooled worker, so ticket creation
/// costs the caller only a cache probe and the admission gate — the
/// submission path stays cheap no matter how few client threads feed it.
pub(crate) struct AdmittedQuery {
    pub core: Arc<ServeCore>,
    pub query: psi_graph::Graph,
    pub query_id: u64,
    pub budget: RaceBudget,
    pub admitted: Instant,
    pub keyed: Option<(QueryKey, Vec<u32>)>,
    pub token: CancelToken,
    pub slot: Arc<CompletionSlot>,
    pub permit: OwnedPermit,
}

/// Like the setup guard above but for the pre-preparation window.
struct SetupGuard(Option<AdmittedQuery>);

impl Drop for SetupGuard {
    fn drop(&mut self) {
        if let Some(setup) = self.0.take() {
            let AdmittedQuery { core, query_id, admitted, token, slot, permit, .. } = setup;
            drop(permit);
            abandon(&core, admitted, &slot, query_id, token.is_cancelled());
        }
    }
}

/// The pooled setup task: prepares the entrant field, consults the
/// predictor once, then either runs the confident fast path inline (we
/// are already on a worker) or launches the race.
pub(crate) fn prepare_and_launch(
    setup: AdmittedQuery,
    pool: Weak<WorkerPool>,
    timer: Weak<StageTimer>,
) {
    let mut guard = SetupGuard(Some(setup));
    let setup_started = Instant::now();
    let (entrants, features, ranking) = {
        let s = guard.0.as_ref().expect("guard armed");
        if s.token.is_cancelled() {
            // The ticket was dropped before setup even ran.
            drop(guard);
            return;
        }
        let queue_wait = setup_started.duration_since(s.admitted);
        s.core.stats.queue_wait.record_duration(queue_wait);
        s.core.telemetry.emit(TraceEvent::SetupStarted {
            query: s.query_id,
            queue_us: queue_wait.as_micros().min(u64::MAX as u128) as u64,
        });
        let entrants = s.core.runner.prepare_entrants(&s.query);
        let features = QueryFeatures::extract(&s.query, s.core.runner.label_stats());
        let ranking = s.core.consult_predictor(&features, entrants.len());
        (entrants, features, ranking)
    };
    let AdmittedQuery { core, query_id, budget, admitted, keyed, token, slot, permit, .. } =
        guard.0.take().expect("guard armed");
    let confident = ranking.as_ref().is_some_and(|(_, share)| {
        core.config.predictor_confidence <= 1.0 && *share >= core.config.predictor_confidence
    });
    let fast = confident.then(|| {
        let (order, _) = ranking.as_ref().expect("confident implies ranked");
        entrants[order[0]].clone()
    });
    let pending = PendingRace {
        core,
        entrants,
        features,
        ranking,
        budget,
        admitted,
        query_id,
        setup_started,
        keyed,
        token,
        slot,
        permit,
    };
    match fast {
        Some(entrant) => run_fast_path(entrant, pending, pool, timer),
        None => match pool.upgrade() {
            Some(pool_strong) => pending.launch(&pool_strong, timer.upgrade().as_ref()),
            None => complete_inconclusive(pending),
        },
    }
}

/// Runs the predictor's single confident variant as the current pool
/// task; on an inconclusive result, falls back to launching the full
/// race (the race's insurance is never lost). Runs *on* a pooled worker.
pub(crate) fn run_fast_path(
    entrant: PreparedEntrant,
    pending: PendingRace,
    pool: Weak<WorkerPool>,
    timer: Weak<StageTimer>,
) {
    let mut guard = FastPathGuard(Some(pending));
    let result = {
        let p = guard.0.as_ref().expect("guard armed");
        let search_budget = p.budget.entrant_budget(p.token.clone(), p.admitted);
        entrant.execute(&search_budget)
    };
    let pending = guard.0.take().expect("guard armed");
    pending.core.stats.record_probes(&result.stats);
    let conclusive = result.stop.is_conclusive();
    let elapsed = pending.admitted.elapsed();
    pending.core.telemetry.emit(TraceEvent::FastPath {
        query: pending.query_id,
        variant: entrant.variant,
        conclusive,
        elapsed_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
    });
    if conclusive {
        let core = Arc::clone(&pending.core);
        core.stats.fast_paths.fetch_add(1, Ordering::Relaxed);
        core.stats.race_stage.record_duration(pending.setup_started.elapsed());
        let answer = Arc::new(CachedAnswer {
            found: result.found(),
            num_matches: result.num_matches,
            embeddings: result.embeddings,
            winner: Some(entrant.variant),
            cold_elapsed: elapsed,
        });
        core.cache_store(pending.keyed.as_ref(), &answer);
        core.stats.record_latency(elapsed);
        let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        core.telemetry.slow.record(SlowQuery {
            query: pending.query_id,
            elapsed_us,
            path: ServePath::FastPath,
            conclusive: true,
            winner: Some(entrant.variant),
            entrants: vec![EntrantTiming {
                variant: entrant.variant,
                stop: result.stop,
                wall_us: elapsed_us,
                pruned: false,
            }],
        });
        core.telemetry.emit(TraceEvent::Finalized {
            query: pending.query_id,
            conclusive: true,
            cancelled: false,
            winner: Some(entrant.variant),
            elapsed_us,
        });
        let PendingRace { slot, permit, .. } = pending;
        drop(permit);
        slot.fulfill(EngineResponse {
            answer,
            path: ServePath::FastPath,
            elapsed,
            conclusive: true,
        });
        return;
    }
    pending.core.stats.fast_path_fallbacks.fetch_add(1, Ordering::Relaxed);
    if pending.token.is_cancelled() {
        // The ticket was dropped mid-fast-path: nobody wants the race.
        complete_inconclusive(pending);
    } else if let Some(pool) = pool.upgrade() {
        pending.launch(&pool, timer.upgrade().as_ref());
    } else {
        // The engine shut down under the flight.
        complete_inconclusive(pending);
    }
}

impl PendingRace {
    /// Launches the race: the whole entrant field at once
    /// ([`RaceStrategy::Full`]), or a predictor-ranked top-K first heat
    /// with the rest held back as an escalation reserve
    /// ([`RaceStrategy::TopK`]). Returns immediately — completion is
    /// driven by the entrant tasks and, for staged races, `timer`.
    pub(crate) fn launch(self, pool: &Arc<WorkerPool>, timer: Option<&Arc<StageTimer>>) {
        let PendingRace {
            core,
            entrants,
            features,
            ranking,
            budget,
            admitted,
            query_id,
            setup_started,
            keyed,
            token,
            slot,
            permit,
        } = self;
        let n = entrants.len();
        if n == 0 {
            // Degenerate configuration: nothing can race.
            complete_inconclusive(PendingRace {
                core,
                entrants,
                features,
                ranking,
                budget,
                admitted,
                query_id,
                setup_started,
                keyed,
                token,
                slot,
                permit,
            });
            return;
        }
        let variants: Vec<Variant> = entrants.iter().map(|e| e.variant).collect();
        // Rewritings permute the query, never resize it: any entrant's
        // prepared node count is the query's.
        let query_nodes = entrants.first().map_or(0, |e| e.query_node_count());

        // Stage only when the strategy says so AND the predictor was
        // consultable (trained past its observation floor): a `ranking`
        // may also be present purely for the fast path under Full. Every
        // EXPLORATION_PERIODth would-be staged race runs the full field
        // instead, so contested evidence keeps flowing and a drifted
        // ranking cannot entrench itself behind uncontested heat wins.
        let plan = match core.config.race_strategy {
            RaceStrategy::TopK { k, .. } if k > 0 && k < n => {
                let (order, heat) = ranking
                    .filter(|_| {
                        !(core.staged_seq.fetch_add(1, Ordering::Relaxed) + 1)
                            .is_multiple_of(EXPLORATION_PERIOD)
                    })
                    .map(|(order, _)| (order, k))
                    .unwrap_or_else(|| ((0..n).collect(), n));
                RacePlan { order, heat, slices: 1 }
            }
            RaceStrategy::Adaptive { max_slices, .. } => {
                // A trained predictor's plans are subject to the same
                // exploration cadence as TopK; a cold one already races
                // the full field.
                let exploration = ranking.is_some()
                    && (core.staged_seq.fetch_add(1, Ordering::Relaxed) + 1)
                        .is_multiple_of(EXPLORATION_PERIOD);
                let staged_so_far = core.stats.topk_races.load(Ordering::Relaxed);
                let escalations = core.stats.escalations.load(Ordering::Relaxed);
                plan_race(SchedulerInputs {
                    entrants: n,
                    ranking: ranking.filter(|_| !exploration),
                    escalation_rate: if staged_so_far == 0 {
                        0.0
                    } else {
                        escalations as f64 / staged_so_far as f64
                    },
                    idle_workers: pool.idle(),
                    max_slices,
                    query_nodes,
                    slice_min_query_nodes: core.config.slice_min_query_nodes,
                })
            }
            _ => RacePlan { order: (0..n).collect(), heat: n, slices: 1 },
        };
        let RacePlan { order, heat: k, slices } = plan;
        let staged = k < n;
        if staged {
            core.stats.topk_races.fetch_add(1, Ordering::Relaxed);
        }
        if slices > 1 {
            core.stats.sliced_races.fetch_add(1, Ordering::Relaxed);
        }
        let escalate_after = match core.config.race_strategy {
            RaceStrategy::TopK { escalate_after, .. }
            | RaceStrategy::Adaptive { escalate_after, .. } => escalate_after,
            RaceStrategy::Full => 0.0,
        };

        let mut entrant_slots: Vec<Option<PreparedEntrant>> =
            entrants.into_iter().map(Some).collect();
        // The reserve is held back un-launched; pruning it is free
        // (entrants never occupy workers), escalating it is one submit
        // per entrant.
        let reserve: Vec<(usize, PreparedEntrant)> = order[k..]
            .iter()
            .map(|&idx| (idx, entrant_slots[idx].take().expect("each entrant launches once")))
            .collect();
        core.telemetry.emit(TraceEvent::HeatLaunched {
            query: query_id,
            launched: k as u32,
            reserved: (n - k) as u32,
        });
        // Per-entrant start/claim events flow through the race layer's
        // stage hook; skipped entirely when tracing is off.
        let mut state = RaceState::with_token(admitted, token);
        if let Some(trace) = &core.telemetry.trace {
            state = state
                .observe(Arc::new(FlightObserver { trace: Arc::clone(trace), query: query_id }));
        }
        let flight = Arc::new(RaceFlight {
            core,
            pool: Arc::downgrade(pool),
            state,
            budget,
            admitted,
            query_id,
            setup_started,
            keyed,
            features,
            variants,
            escalate_after,
            slot,
            inner: Mutex::new(FlightInner {
                results: (0..n).map(|_| None).collect(),
                pruned: vec![false; n],
                reported: 0,
                launched: k,
                reserve,
                finished: false,
                permit: Some(permit),
            }),
        });
        // The first heat launches immediately, best-ranked first. Heat
        // entrants granted slices split their root-candidate space
        // across cooperating tasks; escalated reserves (launched later,
        // into a pool that just proved itself busy) run single-slice.
        for &idx in &order[..k] {
            let entrant = entrant_slots[idx].take().expect("each entrant launches once");
            if slices > 1 {
                submit_sliced(&flight, pool, idx, entrant, slices);
            } else {
                pool.submit(entrant_task(Arc::clone(&flight), idx, entrant));
            }
        }
        if staged {
            if let Some(timer) = timer {
                // Timed budgets anchor the stage deadline at admission —
                // entrant deadlines are admission-anchored, so escalating
                // any later than the race deadline would be useless.
                // Untimed budgets anchor at the instant the heat actually
                // begins executing (see `RaceFlight::stage_check`); the
                // first check fires one window out and re-arms as needed.
                let first = match flight.budget.timeout {
                    Some(_) => {
                        flight.budget.stage_deadline(admitted, escalate_after, UNTIMED_STAGE_WINDOW)
                    }
                    None => Instant::now() + UNTIMED_STAGE_WINDOW,
                };
                timer.register(first, Arc::downgrade(&flight));
            }
        }
    }
}

/// The [`RaceObserver`] a traced flight attaches to its race state:
/// forwards entrant-start and win-claim milestones into the trace ring
/// from the entrant's own worker thread.
struct FlightObserver {
    trace: Arc<TraceSink>,
    query: u64,
}

impl RaceObserver for FlightObserver {
    fn entrant_started(&self, idx: usize, _since_start: Duration) {
        self.trace.emit(TraceEvent::EntrantStarted { query: self.query, entrant: idx as u32 });
    }

    fn race_claimed(&self, idx: usize, wall: Duration) {
        self.trace.emit(TraceEvent::WinClaimed {
            query: self.query,
            entrant: idx as u32,
            wall_us: wall.as_micros().min(u64::MAX as u128) as u64,
        });
    }
}

/// One in-flight race: shared by its entrant tasks (strongly) and the
/// stage timer (weakly). The last entrant to report finalizes.
pub(crate) struct RaceFlight {
    core: Arc<ServeCore>,
    pool: Weak<WorkerPool>,
    state: RaceState,
    budget: RaceBudget,
    admitted: Instant,
    query_id: u64,
    setup_started: Instant,
    keyed: Option<(QueryKey, Vec<u32>)>,
    features: QueryFeatures,
    variants: Vec<Variant>,
    escalate_after: f64,
    slot: Arc<CompletionSlot>,
    inner: Mutex<FlightInner>,
}

struct FlightInner {
    results: Vec<Option<VariantResult<Variant>>>,
    pruned: Vec<bool>,
    reported: usize,
    launched: usize,
    reserve: Vec<(usize, PreparedEntrant)>,
    finished: bool,
    permit: Option<OwnedPermit>,
}

/// What a report (or timer check) decided to do, computed under the
/// flight lock and executed after releasing it.
enum FlightAction {
    Nothing,
    Escalate(Vec<(usize, PreparedEntrant)>),
    Finalize,
}

/// Packages one entrant as a pool task that always reports back into the
/// flight — on normal completion with its real result, on a panic (the
/// pool contains it) with a cancelled placeholder via the drop guard, so
/// the flight always finalizes and the ticket is always fulfilled.
fn entrant_task(
    flight: Arc<RaceFlight>,
    idx: usize,
    entrant: PreparedEntrant,
) -> impl FnOnce() + Send + 'static {
    move || {
        let variant = entrant.variant;
        let mut guard = ReportGuard(Some((Arc::clone(&flight), idx, variant)));
        let (result, wall) = flight.state.run_entrant(idx, &flight.budget, |b| entrant.execute(b));
        if let Some((flight, idx, variant)) = guard.0.take() {
            flight.on_report(idx, VariantResult { label: variant, result, wall });
        }
    }
}

struct ReportGuard(Option<(Arc<RaceFlight>, usize, Variant)>);

impl Drop for ReportGuard {
    fn drop(&mut self) {
        if let Some((flight, idx, variant)) = self.0.take() {
            let wall = flight.admitted.elapsed();
            flight.on_report(
                idx,
                VariantResult {
                    label: variant,
                    result: MatchResult::empty(StopReason::Cancelled),
                    wall,
                },
            );
        }
    }
}

/// One sliced heat entrant in flight: the prepared entrant shared by its
/// slice tasks plus the [`SliceCoordinator`] they claim root-candidate
/// chunks from.
struct SliceGroup {
    flight: Arc<RaceFlight>,
    idx: usize,
    entrant: PreparedEntrant,
    coord: SliceCoordinator,
    /// Whether some slice already recorded the entrant-start milestone.
    started: AtomicBool,
}

/// Launches one heat entrant as `slices` cooperating slice tasks over a
/// shared coordinator. The first task to reach a worker records the
/// entrant's start milestone; the last to finish merges the group,
/// translates embeddings back to original-query numbering, claims the
/// race if conclusive, and reports into the flight — so to the flight a
/// sliced entrant is indistinguishable from an ordinary one.
fn submit_sliced(
    flight: &Arc<RaceFlight>,
    pool: &Arc<WorkerPool>,
    idx: usize,
    entrant: PreparedEntrant,
    slices: usize,
) {
    // The coordinator's per-chunk budget mirrors the race-wired entrant
    // budget (same cap and admission-anchored deadline); its group token
    // is linked under the race token, so a sibling entrant's win stops
    // every slice while the group cancelling itself (cap reached in the
    // committed prefix) never touches the race.
    let outer = flight.budget.entrant_budget(flight.state.token().clone(), flight.admitted);
    let group = Arc::new(SliceGroup {
        flight: Arc::clone(flight),
        idx,
        entrant,
        coord: SliceCoordinator::new(&outer, slices),
        started: AtomicBool::new(false),
    });
    flight.core.stats.slices_spawned.fetch_add(slices as u64, Ordering::Relaxed);
    for slice in 0..slices as u32 {
        flight.core.telemetry.emit(TraceEvent::SliceSpawned {
            query: flight.query_id,
            entrant: idx as u32,
            slice,
        });
        let group = Arc::clone(&group);
        pool.submit(move || run_slice(&group, slice));
    }
}

/// One slice task's body. The guard mirrors [`ReportGuard`]: even a
/// panicking slice marks itself finished, so the group always concludes,
/// the flight always finalizes, and the admission permit can never leak.
/// A panicked slice's claimed-but-uncommitted range surfaces as a merge
/// gap — the entrant reports inconclusive, never wrong.
fn run_slice(group: &Arc<SliceGroup>, slice: u32) {
    struct SliceGuard {
        group: Arc<SliceGroup>,
        slice: u32,
        started: Instant,
        summary: SliceTaskSummary,
    }

    impl Drop for SliceGuard {
        fn drop(&mut self) {
            let group = &self.group;
            let flight = &group.flight;
            flight.core.telemetry.emit(TraceEvent::SliceFinished {
                query: flight.query_id,
                entrant: group.idx as u32,
                slice: self.slice,
                chunks: self.summary.chunks,
                wall_us: self.started.elapsed().as_micros().min(u64::MAX as u128) as u64,
            });
            if let Some(mut result) = group.coord.finish_task() {
                flight.core.stats.slice_steals.fetch_add(group.coord.steals(), Ordering::Relaxed);
                group.entrant.translate(&mut result);
                let wall = flight.state.complete_entrant(group.idx, &result);
                flight.on_report(
                    group.idx,
                    VariantResult { label: group.entrant.variant, result, wall },
                );
            }
        }
    }

    let mut guard = SliceGuard {
        group: Arc::clone(group),
        slice,
        started: Instant::now(),
        summary: SliceTaskSummary::default(),
    };
    // The entrant-start milestone fires once, on whichever slice reaches
    // a worker first. Only the milestone matters: the returned budget is
    // a copy of what the coordinator already carries.
    if !group.started.swap(true, Ordering::AcqRel) {
        let _ = group.flight.state.start_entrant(group.idx, &group.flight.budget);
    }
    guard.summary = group.entrant.run_slice_task(&group.coord);
}

impl RaceFlight {
    /// The stage deadline as of now: admission-anchored for timed
    /// budgets; anchored at the heat's first actual execution for
    /// untimed ones (`None` while the heat is still queued), so pool
    /// queueing delay on a saturated pool cannot trigger spurious
    /// escalations before the heat has even run.
    fn current_stage_deadline(&self) -> Option<Instant> {
        match self.budget.timeout {
            Some(_) => Some(self.budget.stage_deadline(
                self.admitted,
                self.escalate_after,
                UNTIMED_STAGE_WINDOW,
            )),
            None => self.state.first_entrant_started().map(|begun| {
                self.budget.stage_deadline(begun, self.escalate_after, UNTIMED_STAGE_WINDOW)
            }),
        }
    }

    /// One entrant's result arrives. Prunes or escalates the reserve as
    /// the race's state dictates, and finalizes once the whole launched
    /// field has reported.
    fn on_report(self: &Arc<Self>, idx: usize, vr: VariantResult<Variant>) {
        self.core.telemetry.emit(TraceEvent::EntrantFinished {
            query: self.query_id,
            entrant: idx as u32,
            stop: vr.result.stop,
            wall_us: vr.wall.as_micros().min(u64::MAX as u128) as u64,
        });
        let action = {
            let mut inner = self.inner.lock().expect("race flight lock");
            if inner.results[idx].is_none() {
                inner.results[idx] = Some(vr);
                inner.reported += 1;
            }
            let mut action = FlightAction::Nothing;
            if !inner.reserve.is_empty() {
                if self.state.is_decided() {
                    // The pruned heat decided the race: the reserve never
                    // occupies a worker.
                    let drained: Vec<_> = inner.reserve.drain(..).collect();
                    self.core.telemetry.emit(TraceEvent::ReservePruned {
                        query: self.query_id,
                        count: drained.len() as u32,
                    });
                    for (i, _) in drained {
                        inner.pruned[i] = true;
                    }
                } else if inner.reported >= inner.launched {
                    // The heat drained inconclusive: escalate now rather
                    // than waiting out the stage deadline.
                    action = FlightAction::Escalate(self.take_reserve(&mut inner));
                }
            }
            if matches!(action, FlightAction::Nothing) && Self::ready_to_finalize(&mut inner) {
                action = FlightAction::Finalize;
            }
            action
        };
        self.perform(action);
    }

    /// Moves the reserve out for launching; the caller escalates outside
    /// the lock.
    fn take_reserve(&self, inner: &mut FlightInner) -> Vec<(usize, PreparedEntrant)> {
        let reserve = std::mem::take(&mut inner.reserve);
        inner.launched += reserve.len();
        reserve
    }

    /// Whether every launched entrant has reported with nothing left to
    /// launch; flips `finished` so finalization runs exactly once.
    fn ready_to_finalize(inner: &mut FlightInner) -> bool {
        if inner.reserve.is_empty() && inner.reported >= inner.launched && !inner.finished {
            inner.finished = true;
            return true;
        }
        false
    }

    fn perform(self: &Arc<Self>, action: FlightAction) {
        match action {
            FlightAction::Nothing => {}
            FlightAction::Escalate(entries) => self.submit_escalation(entries),
            FlightAction::Finalize => self.finalize(),
        }
    }

    /// Launches the escalation reserve under the same race state — a
    /// late full-field winner still cancels everyone, and every deadline
    /// stays anchored at admission.
    fn submit_escalation(self: &Arc<Self>, entries: Vec<(usize, PreparedEntrant)>) {
        match self.pool.upgrade() {
            Some(pool) => {
                self.core.stats.escalations.fetch_add(1, Ordering::Relaxed);
                self.core.telemetry.emit(TraceEvent::Escalated {
                    query: self.query_id,
                    launched: entries.len() as u32,
                });
                for (idx, entrant) in entries {
                    pool.submit(entrant_task(Arc::clone(self), idx, entrant));
                }
            }
            None => {
                // Engine shut down: the reserve can never launch. Treat
                // it as pruned so the flight still finalizes.
                self.core.telemetry.emit(TraceEvent::ReservePruned {
                    query: self.query_id,
                    count: entries.len() as u32,
                });
                let finalize = {
                    let mut inner = self.inner.lock().expect("race flight lock");
                    inner.launched -= entries.len();
                    for (idx, _) in entries {
                        inner.pruned[idx] = true;
                    }
                    Self::ready_to_finalize(&mut inner)
                };
                if finalize {
                    self.finalize();
                }
            }
        }
    }

    /// Timer callback: escalate an undecided heat whose stage deadline
    /// has passed. Returns `Some(at)` to be re-checked at `at`, `None`
    /// when the flight needs no further timing.
    pub(crate) fn stage_check(self: &Arc<Self>, now: Instant) -> Option<Instant> {
        let (action, rearm) = {
            let mut inner = self.inner.lock().expect("race flight lock");
            if inner.finished || inner.reserve.is_empty() {
                (FlightAction::Nothing, None)
            } else if self.state.is_decided() {
                let drained: Vec<_> = inner.reserve.drain(..).collect();
                self.core.telemetry.emit(TraceEvent::ReservePruned {
                    query: self.query_id,
                    count: drained.len() as u32,
                });
                for (i, _) in drained {
                    inner.pruned[i] = true;
                }
                let action = if Self::ready_to_finalize(&mut inner) {
                    FlightAction::Finalize
                } else {
                    FlightAction::Nothing
                };
                (action, None)
            } else {
                match self.current_stage_deadline() {
                    // Heat still queued: check again once it could have
                    // started; no escalation can fire before then.
                    None => (FlightAction::Nothing, Some(now + UNTIMED_STAGE_WINDOW)),
                    Some(deadline) if now < deadline => (FlightAction::Nothing, Some(deadline)),
                    Some(_) => (FlightAction::Escalate(self.take_reserve(&mut inner)), None),
                }
            }
        };
        self.perform(action);
        rearm
    }

    /// Assembles the outcome, feeds the predictor, stores a conclusive
    /// answer in the cache, updates stats, releases the admission slot
    /// and fulfills the ticket. Runs exactly once, on whichever pooled
    /// worker (or timer tick) completed the field.
    fn finalize(self: &Arc<Self>) {
        let finalize_started = Instant::now();
        self.core
            .stats
            .race_stage
            .record_duration(finalize_started.duration_since(self.setup_started));
        let (results, pruned, permit) = {
            let mut inner = self.inner.lock().expect("race flight lock");
            (
                std::mem::take(&mut inner.results),
                std::mem::take(&mut inner.pruned),
                inner.permit.take(),
            )
        };
        let n = self.variants.len();
        // A slot can only stay empty if its task panicked (reported as a
        // cancelled placeholder by the guard — defensive here) or never
        // launched (pruned); neither poisons the whole race.
        let per_variant: Vec<VariantResult<Variant>> = results
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| VariantResult {
                    label: self.variants[idx],
                    result: MatchResult::empty(StopReason::Cancelled),
                    wall: self.admitted.elapsed(),
                })
            })
            .collect();
        let pruned_count = pruned.iter().filter(|&&p| p).count();
        // Edge-probe accounting: every launched entrant counted its
        // index probes locally; fold them into the engine totals here,
        // two atomic adds per entrant instead of one per probe.
        for vr in &per_variant {
            self.core.stats.record_probes(&vr.result.stats);
        }
        // Pruned entrants carry the Cancelled placeholder but never ran —
        // count them separately from the Ψ "kill" count.
        let cancelled = per_variant
            .iter()
            .enumerate()
            .filter(|&(idx, vr)| !pruned[idx] && vr.result.stop == StopReason::Cancelled)
            .count();
        let outcome = self.state.finish(per_variant);
        let stats = &self.core.stats;
        stats.races.fetch_add(1, Ordering::Relaxed);
        stats.cancelled_variants.fetch_add(cancelled as u64, Ordering::Relaxed);
        stats.pruned_entrants.fetch_add(pruned_count as u64, Ordering::Relaxed);

        let elapsed = self.admitted.elapsed();
        let conclusive = outcome.is_conclusive();
        // An uncontested win (no other entrant launched) proves nothing
        // about the rest of the field — feeding it back would make the
        // ranking self-fulfilling. Only contested races train the
        // predictor; the exploration probes guarantee a steady supply.
        let contested = n - pruned_count > 1;
        if contested {
            let mut wal_records: Vec<psi_store::WalRecord> = Vec::new();
            {
                let mut predictor = self.core.predictor.lock().expect("predictor lock");
                if let Some(winner_idx) = outcome.winner_index {
                    predictor.observe(self.features, winner_idx);
                    wal_records.push(psi_store::WalRecord::Sample {
                        features: self.features,
                        winner: winner_idx as u32,
                    });
                }
                for (idx, vr) in outcome.per_variant.iter().enumerate() {
                    if pruned[idx] || outcome.winner_index == Some(idx) {
                        continue;
                    }
                    match vr.result.stop {
                        StopReason::TimedOut => {
                            predictor.record_timeout(idx);
                            wal_records.push(psi_store::WalRecord::Timeout { idx: idx as u32 });
                        }
                        _ if outcome.winner_index.is_some() => {
                            predictor.record_loss(idx);
                            wal_records.push(psi_store::WalRecord::Loss { idx: idx as u32 });
                        }
                        _ => {}
                    }
                }
            }
            // File I/O happens after the predictor lock is released so a
            // slow disk never serializes other finalizing races.
            self.core.wal_append(&wal_records);
        }
        if outcome.winner_index.is_none() {
            stats.inconclusive.fetch_add(1, Ordering::Relaxed);
        }
        let answer = Arc::new(match outcome.winner() {
            Some(w) => CachedAnswer {
                found: w.result.found(),
                num_matches: w.result.num_matches,
                embeddings: w.result.embeddings.clone(),
                winner: Some(w.label),
                cold_elapsed: elapsed,
            },
            None => CachedAnswer {
                found: false,
                num_matches: 0,
                embeddings: Vec::new(),
                winner: None,
                cold_elapsed: elapsed,
            },
        });
        // Only definitive answers are cacheable: a timed-out race might
        // succeed on retry with a fresh budget.
        if conclusive {
            self.core.cache_store(self.keyed.as_ref(), &answer);
        }
        stats.record_latency(elapsed);
        let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        let winner = outcome.winner().map(|w| w.label);
        let entrants: Vec<EntrantTiming> = outcome
            .per_variant
            .iter()
            .enumerate()
            .map(|(idx, vr)| EntrantTiming {
                variant: vr.label,
                stop: vr.result.stop,
                wall_us: vr.wall.as_micros().min(u64::MAX as u128) as u64,
                pruned: pruned[idx],
            })
            .collect();
        self.core.telemetry.slow.record(SlowQuery {
            query: self.query_id,
            elapsed_us,
            path: ServePath::Race,
            conclusive,
            winner,
            entrants,
        });
        self.core.stats.finalize_stage.record_duration(finalize_started.elapsed());
        self.core.telemetry.emit(TraceEvent::Finalized {
            query: self.query_id,
            conclusive,
            cancelled: !conclusive && self.state.token().is_cancelled(),
            winner,
            elapsed_us,
        });
        // Free the admission slot before the answer lands, so a caller
        // observing completion can immediately re-submit.
        drop(permit);
        self.slot.fulfill(EngineResponse { answer, path: ServePath::Race, elapsed, conclusive });
    }
}

// ---- The stage-deadline timer ----

struct TimerEntry {
    at: Instant,
    flight: Weak<RaceFlight>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest
        // deadline on top.
        other.at.cmp(&self.at)
    }
}

#[derive(Default)]
struct TimerInner {
    queue: BinaryHeap<TimerEntry>,
    shutdown: bool,
}

#[derive(Default)]
struct TimerShared {
    inner: Mutex<TimerInner>,
    tick: Condvar,
}

/// One timer thread per engine (shared across all graphs of a
/// [`crate::MultiEngine`]) that fires stage-deadline checks for every
/// staged race in flight. Entries hold the flight weakly: a race that
/// finalized (or whose ticket was dropped and finalized early) simply
/// never fires.
pub(crate) struct StageTimer {
    shared: Arc<TimerShared>,
    handle: Option<JoinHandle<()>>,
    owner: std::thread::ThreadId,
}

impl StageTimer {
    pub(crate) fn new() -> Self {
        let shared = Arc::new(TimerShared::default());
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("psi-stage-timer".to_string())
            .spawn(move || timer_loop(&thread_shared))
            .expect("spawning the stage timer must succeed");
        Self { shared, handle: Some(handle), owner: std::thread::current().id() }
    }

    /// Schedules a stage check for `flight` at `at`.
    pub(crate) fn register(&self, at: Instant, flight: Weak<RaceFlight>) {
        let mut inner = self.shared.inner.lock().expect("stage timer lock");
        // Only wake the timer thread when this deadline moves the wakeup
        // earlier: it already sleeps until the current front of the
        // heap, and a per-registration wake would cost a context switch
        // per staged race.
        let wake = inner.queue.peek().is_none_or(|front| at < front.at);
        inner.queue.push(TimerEntry { at, flight });
        drop(inner);
        if wake {
            self.shared.tick.notify_one();
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        self.shared.inner.lock().expect("stage timer lock").shutdown = true;
        self.shared.tick.notify_all();
        // Join only from the thread that built the timer: workers
        // briefly hold strong references (launch registers deadlines),
        // so during teardown a pool worker can run this drop — joining
        // from there risks a mutual join with `WorkerPool::drop`
        // (EDEADLK → panic). The shutdown flag already makes the timer
        // thread exit on its own.
        if std::thread::current().id() == self.owner {
            if let Some(handle) = self.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

fn timer_loop(shared: &TimerShared) {
    let mut due: Vec<Weak<RaceFlight>> = Vec::new();
    loop {
        {
            let mut inner = shared.inner.lock().expect("stage timer lock");
            loop {
                if inner.shutdown {
                    return;
                }
                let now = Instant::now();
                match inner.queue.peek() {
                    Some(entry) if entry.at <= now => break,
                    Some(entry) => {
                        let wait = entry.at - now;
                        inner = shared.tick.wait_timeout(inner, wait).expect("stage timer lock").0;
                    }
                    None => inner = shared.tick.wait(inner).expect("stage timer lock"),
                }
            }
            let now = Instant::now();
            while inner.queue.peek().is_some_and(|e| e.at <= now) {
                due.push(inner.queue.pop().expect("peeked entry").flight);
            }
        }
        for weak in due.drain(..) {
            if let Some(flight) = weak.upgrade() {
                if let Some(rearm) = flight.stage_check(Instant::now()) {
                    shared
                        .inner
                        .lock()
                        .expect("stage timer lock")
                        .queue
                        .push(TimerEntry { at: rearm, flight: Arc::downgrade(&flight) });
                }
            }
        }
    }
}
