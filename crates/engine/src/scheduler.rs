//! The self-tuning race scheduler behind
//! [`RaceStrategy::Adaptive`](crate::RaceStrategy::Adaptive).
//!
//! [`RaceStrategy::TopK`](crate::RaceStrategy::TopK) fixes one knob — how
//! many entrants launch — at configuration time. But the right answer
//! changes query by query: a confidently-predicted heavy query on an idle
//! pool is best served by *one* entrant split into many cooperating
//! root-candidate slices (intra-query parallelism), while a saturated
//! pool wants the opposite — many queries in flight, one slice each, so
//! admission throughput never starves behind any single query's fan-out.
//!
//! [`plan_race`] decides both dimensions per query from three live
//! signals:
//!
//! * **predictor vote margin** — a confident ranking shrinks the heat
//!   (fewer entrants wasted re-deriving a known winner), an uncertain one
//!   widens it;
//! * **observed escalation rate** — when pruned heats keep escalating,
//!   the ranking is overclaiming, so every heat gets one extra entrant of
//!   insurance;
//! * **pool occupancy** — spare workers (beyond one per heat entrant) are
//!   handed out as extra slices, capped by the strategy's `max_slices`;
//!   zero spare capacity degrades to classic one-slice racing.
//!
//! The plan is a *hint*: slicing never changes answers (the slice merge
//! is deterministic — see `psi_matchers::slice`), and a stale occupancy
//! reading costs only latency.

/// Predictor vote share at or above which a single predicted entrant
/// carries the heat alone.
const CONFIDENT_VOTE: f64 = 0.75;
/// Vote share at or above which two entrants suffice; below this the
/// heat takes half the field.
const LEANING_VOTE: f64 = 0.45;
/// Escalation rate above which every heat gets one extra entrant of
/// insurance — the predictor's rankings are demonstrably overclaiming.
const ESCALATION_ALARM: f64 = 0.25;

/// Everything [`plan_race`] consults for one query.
pub struct SchedulerInputs {
    /// Size of the entrant field (variants prepared for this query).
    pub entrants: usize,
    /// The predictor's ranked order and leader vote share, when trained
    /// and not suppressed by an exploration probe. `None` races the full
    /// field.
    pub ranking: Option<(Vec<usize>, f64)>,
    /// `escalations / topk_races` observed so far (0 when nothing
    /// staged yet).
    pub escalation_rate: f64,
    /// Workers not currently running a task, read from
    /// [`WorkerPool::idle`](crate::WorkerPool::idle) at plan time.
    pub idle_workers: usize,
    /// Upper bound on slices per entrant
    /// ([`RaceStrategy::Adaptive`](crate::RaceStrategy::Adaptive)`::max_slices`).
    pub max_slices: usize,
    /// Node count of the (rewritten) query being raced.
    pub query_nodes: usize,
    /// Smallest query eligible for slicing
    /// ([`EngineConfig::slice_min_query_nodes`](crate::EngineConfig::slice_min_query_nodes)).
    pub slice_min_query_nodes: usize,
}

/// One query's launch plan: which entrants race, how many launch in the
/// first heat (the rest reserve for escalation), and how many
/// root-candidate slices each heat entrant's search splits into.
pub struct RacePlan {
    /// Entrant indices, best-ranked first; `order[..heat]` launches,
    /// `order[heat..]` is the escalation reserve.
    pub order: Vec<usize>,
    /// Entrants in the first heat (`1..=order.len()`).
    pub heat: usize,
    /// Cooperating slice tasks per heat entrant (≥ 1; 1 means ordinary
    /// unsliced execution). Escalated reserves always run single-slice.
    pub slices: usize,
}

/// Decides the entrant heat and per-entrant slice count for one query.
/// See the module docs for the policy.
pub fn plan_race(inputs: SchedulerInputs) -> RacePlan {
    let n = inputs.entrants.max(1);
    let (order, heat) = match inputs.ranking {
        Some((order, vote)) if n > 1 && order.len() == n => {
            let mut k = if vote >= CONFIDENT_VOTE {
                1
            } else if vote >= LEANING_VOTE {
                2
            } else {
                n.div_ceil(2)
            };
            if inputs.escalation_rate > ESCALATION_ALARM {
                k += 1;
            }
            (order, k.min(n))
        }
        // Cold predictor, exploration probe, or a malformed ranking:
        // full field in configuration order, exactly like `Full`.
        _ => ((0..n).collect(), n),
    };
    let sliceable = inputs.max_slices > 1 && inputs.query_nodes >= inputs.slice_min_query_nodes;
    let slices = if sliceable {
        // One worker per heat entrant is spoken for; spares are dealt
        // out evenly as extra slices. Integer division biases low: a
        // spare worker that cannot serve *every* heat entrant serves
        // none, so heats never oversubscribe the pool by design.
        let spare = inputs.idle_workers.saturating_sub(heat);
        (1 + spare / heat).min(inputs.max_slices)
    } else {
        1
    };
    RacePlan { order, heat, slices }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs() -> SchedulerInputs {
        SchedulerInputs {
            entrants: 6,
            ranking: None,
            escalation_rate: 0.0,
            idle_workers: 6,
            max_slices: 4,
            query_nodes: 12,
            slice_min_query_nodes: 6,
        }
    }

    #[test]
    fn cold_predictor_races_full_field_with_slices() {
        // 2 entrants, 6 idle workers: spare 4 → 3 slices each, even
        // before the predictor has trained.
        let plan = plan_race(SchedulerInputs { entrants: 2, ..inputs() });
        assert_eq!(plan.order, vec![0, 1]);
        assert_eq!(plan.heat, 2);
        assert_eq!(plan.slices, 3);
    }

    #[test]
    fn confident_vote_narrows_heat_and_widens_slices() {
        let plan =
            plan_race(SchedulerInputs { ranking: Some((vec![3, 1, 0, 2, 4, 5], 0.9)), ..inputs() });
        assert_eq!(plan.heat, 1, "confident leader races alone");
        assert_eq!(plan.order[0], 3);
        assert_eq!(plan.slices, 4, "spare capacity becomes slices, capped at max_slices");
    }

    #[test]
    fn leaning_vote_takes_two_uncertain_takes_half() {
        let leaning =
            plan_race(SchedulerInputs { ranking: Some((vec![0, 1, 2, 3, 4, 5], 0.5)), ..inputs() });
        assert_eq!(leaning.heat, 2);
        let uncertain =
            plan_race(SchedulerInputs { ranking: Some((vec![0, 1, 2, 3, 4, 5], 0.2)), ..inputs() });
        assert_eq!(uncertain.heat, 3, "half the field (ceil) under an uncertain ranking");
    }

    #[test]
    fn high_escalation_rate_adds_an_insurance_entrant() {
        let plan = plan_race(SchedulerInputs {
            ranking: Some((vec![0, 1, 2, 3, 4, 5], 0.9)),
            escalation_rate: 0.4,
            ..inputs()
        });
        assert_eq!(plan.heat, 2, "overclaiming predictor costs one extra entrant");
    }

    #[test]
    fn saturated_pool_degrades_to_single_slice() {
        let plan = plan_race(SchedulerInputs { idle_workers: 0, ..inputs() });
        assert_eq!(plan.slices, 1);
        let tight = plan_race(SchedulerInputs { entrants: 2, idle_workers: 2, ..inputs() });
        assert_eq!(tight.slices, 1, "no spare beyond one worker per entrant");
    }

    #[test]
    fn small_queries_never_slice() {
        let plan = plan_race(SchedulerInputs { query_nodes: 3, entrants: 2, ..inputs() });
        assert_eq!(plan.slices, 1);
    }

    #[test]
    fn max_slices_one_disables_slicing() {
        let plan = plan_race(SchedulerInputs { max_slices: 1, entrants: 2, ..inputs() });
        assert_eq!(plan.slices, 1);
    }

    #[test]
    fn heat_never_exceeds_field() {
        let plan = plan_race(SchedulerInputs {
            entrants: 1,
            ranking: Some((vec![0], 0.1)),
            escalation_rate: 1.0,
            ..inputs()
        });
        assert_eq!(plan.heat, 1);
        assert_eq!(plan.order, vec![0]);
    }

    #[test]
    fn malformed_ranking_falls_back_to_full_field() {
        let plan = plan_race(SchedulerInputs {
            ranking: Some((vec![0, 1], 0.9)), // wrong length for 6 entrants
            ..inputs()
        });
        assert_eq!(plan.heat, 6);
        assert_eq!(plan.order, vec![0, 1, 2, 3, 4, 5]);
    }
}
