//! # psi-rewrite — isomorphic query rewritings (§6 of the paper)
//!
//! A *rewriting* produces a graph isomorphic to the query (same structure
//! and labels) by permuting its node IDs. Because every matcher breaks
//! heuristic ties by node ID, the rewriting changes the search order — and,
//! per the paper's Observation 2/4, can turn a straggler query into an easy
//! one.
//!
//! The five rewritings of §6, plus the original and seeded-random
//! permutations (used in §5 to quantify isomorphic-instance variance):
//!
//! * **ILF** (Increasing Label Frequency) — nodes sorted by the frequency of
//!   their label *in the stored graph*, rarest first.
//! * **IND** (Increasing Node Degree) — nodes sorted by query degree,
//!   smallest first.
//! * **DND** (Decreasing Node Degree) — largest degree first.
//! * **ILF+IND** — ILF with IND tie-breaking.
//! * **ILF+DND** — ILF with DND tie-breaking.
//!
//! The paper breaks remaining ties "arbitrarily"; we break them by original
//! node ID, which keeps every rewriting deterministic and reproducible.
//!
//! ```
//! use psi_graph::{graph::graph_from_parts, LabelStats};
//! use psi_rewrite::{rewrite_query, Rewriting};
//!
//! // Stored graph: label 0 is common, label 1 is rare.
//! let stored = graph_from_parts(&[0, 0, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
//! let stats = LabelStats::from_graph(&stored);
//!
//! // Query: frequent-label node first — bad for matchers that start at
//! // node 0.
//! let query = graph_from_parts(&[0, 1], &[(0, 1)]);
//! let (rewritten, perm) = rewrite_query(&query, &stats, Rewriting::Ilf);
//! // ILF puts the rare label-1 node first.
//! assert_eq!(rewritten.label(0), 1);
//! assert_eq!(perm.map(1), 0);
//! ```

use psi_graph::{Graph, LabelStats, NodeId, Permutation};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The query rewritings of §6, plus `Orig` (identity) and `Random` (a seeded
/// uniformly random node-ID permutation, used for the §5 isomorphic-instance
/// experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rewriting {
    /// The query as given (identity permutation).
    Orig,
    /// Increasing Label Frequency (rarest stored-graph label first).
    Ilf,
    /// Increasing Node Degree.
    Ind,
    /// Decreasing Node Degree.
    Dnd,
    /// ILF with IND tie-breaking.
    IlfInd,
    /// ILF with DND tie-breaking.
    IlfDnd,
    /// Uniformly random permutation from the given seed.
    Random(u64),
}

impl Rewriting {
    /// The five proposed rewritings of §6 (everything except `Orig` and
    /// `Random`), in the order the paper lists them.
    pub const PROPOSED: [Rewriting; 5] =
        [Rewriting::Ilf, Rewriting::Ind, Rewriting::Dnd, Rewriting::IlfInd, Rewriting::IlfDnd];

    /// Short name as used in the paper's figures.
    pub fn name(self) -> String {
        match self {
            Rewriting::Orig => "Orig".into(),
            Rewriting::Ilf => "ILF".into(),
            Rewriting::Ind => "IND".into(),
            Rewriting::Dnd => "DND".into(),
            Rewriting::IlfInd => "ILF+IND".into(),
            Rewriting::IlfDnd => "ILF+DND".into(),
            Rewriting::Random(seed) => format!("RND({seed})"),
        }
    }

    /// Computes this rewriting's node-ID permutation for `query`.
    ///
    /// `stats` must be the label statistics of the **stored** graph (or
    /// whole stored database) — the ILF family sorts by stored-graph label
    /// frequency, not query label frequency (§6: "we compute the frequencies
    /// of node labels in the stored graph").
    pub fn permutation(self, query: &Graph, stats: &LabelStats) -> Permutation {
        let n = query.node_count();
        match self {
            Rewriting::Orig => Permutation::identity(n),
            Rewriting::Random(seed) => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                Permutation::random(n, &mut rng)
            }
            _ => {
                let mut order: Vec<NodeId> = (0..n as NodeId).collect();
                match self {
                    Rewriting::Ilf => order.sort_by_key(|&v| (stats.frequency(query.label(v)), v)),
                    Rewriting::Ind => order.sort_by_key(|&v| (query.degree(v), v)),
                    Rewriting::Dnd => {
                        order.sort_by_key(|&v| (std::cmp::Reverse(query.degree(v)), v))
                    }
                    Rewriting::IlfInd => order
                        .sort_by_key(|&v| (stats.frequency(query.label(v)), query.degree(v), v)),
                    Rewriting::IlfDnd => order.sort_by_key(|&v| {
                        (stats.frequency(query.label(v)), std::cmp::Reverse(query.degree(v)), v)
                    }),
                    Rewriting::Orig | Rewriting::Random(_) => unreachable!("handled above"),
                }
                Permutation::from_order(&order).expect("sorted 0..n is a permutation")
            }
        }
    }
}

impl fmt::Display for Rewriting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// Applies `rewriting` to `query`, returning the isomorphic rewritten query
/// together with the old→new permutation (whose inverse converts embeddings
/// of the rewritten query back to the original's node numbering).
pub fn rewrite_query(
    query: &Graph,
    stats: &LabelStats,
    rewriting: Rewriting,
) -> (Graph, Permutation) {
    let perm = rewriting.permutation(query, stats);
    (perm.apply_to(query), perm)
}

/// Translates an embedding of the *rewritten* query back into the original
/// query's node numbering: `result[orig_node] = embedding[perm.map(orig_node)]`.
pub fn embedding_for_original(embedding: &[NodeId], perm: &Permutation) -> Vec<NodeId> {
    (0..embedding.len()).map(|orig| embedding[perm.map(orig as NodeId) as usize]).collect()
}

/// Generates `k` distinct-seed random isomorphic instances of a query
/// (the §5 experiment uses 6 per query).
pub fn random_instances(query: &Graph, k: usize, base_seed: u64) -> Vec<(Graph, Permutation)> {
    (0..k as u64)
        .map(|i| {
            let perm =
                Rewriting::Random(base_seed.wrapping_add(i)).permutation(query, &LabelStats::new());
            (perm.apply_to(query), perm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;
    use psi_graph::permute::is_isomorphism_witness;

    /// The paper's Fig. 5 example: a 7-node query with labels A, A, A, B,
    /// B, C, C and stored-graph frequencies A=20, B=15, C=10.
    fn fig5_query() -> Graph {
        graph_from_parts(
            &[0, 0, 0, 1, 1, 2, 2], // A=0, B=1, C=2
            &[(0, 1), (0, 3), (1, 2), (1, 4), (2, 5), (3, 6), (4, 5)],
        )
    }

    fn fig5_stats() -> LabelStats {
        // Stored-graph frequencies from the Fig. 5 caption: A=20, B=15, C=10.
        let mut labels = Vec::new();
        labels.extend(std::iter::repeat_n(0, 20));
        labels.extend(std::iter::repeat_n(1, 15));
        labels.extend(std::iter::repeat_n(2, 10));
        LabelStats::from_graph(&graph_from_parts(&labels, &[]))
    }

    #[test]
    fn all_rewritings_produce_isomorphic_graphs() {
        let q = fig5_query();
        let stats = fig5_stats();
        for rw in Rewriting::PROPOSED.into_iter().chain([Rewriting::Orig, Rewriting::Random(7)]) {
            let (rq, perm) = rewrite_query(&q, &stats, rw);
            assert!(is_isomorphism_witness(&q, &rq, &perm), "{rw} must be an isomorphism");
        }
    }

    #[test]
    fn ilf_orders_rare_labels_first() {
        let q = fig5_query();
        let (rq, _) = rewrite_query(&q, &fig5_stats(), Rewriting::Ilf);
        // New ids 0..: C,C (freq 10), then B,B (15), then A,A,A (20).
        let labels: Vec<u32> = rq.nodes().map(|v| rq.label(v)).collect();
        assert_eq!(labels, vec![2, 2, 1, 1, 0, 0, 0]);
    }

    #[test]
    fn ind_orders_small_degrees_first() {
        let q = fig5_query();
        let (rq, _) = rewrite_query(&q, &fig5_stats(), Rewriting::Ind);
        let degs: Vec<usize> = rq.nodes().map(|v| rq.degree(v)).collect();
        let mut sorted = degs.clone();
        sorted.sort_unstable();
        assert_eq!(degs, sorted, "degrees must be non-decreasing in new id order");
    }

    #[test]
    fn dnd_orders_large_degrees_first() {
        let q = fig5_query();
        let (rq, _) = rewrite_query(&q, &fig5_stats(), Rewriting::Dnd);
        let degs: Vec<usize> = rq.nodes().map(|v| rq.degree(v)).collect();
        let mut sorted = degs.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(degs, sorted, "degrees must be non-increasing in new id order");
    }

    #[test]
    fn ilf_ind_breaks_frequency_ties_by_degree() {
        let q = fig5_query();
        let stats = fig5_stats();
        let (rq, _) = rewrite_query(&q, &stats, Rewriting::IlfInd);
        let mut prev: Option<(u64, usize)> = None;
        for v in rq.nodes() {
            let key = (stats.frequency(rq.label(v)), rq.degree(v));
            if let Some(p) = prev {
                assert!(p <= key, "ILF+IND violated at node {v}: {p:?} then {key:?}");
            }
            prev = Some(key);
        }
    }

    #[test]
    fn ilf_dnd_breaks_frequency_ties_by_decreasing_degree() {
        let q = fig5_query();
        let stats = fig5_stats();
        let (rq, _) = rewrite_query(&q, &stats, Rewriting::IlfDnd);
        let mut prev: Option<(u64, std::cmp::Reverse<usize>)> = None;
        for v in rq.nodes() {
            let key = (stats.frequency(rq.label(v)), std::cmp::Reverse(rq.degree(v)));
            if let Some(ref p) = prev {
                assert!(*p <= key, "ILF+DND violated at node {v}");
            }
            prev = Some(key);
        }
    }

    #[test]
    fn orig_is_identity() {
        let q = fig5_query();
        let (rq, perm) = rewrite_query(&q, &fig5_stats(), Rewriting::Orig);
        assert_eq!(q, rq);
        assert!(perm.is_identity());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let q = fig5_query();
        let s = fig5_stats();
        let (a, _) = rewrite_query(&q, &s, Rewriting::Random(5));
        let (b, _) = rewrite_query(&q, &s, Rewriting::Random(5));
        let (c, _) = rewrite_query(&q, &s, Rewriting::Random(6));
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely for 7 nodes
    }

    #[test]
    fn random_instances_distinct_seeds() {
        let q = fig5_query();
        let instances = random_instances(&q, 6, 100);
        assert_eq!(instances.len(), 6);
        for (g, p) in &instances {
            assert!(is_isomorphism_witness(&q, g, p));
        }
    }

    #[test]
    fn embedding_translation_roundtrip() {
        let q = fig5_query();
        let stats = fig5_stats();
        let (rq, perm) = rewrite_query(&q, &stats, Rewriting::IlfDnd);
        // Identity "embedding" of the rewritten query into itself.
        let emb: Vec<NodeId> = (0..rq.node_count() as NodeId).collect();
        let back = embedding_for_original(&emb, &perm);
        // back[orig] = perm.map(orig): original node orig maps to its new id.
        for orig in q.nodes() {
            assert_eq!(back[orig as usize], perm.map(orig));
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(Rewriting::Ilf.name(), "ILF");
        assert_eq!(Rewriting::IlfDnd.name(), "ILF+DND");
        assert_eq!(Rewriting::Random(3).to_string(), "RND(3)");
        assert_eq!(Rewriting::PROPOSED.len(), 5);
    }

    #[test]
    fn empty_and_singleton_queries() {
        let stats = fig5_stats();
        let empty = graph_from_parts(&[], &[]);
        let single = graph_from_parts(&[1], &[]);
        for rw in Rewriting::PROPOSED {
            let (e, _) = rewrite_query(&empty, &stats, rw);
            assert_eq!(e.node_count(), 0);
            let (s, _) = rewrite_query(&single, &stats, rw);
            assert_eq!(s.label(0), 1);
        }
    }

    #[test]
    fn rewriting_preserves_matcher_answers() {
        use psi_matchers_oracle::check;
        check();
    }

    /// Tiny inline "oracle": rewritten queries must have the same embedding
    /// count as the original under brute-force matching. Kept dependency-free
    /// by doing the brute force inline (psi-matchers depends on psi-graph,
    /// not on us, so we avoid a cycle).
    mod psi_matchers_oracle {
        use super::super::*;
        use psi_graph::graph::graph_from_parts;

        fn count_embeddings(q: &Graph, t: &Graph) -> usize {
            fn bt(
                q: &Graph,
                t: &Graph,
                depth: NodeId,
                asn: &mut Vec<NodeId>,
                used: &mut Vec<bool>,
            ) -> usize {
                if depth as usize == q.node_count() {
                    return 1;
                }
                let mut total = 0;
                for cand in t.nodes() {
                    if used[cand as usize] || t.label(cand) != q.label(depth) {
                        continue;
                    }
                    let ok = q
                        .neighbors(depth)
                        .iter()
                        .all(|&qn| qn >= depth || t.has_edge(asn[qn as usize], cand));
                    if !ok {
                        continue;
                    }
                    asn[depth as usize] = cand;
                    used[cand as usize] = true;
                    total += bt(q, t, depth + 1, asn, used);
                    used[cand as usize] = false;
                }
                total
            }
            let mut asn = vec![0; q.node_count()];
            let mut used = vec![false; t.node_count()];
            bt(q, t, 0, &mut asn, &mut used)
        }

        pub fn check() {
            let t = graph_from_parts(
                &[0, 0, 1, 1, 2, 2],
                &[(0, 2), (2, 4), (4, 1), (1, 3), (3, 5), (5, 0), (0, 3)],
            );
            let stats = LabelStats::from_graph(&t);
            let q = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
            let want = count_embeddings(&q, &t);
            for rw in Rewriting::PROPOSED.into_iter().chain([Rewriting::Random(1)]) {
                let (rq, _) = rewrite_query(&q, &stats, rw);
                assert_eq!(count_embeddings(&rq, &t), want, "{rw}");
            }
        }
    }
}
