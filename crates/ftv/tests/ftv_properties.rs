//! Property tests for the FTV layer: feature-count monotonicity (the
//! soundness backbone of the filters), trie consistency with direct
//! extraction, and Grapes/GGSX cross-agreement.

use proptest::prelude::*;
use psi_ftv::paths::{extract_features, query_feature_counts};
use psi_ftv::{GgsxIndex, GrapesIndex, GraphDb};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::Graph;
use psi_matchers::SearchBudget;
use psi_workload::QueryGen;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rand_graph(seed: u64, n: usize, m: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    random_connected_graph(n, m, &labels, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Subgraph monotonicity: a query grown *from* a graph has feature
    /// counts dominated by that graph's counts, for every max path length.
    /// This is the exact condition making the count filter sound.
    #[test]
    fn prop_feature_counts_monotone(seed in 0u64..50_000, max_edges in 0usize..4) {
        let g = rand_graph(seed, 16, 26);
        if let Some(q) = QueryGen::new(seed ^ 1).query_from_graph(&g, 5) {
            let gfeat = extract_features(&g, max_edges);
            for (feat, qcount) in query_feature_counts(&q, max_edges) {
                let gcount = gfeat.get(&feat).map_or(0, |o| o.count);
                prop_assert!(
                    qcount <= gcount,
                    "feature {:?}: query {} > graph {}", feat, qcount, gcount
                );
            }
        }
    }

    /// Location lists are consistent: every recorded location really starts
    /// at least one path with that label sequence (checked via label of the
    /// start node = first label of the feature).
    #[test]
    fn prop_locations_start_with_feature_head(seed in 0u64..50_000) {
        let g = rand_graph(seed, 12, 18);
        for (feat, occ) in extract_features(&g, 3) {
            for &loc in &occ.locations {
                prop_assert_eq!(g.label(loc), feat[0], "location label mismatch");
            }
            prop_assert!(occ.count as usize >= occ.locations.len().min(1));
        }
    }

    /// Grapes and GGSX return identical decision answers on random
    /// databases (they differ in speed, never in answers).
    #[test]
    fn prop_engines_agree(seed in 0u64..20_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let db = GraphDb::new(
            (0..4).map(|_| random_connected_graph(12, 18, &labels, &mut rng)).collect(),
        );
        let grapes = GrapesIndex::build(&db, 3, 1);
        let ggsx = GgsxIndex::build(&db, 3);
        let graphs: Vec<Graph> = db.iter().map(|(_, g)| (**g).clone()).collect();
        if let Some((_, q)) = QueryGen::new(seed ^ 2).query_from_db(&graphs, 4) {
            let a = grapes.query(&q, &SearchBudget::first_match()).matching_graphs;
            let b = ggsx.query(&q, &SearchBudget::first_match()).matching_graphs;
            prop_assert_eq!(a, b);
        }
    }

    /// Verification through the index agrees with direct VF2 on the stored
    /// graph (the index must never change answers, only skip work).
    #[test]
    fn prop_verify_graph_agrees_with_vf2(seed in 0u64..20_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let db = GraphDb::new(
            (0..3).map(|_| random_connected_graph(12, 18, &labels, &mut rng)).collect(),
        );
        let grapes = GrapesIndex::build(&db, 3, 1);
        let query = random_connected_graph(4, 4, &labels, &mut rng);
        for (gid, g) in db.iter() {
            let direct =
                psi_matchers::vf2::vf2_search(&query, g, &SearchBudget::first_match()).found();
            let via_index =
                grapes.verify_graph(&query, gid, &SearchBudget::first_match()).found();
            prop_assert_eq!(via_index, direct, "graph {}", gid);
        }
    }
}
