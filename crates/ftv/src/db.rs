//! The multi-graph database queried by FTV systems, and common outcome
//! types.

use psi_graph::{Graph, LabelStats};
use psi_matchers::StopReason;
use std::sync::Arc;
use std::time::Duration;

/// Index of a stored graph within a [`GraphDb`].
pub type GraphId = usize;

/// An immutable database of stored graphs (the FTV datasets of Table 1 hold
/// 20–1000 of them).
#[derive(Debug, Clone)]
pub struct GraphDb {
    graphs: Vec<Arc<Graph>>,
}

impl GraphDb {
    /// Builds a database from owned graphs.
    pub fn new(graphs: Vec<Graph>) -> Self {
        Self { graphs: graphs.into_iter().map(Arc::new).collect() }
    }

    /// Builds a database from shared graphs.
    pub fn from_shared(graphs: Vec<Arc<Graph>>) -> Self {
        Self { graphs }
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The stored graph with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn graph(&self, id: GraphId) -> &Arc<Graph> {
        &self.graphs[id]
    }

    /// Iterator over `(id, graph)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Arc<Graph>)> {
        self.graphs.iter().enumerate()
    }

    /// Label statistics aggregated over the whole database (input to the
    /// ILF rewriting family when querying FTV datasets).
    pub fn label_stats(&self) -> LabelStats {
        LabelStats::from_graphs(self.graphs.iter().map(|g| g.as_ref()))
    }
}

/// Outcome of one FTV query over the whole database.
#[derive(Debug, Clone)]
pub struct FtvOutcome {
    /// IDs of stored graphs verified to contain the query, ascending.
    pub matching_graphs: Vec<GraphId>,
    /// Number of graphs that survived filtering (and thus went to
    /// verification).
    pub candidates: usize,
    /// Number of graphs pruned by the index filter.
    pub pruned: usize,
    /// How the query ended: `Complete` if every candidate was resolved,
    /// otherwise the first interruption reason encountered.
    pub stop: StopReason,
    /// Number of sub-iso tests executed (Grapes may run several per graph —
    /// one per relevant connected component).
    pub subiso_tests: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Pure verification time (the paper's FTV `exec time` metric excludes
    /// the filtering stage, §3.5).
    pub verify_time: Duration,
}

impl FtvOutcome {
    /// Decision-problem answer: is the query contained anywhere?
    pub fn found_any(&self) -> bool {
        !self.matching_graphs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    #[test]
    fn db_basics() {
        let db =
            GraphDb::new(vec![graph_from_parts(&[0, 1], &[(0, 1)]), graph_from_parts(&[2], &[])]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.graph(1).label(0), 2);
        assert_eq!(db.iter().count(), 2);
        let stats = db.label_stats();
        assert_eq!(stats.frequency(0), 1);
        assert_eq!(stats.frequency(2), 1);
        assert_eq!(stats.distinct_labels(), 3);
    }

    #[test]
    fn empty_db() {
        let db = GraphDb::new(vec![]);
        assert!(db.is_empty());
        assert_eq!(db.label_stats().distinct_labels(), 0);
    }
}
