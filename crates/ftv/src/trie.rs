//! The path trie shared by the FTV indexes.
//!
//! Grapes indexes paths "in a trie", GGSX "in a suffix tree" (§3.1.1). Both
//! map a label sequence to per-graph occurrence data; Grapes additionally
//! stores start locations. The trie is label-keyed per level; lookups walk
//! the label sequence.

use crate::db::GraphId;
use crate::paths::PathFeature;
use psi_graph::{Label, NodeId};
use std::collections::HashMap;

/// Per-(feature, graph) posting: occurrence count and (optionally) start
/// locations.
#[derive(Debug, Clone, Default)]
pub struct Posting {
    /// Directed-path occurrence count of the feature in the graph.
    pub count: u32,
    /// Distinct start nodes (empty when the index stores no locations).
    pub locations: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct TrieNode {
    children: HashMap<Label, usize>,
    /// graph id → posting for the path ending at this node.
    postings: HashMap<GraphId, Posting>,
}

/// A label-path trie holding per-graph postings at every node.
#[derive(Debug)]
pub struct PathTrie {
    nodes: Vec<TrieNode>,
    store_locations: bool,
}

impl PathTrie {
    /// Creates an empty trie; `store_locations` controls whether insert
    /// keeps start-node lists (Grapes) or drops them (GGSX).
    pub fn new(store_locations: bool) -> Self {
        Self { nodes: vec![TrieNode::default()], store_locations }
    }

    /// Whether this trie keeps location information.
    pub fn stores_locations(&self) -> bool {
        self.store_locations
    }

    /// Number of trie nodes (root included). Diagnostic.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts (or merges) a posting for `feature` in `graph`.
    pub fn insert(&mut self, feature: &[Label], graph: GraphId, count: u32, locations: &[NodeId]) {
        let mut cur = 0usize;
        for &l in feature {
            let next = match self.nodes[cur].children.get(&l) {
                Some(&i) => i,
                None => {
                    let i = self.nodes.len();
                    self.nodes.push(TrieNode::default());
                    self.nodes[cur].children.insert(l, i);
                    i
                }
            };
            cur = next;
        }
        let posting = self.nodes[cur].postings.entry(graph).or_default();
        posting.count += count;
        if self.store_locations {
            posting.locations.extend_from_slice(locations);
            posting.locations.sort_unstable();
            posting.locations.dedup();
        }
    }

    /// Looks up the postings of an exact feature, if indexed anywhere.
    pub fn get(&self, feature: &[Label]) -> Option<&HashMap<GraphId, Posting>> {
        let mut cur = 0usize;
        for &l in feature {
            cur = *self.nodes[cur].children.get(&l)?;
        }
        if self.nodes[cur].postings.is_empty() {
            None
        } else {
            Some(&self.nodes[cur].postings)
        }
    }

    /// Occurrence count of `feature` in `graph` (0 if absent).
    pub fn count(&self, feature: &[Label], graph: GraphId) -> u32 {
        self.get(feature).and_then(|p| p.get(&graph)).map_or(0, |p| p.count)
    }

    /// Total number of distinct features stored.
    pub fn feature_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.postings.is_empty()).count()
    }
}

/// Builds a trie over every graph's features.
pub fn build_trie(
    features_per_graph: impl IntoIterator<
        Item = (GraphId, HashMap<PathFeature, crate::paths::FeatureOccurrences>),
    >,
    store_locations: bool,
) -> PathTrie {
    let mut trie = PathTrie::new(store_locations);
    for (gid, features) in features_per_graph {
        for (feat, occ) in features {
            trie.insert(&feat, gid, occ.count, &occ.locations);
        }
    }
    trie
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = PathTrie::new(true);
        t.insert(&[1, 2, 3], 0, 5, &[10, 11]);
        t.insert(&[1, 2], 0, 2, &[10]);
        t.insert(&[1, 2, 3], 1, 1, &[0]);
        assert_eq!(t.count(&[1, 2, 3], 0), 5);
        assert_eq!(t.count(&[1, 2, 3], 1), 1);
        assert_eq!(t.count(&[1, 2], 0), 2);
        assert_eq!(t.count(&[1, 2], 1), 0);
        assert_eq!(t.count(&[9], 0), 0);
        let postings = t.get(&[1, 2, 3]).unwrap();
        assert_eq!(postings[&0].locations, vec![10, 11]);
    }

    #[test]
    fn merge_postings_dedups_locations() {
        let mut t = PathTrie::new(true);
        t.insert(&[4], 0, 1, &[3]);
        t.insert(&[4], 0, 2, &[3, 5]);
        assert_eq!(t.count(&[4], 0), 3);
        assert_eq!(t.get(&[4]).unwrap()[&0].locations, vec![3, 5]);
    }

    #[test]
    fn location_free_trie_drops_locations() {
        let mut t = PathTrie::new(false);
        t.insert(&[4], 0, 1, &[3]);
        assert!(t.get(&[4]).unwrap()[&0].locations.is_empty());
        assert!(!t.stores_locations());
    }

    #[test]
    fn prefix_without_posting_is_none() {
        let mut t = PathTrie::new(true);
        t.insert(&[1, 2, 3], 0, 1, &[0]);
        // [1] and [1,2] exist as trie nodes but carry no postings.
        assert!(t.get(&[1]).is_none());
        assert!(t.get(&[1, 2]).is_none());
        assert!(t.get(&[1, 2, 3]).is_some());
        assert_eq!(t.feature_count(), 1);
    }

    #[test]
    fn empty_feature_is_root() {
        let t = PathTrie::new(true);
        assert!(t.get(&[]).is_none());
        assert_eq!(t.node_count(), 1);
    }
}
