//! Grapes (Giugno et al. — PLoS One 2013).
//!
//! §3.1.1: "Grapes ... index\[es\] the simplest form of features — i.e.,
//! paths — up to a maximum length. Paths are searched in a DFS manner and
//! indexed in a trie ... Compared to GGSX, Grapes takes an additional step
//! and maintains location information. Also, Grapes features multi-threaded
//! design for both indexing and query processing. In query processing,
//! maximal paths of the query are extracted to form the query index which is
//! matched with the dataset index, pruning away unmatched branches.
//! Subsequently, the search space is further pruned by the frequencies of
//! indexed features. ... Grapes further exploits the maintained location
//! information to extract relevant connected components of the dataset
//! graphs, against which sub-iso testing is performed."
//!
//! Per §3.2, the verification VF2 "returns after the first match" (decision
//! semantics). "Grapes/N" denotes this index verifying with an N-thread
//! rayon pool.

use crate::db::{FtvOutcome, GraphDb, GraphId};
use crate::paths::{extract_features, query_feature_counts};
use crate::trie::{build_trie, PathTrie};
use psi_graph::components::{component_ids, induced_subgraph};
use psi_graph::{Graph, NodeId};
use psi_matchers::vf2::vf2_search;
use psi_matchers::{MatchResult, SearchBudget, StopReason};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Default maximum feature-path length in edges ("paths of up to size of 4"
/// = 4 nodes).
pub const DEFAULT_MAX_EDGES: usize = 3;

/// The Grapes index: a location-bearing path trie plus precomputed
/// connected-component structure per stored graph.
pub struct GrapesIndex {
    db: GraphDb,
    trie: PathTrie,
    max_edges: usize,
    threads: usize,
    /// Per graph: component id of every node.
    comp_of_node: Vec<Vec<usize>>,
    /// Per graph: member list of every component.
    comp_members: Vec<Vec<Vec<NodeId>>>,
    /// Persistent verification pool (None for Grapes/1).
    pool: Option<std::sync::Arc<rayon::ThreadPool>>,
    /// Wall-clock time of the index construction.
    pub build_time: Duration,
}

impl GrapesIndex {
    /// Builds the index over `db` with feature paths of up to `max_edges`
    /// edges, verifying with `threads` parallel workers ("Grapes/N").
    ///
    /// Indexing itself is also multithreaded (Grapes' design) when
    /// `threads > 1`.
    pub fn build(db: &GraphDb, max_edges: usize, threads: usize) -> Self {
        assert!(threads >= 1, "need at least one verification thread");
        let t0 = Instant::now();
        let extract =
            |(gid, g): (GraphId, &std::sync::Arc<Graph>)| (gid, extract_features(g, max_edges));
        let pool = (threads > 1).then(|| std::sync::Arc::new(build_pool(threads)));
        let features: Vec<_> = if let Some(pool) = &pool {
            use rayon::prelude::*;
            let items: Vec<_> = db.iter().collect();
            pool.install(|| items.into_par_iter().map(extract).collect())
        } else {
            db.iter().map(extract).collect()
        };
        let trie = build_trie(features, true);
        let mut comp_of_node = Vec::with_capacity(db.len());
        let mut comp_members = Vec::with_capacity(db.len());
        for (_, g) in db.iter() {
            let ids = component_ids(g);
            let ncomp = ids.iter().copied().max().map_or(0, |m| m + 1);
            let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); ncomp];
            for (v, &c) in ids.iter().enumerate() {
                members[c].push(v as NodeId);
            }
            comp_of_node.push(ids);
            comp_members.push(members);
        }
        Self {
            db: db.clone(),
            trie,
            max_edges,
            threads,
            comp_of_node,
            comp_members,
            pool,
            build_time: t0.elapsed(),
        }
    }

    /// The database this index serves.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// Configured verification parallelism (the "/N" in Grapes/N).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Feature path length (edges) used at build time.
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    /// Number of distinct indexed features. Diagnostic.
    pub fn feature_count(&self) -> usize {
        self.trie.feature_count()
    }

    /// Filtering stage: returns, for each surviving candidate graph, the
    /// relevant component ids (components containing at least one location
    /// of *every* query feature). Graphs failing the count filter are
    /// pruned.
    pub fn filter(&self, query: &Graph) -> Vec<(GraphId, Vec<usize>)> {
        let qfeat = query_feature_counts(query, self.max_edges);
        if qfeat.is_empty() {
            // Empty query: vacuously contained in every graph.
            return self.db.iter().map(|(gid, _)| (gid, Vec::new())).collect();
        }
        // A connected query must put *every* feature inside the matched
        // component (intersect masks); a disconnected query only needs each
        // feature somewhere (union masks).
        let intersect = psi_graph::components::is_connected(query);
        let mut survivors: Option<HashMap<GraphId, Vec<bool>>> = None; // gid → comp bitmask
        for (feat, qcount) in &qfeat {
            let Some(postings) = self.trie.get(feat) else {
                return Vec::new(); // feature absent from every graph
            };
            let mut next: HashMap<GraphId, Vec<bool>> = HashMap::new();
            for (&gid, posting) in postings {
                if posting.count < *qcount {
                    continue;
                }
                if let Some(prev) = &survivors {
                    if !prev.contains_key(&gid) {
                        continue;
                    }
                }
                // Components touched by this feature's locations.
                let ncomp = self.comp_members[gid].len();
                let mut touched = vec![false; ncomp];
                for &loc in &posting.locations {
                    touched[self.comp_of_node[gid][loc as usize]] = true;
                }
                match &survivors {
                    None => {
                        next.insert(gid, touched);
                    }
                    Some(prev) => {
                        let mut merged = prev[&gid].clone();
                        for (m, t) in merged.iter_mut().zip(&touched) {
                            *m = if intersect { *m && *t } else { *m || *t };
                        }
                        if merged.iter().any(|&b| b) {
                            next.insert(gid, merged);
                        }
                    }
                }
            }
            survivors = Some(next);
            if survivors.as_ref().is_some_and(HashMap::is_empty) {
                return Vec::new();
            }
        }
        let mut out: Vec<(GraphId, Vec<usize>)> = survivors
            .unwrap_or_default()
            .into_iter()
            .map(|(gid, mask)| {
                let comps = mask
                    .iter()
                    .enumerate()
                    .filter_map(|(c, &b)| b.then_some(c))
                    .collect::<Vec<_>>();
                (gid, comps)
            })
            .filter(|(_, comps)| !comps.is_empty())
            .collect();
        out.sort_unstable();
        out
    }

    /// Verifies `query` against a single stored graph (the per-pair
    /// experiment primitive of §4: "we execute each individual query against
    /// a single stored graph at a time"). Runs the filter for that graph,
    /// extracts relevant components and sub-iso tests them with VF2,
    /// honoring `budget`.
    pub fn verify_graph(&self, query: &Graph, gid: GraphId, budget: &SearchBudget) -> MatchResult {
        let comps = self.relevant_components(query, gid);
        self.verify_components(query, gid, &comps, budget)
    }

    /// Relevant component ids of `gid` for `query` (empty if the graph is
    /// pruned by the count filter).
    pub fn relevant_components(&self, query: &Graph, gid: GraphId) -> Vec<usize> {
        let qfeat = query_feature_counts(query, self.max_edges);
        if qfeat.is_empty() {
            return (0..self.comp_members[gid].len()).collect();
        }
        let ncomp = self.comp_members[gid].len();
        let intersect = psi_graph::components::is_connected(query);
        let mut mask = vec![intersect; ncomp];
        for (feat, qcount) in &qfeat {
            let Some(postings) = self.trie.get(feat) else { return Vec::new() };
            let Some(posting) = postings.get(&gid) else { return Vec::new() };
            if posting.count < *qcount {
                return Vec::new();
            }
            let mut touched = vec![false; ncomp];
            for &loc in &posting.locations {
                touched[self.comp_of_node[gid][loc as usize]] = true;
            }
            for (m, t) in mask.iter_mut().zip(&touched) {
                *m = if intersect { *m && *t } else { *m || *t };
            }
        }
        mask.iter().enumerate().filter_map(|(c, &b)| b.then_some(c)).collect()
    }

    fn verify_components(
        &self,
        query: &Graph,
        gid: GraphId,
        comps: &[usize],
        budget: &SearchBudget,
    ) -> MatchResult {
        let start = Instant::now();
        let g = self.db.graph(gid);
        let mut combined = MatchResult::empty(StopReason::Complete);
        // A connected query lies entirely within one component, so each
        // relevant component can be tested in isolation (Grapes' design).
        // A disconnected query may span several components: test the union.
        if !psi_graph::components::is_connected(query) {
            let members: Vec<NodeId> =
                comps.iter().flat_map(|&c| self.comp_members[gid][c].iter().copied()).collect();
            if members.len() >= query.node_count() {
                let (sub, mapping) = induced_subgraph(g, &members);
                let mut r = vf2_search(query, &sub, budget);
                for emb in &mut r.embeddings {
                    for t in emb.iter_mut() {
                        *t = mapping[*t as usize];
                    }
                }
                r.elapsed = start.elapsed();
                return r;
            }
            combined.elapsed = start.elapsed();
            return combined;
        }
        let eligible: Vec<usize> = comps
            .iter()
            .copied()
            .filter(|&c| self.comp_members[gid][c].len() >= query.node_count())
            .collect();

        // Grapes' multithreaded verification: with a pool, independent
        // relevant components are sub-iso tested in parallel. When the
        // caller races rewritings (its budget already carries a cancel
        // token) we stay sequential — the race owns the parallelism.
        if let (Some(pool), true, None) = (&self.pool, eligible.len() > 1, &budget.cancel) {
            use rayon::prelude::*;
            let sibling = psi_matchers::CancelToken::new();
            let first_match_mode = budget.max_matches == 1;
            let results: Vec<MatchResult> = pool.install(|| {
                eligible
                    .par_iter()
                    .map(|&c| {
                        let b = budget.clone().cancellable(sibling.clone());
                        let r = self.verify_one_component(query, gid, c, &b);
                        if first_match_mode && r.found() {
                            sibling.cancel();
                        }
                        r
                    })
                    .collect()
            });
            let any_found = results.iter().any(MatchResult::found);
            for res in results {
                combined.stats.nodes_expanded += res.stats.nodes_expanded;
                combined.stats.candidates_pruned += res.stats.candidates_pruned;
                combined.stats.backtracks += res.stats.backtracks;
                combined.embeddings.extend(res.embeddings);
                // A sibling cancelled because the answer was found is not a
                // failure; only propagate genuine interruptions.
                if !res.stop.is_conclusive()
                    && (res.stop != StopReason::Cancelled || !any_found)
                    && combined.stop == StopReason::Complete
                {
                    combined.stop = res.stop;
                }
            }
            combined.embeddings.truncate(budget.max_matches);
            combined.num_matches = combined.embeddings.len();
            if combined.num_matches >= budget.max_matches && combined.stop == StopReason::Complete {
                combined.stop = StopReason::MatchLimit;
            }
            combined.elapsed = start.elapsed();
            return combined;
        }

        for c in eligible {
            let res = self.verify_one_component(query, gid, c, budget);
            combined.stats.nodes_expanded += res.stats.nodes_expanded;
            combined.stats.candidates_pruned += res.stats.candidates_pruned;
            combined.stats.backtracks += res.stats.backtracks;
            combined.embeddings.extend(res.embeddings);
            combined.num_matches = combined.embeddings.len();
            if !res.stop.is_conclusive() {
                combined.stop = res.stop;
                break;
            }
            if combined.num_matches >= budget.max_matches {
                combined.stop = StopReason::MatchLimit;
                break;
            }
        }
        combined.elapsed = start.elapsed();
        combined
    }

    /// Sub-iso tests one relevant component (VF2 on the induced subgraph,
    /// embeddings remapped to whole-graph node ids).
    fn verify_one_component(
        &self,
        query: &Graph,
        gid: GraphId,
        c: usize,
        budget: &SearchBudget,
    ) -> MatchResult {
        let g = self.db.graph(gid);
        let members = &self.comp_members[gid][c];
        if members.len() == g.node_count() {
            return vf2_search(query, g, budget);
        }
        let (sub, mapping) = induced_subgraph(g, members);
        let mut r = vf2_search(query, &sub, budget);
        for emb in &mut r.embeddings {
            for t in emb.iter_mut() {
                *t = mapping[*t as usize];
            }
        }
        r
    }

    /// Full query pipeline over the whole database: filter, then verify
    /// every candidate (first match per graph), using the configured thread
    /// pool when `threads > 1`.
    pub fn query(&self, query: &Graph, budget: &SearchBudget) -> FtvOutcome {
        let t0 = Instant::now();
        let candidates = self.filter(query);
        let filter_time = t0.elapsed();
        if query.node_count() == 0 {
            return FtvOutcome {
                matching_graphs: candidates.iter().map(|&(g, _)| g).collect(),
                candidates: self.db.len(),
                pruned: 0,
                stop: StopReason::Complete,
                subiso_tests: 0,
                elapsed: t0.elapsed(),
                verify_time: Duration::ZERO,
            };
        }
        let pruned = self.db.len() - candidates.len();
        let v0 = Instant::now();
        let verify = |(gid, comps): &(GraphId, Vec<usize>)| {
            let r = self.verify_components(query, *gid, comps, budget);
            (*gid, comps.len(), r)
        };
        let results: Vec<(GraphId, usize, MatchResult)> = if let Some(pool) = &self.pool {
            use rayon::prelude::*;
            pool.install(|| candidates.par_iter().map(verify).collect())
        } else {
            candidates.iter().map(verify).collect()
        };
        let mut matching = Vec::new();
        let mut stop = StopReason::Complete;
        let mut tests = 0usize;
        for (gid, ncomp, r) in results {
            tests += ncomp;
            if r.found() {
                matching.push(gid);
            }
            if !r.stop.is_conclusive() && !r.found() && stop == StopReason::Complete {
                stop = r.stop;
            }
        }
        matching.sort_unstable();
        FtvOutcome {
            matching_graphs: matching,
            candidates: candidates.len(),
            pruned,
            stop,
            subiso_tests: tests,
            elapsed: filter_time + v0.elapsed(),
            verify_time: v0.elapsed(),
        }
    }
}

/// Builds a rayon pool with exactly `threads` workers.
fn build_pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("thread pool construction cannot fail with valid size")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    fn sample_db() -> GraphDb {
        GraphDb::new(vec![
            // 0: path 0-1-2 labels a,b,c
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
            // 1: two components: a-b and c
            graph_from_parts(&[0, 1, 2], &[(0, 1)]),
            // 2: triangle a,b,c
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
        ])
    }

    #[test]
    fn filter_prunes_by_feature_presence() {
        let idx = GrapesIndex::build(&sample_db(), 3, 1);
        // Query a-b-c path: graphs 0 and 2 have it; graph 1 lacks feature [0,1,2].
        let q = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        let cands: Vec<GraphId> = idx.filter(&q).into_iter().map(|(g, _)| g).collect();
        assert_eq!(cands, vec![0, 2]);
    }

    #[test]
    fn query_returns_containing_graphs() {
        let idx = GrapesIndex::build(&sample_db(), 3, 1);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]);
        let out = idx.query(&q, &SearchBudget::first_match());
        assert_eq!(out.matching_graphs, vec![0, 1, 2]);
        assert_eq!(out.stop, StopReason::Complete);
        let q2 = graph_from_parts(&[0, 2], &[(0, 1)]);
        let out2 = idx.query(&q2, &SearchBudget::first_match());
        assert_eq!(out2.matching_graphs, vec![2]); // only the triangle has a-c edge
        assert!(out2.pruned >= 1, "feature filter should prune");
    }

    #[test]
    fn multithreaded_matches_singlethreaded() {
        let db = sample_db();
        let idx1 = GrapesIndex::build(&db, 3, 1);
        let idx4 = GrapesIndex::build(&db, 3, 4);
        for q in [
            graph_from_parts(&[0, 1], &[(0, 1)]),
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from_parts(&[2], &[]),
        ] {
            let a = idx1.query(&q, &SearchBudget::first_match());
            let b = idx4.query(&q, &SearchBudget::first_match());
            assert_eq!(a.matching_graphs, b.matching_graphs);
        }
    }

    #[test]
    fn relevant_components_use_locations() {
        // Graph 1 has components {0,1} (labels a,b) and {2} (label c).
        let idx = GrapesIndex::build(&sample_db(), 3, 1);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]);
        let comps = idx.relevant_components(&q, 1);
        assert_eq!(comps, vec![0], "only the a-b component is relevant");
        let q_c = graph_from_parts(&[2], &[]);
        let comps_c = idx.relevant_components(&q_c, 1);
        assert_eq!(comps_c, vec![1], "only the c component is relevant");
    }

    #[test]
    fn verify_graph_decision() {
        let idx = GrapesIndex::build(&sample_db(), 3, 1);
        let q = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert!(idx.verify_graph(&q, 0, &SearchBudget::first_match()).found());
        assert!(!idx.verify_graph(&q, 1, &SearchBudget::first_match()).found());
        assert!(idx.verify_graph(&q, 2, &SearchBudget::first_match()).found());
    }

    #[test]
    fn component_embeddings_are_remapped_to_graph_ids() {
        // Two components; query matches the second one. Embedding node ids
        // must refer to the original graph, not the extracted component.
        let db = GraphDb::new(vec![graph_from_parts(&[9, 9, 0, 1], &[(0, 1), (2, 3)])]);
        let idx = GrapesIndex::build(&db, 3, 1);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]);
        let r = idx.verify_graph(&q, 0, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 1);
        assert_eq!(r.embeddings[0], vec![2, 3]);
    }

    #[test]
    fn count_filter_respects_multiplicity() {
        // Query needs two disjoint a-b edges; graph 1 has only one.
        let db = GraphDb::new(vec![
            graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (2, 3)]),
            graph_from_parts(&[0, 1, 5], &[(0, 1)]),
        ]);
        let idx = GrapesIndex::build(&db, 3, 1);
        let q = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
        let out = idx.query(&q, &SearchBudget::first_match());
        assert_eq!(out.matching_graphs, vec![0]);
        // Graph 1 must have been pruned by counts, not by verification:
        // its a-b feature count (2 directed) < query's (4 directed).
        assert_eq!(out.candidates, 1);
    }

    #[test]
    fn empty_query_matches_everything() {
        let idx = GrapesIndex::build(&sample_db(), 3, 1);
        let q = graph_from_parts(&[], &[]);
        let out = idx.query(&q, &SearchBudget::first_match());
        assert_eq!(out.matching_graphs, vec![0, 1, 2]);
    }

    #[test]
    fn filtering_is_sound_never_prunes_containing_graph() {
        use psi_matchers::bruteforce;
        let db = sample_db();
        let idx = GrapesIndex::build(&db, 3, 1);
        let queries = [
            graph_from_parts(&[0, 1], &[(0, 1)]),
            graph_from_parts(&[1, 2], &[(0, 1)]),
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from_parts(&[2], &[]),
        ];
        for q in &queries {
            let cands: Vec<GraphId> = idx.filter(q).into_iter().map(|(g, _)| g).collect();
            for (gid, g) in db.iter() {
                if bruteforce::contains(q, g) {
                    assert!(cands.contains(&gid), "graph {gid} pruned but contains query");
                }
            }
        }
    }
}
