//! Path-feature extraction for the FTV indexes.
//!
//! Both Grapes and GGSX "index the simplest form of features — i.e., paths —
//! up to a maximum length ... searched in a DFS manner" (§3.1.1). A feature
//! is the **label sequence** along a simple path. We enumerate *directed*
//! simple paths from every start node (so each undirected path is seen once
//! per direction); since the query side is enumerated by the same procedure
//! and embeddings are injective, `count_query(f) ≤ count_graph(f)` holds for
//! every feature `f` of any contained query — the soundness condition the
//! count-based filter relies on.
//!
//! Path length is measured in **edges**; the paper's "paths of up to size
//! of 4" corresponds to `max_edges = 3` (four nodes), the default used by
//! the index builders.

use psi_graph::{Graph, Label, NodeId};
use std::collections::HashMap;

/// A path feature: the sequence of node labels along a simple path
/// (1 to `max_edges + 1` labels).
pub type PathFeature = Vec<Label>;

/// Per-feature occurrence data for a single graph: total occurrence count
/// and the set of distinct start nodes ("location information" — kept by
/// Grapes, dropped by GGSX).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeatureOccurrences {
    /// Number of directed simple paths with this label sequence.
    pub count: u32,
    /// Sorted distinct start nodes of those paths.
    pub locations: Vec<NodeId>,
}

/// Enumerates all path features of `g` with up to `max_edges` edges,
/// together with counts and start locations.
pub fn extract_features(g: &Graph, max_edges: usize) -> HashMap<PathFeature, FeatureOccurrences> {
    let mut out: HashMap<PathFeature, FeatureOccurrences> = HashMap::new();
    let mut on_path = vec![false; g.node_count()];
    let mut labels: Vec<Label> = Vec::with_capacity(max_edges + 1);
    for start in g.nodes() {
        labels.push(g.label(start));
        on_path[start as usize] = true;
        record(&mut out, &labels, start);
        dfs(g, start, start, max_edges, &mut on_path, &mut labels, &mut out);
        on_path[start as usize] = false;
        labels.pop();
    }
    for occ in out.values_mut() {
        occ.locations.sort_unstable();
        occ.locations.dedup();
    }
    out
}

fn dfs(
    g: &Graph,
    start: NodeId,
    cur: NodeId,
    budget: usize,
    on_path: &mut [bool],
    labels: &mut Vec<Label>,
    out: &mut HashMap<PathFeature, FeatureOccurrences>,
) {
    if budget == 0 {
        return;
    }
    for &nb in g.neighbors(cur) {
        if on_path[nb as usize] {
            continue;
        }
        labels.push(g.label(nb));
        on_path[nb as usize] = true;
        record(out, labels, start);
        dfs(g, start, nb, budget - 1, on_path, labels, out);
        on_path[nb as usize] = false;
        labels.pop();
    }
}

fn record(out: &mut HashMap<PathFeature, FeatureOccurrences>, labels: &[Label], start: NodeId) {
    let e = out.entry(labels.to_vec()).or_default();
    e.count += 1;
    e.locations.push(start);
}

/// Extracts only the query-side feature counts (locations are not needed on
/// the query side).
pub fn query_feature_counts(query: &Graph, max_edges: usize) -> HashMap<PathFeature, u32> {
    extract_features(query, max_edges).into_iter().map(|(f, o)| (f, o.count)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    #[test]
    fn single_node_has_one_feature() {
        let g = graph_from_parts(&[7], &[]);
        let f = extract_features(&g, 3);
        assert_eq!(f.len(), 1);
        assert_eq!(f[&vec![7]].count, 1);
        assert_eq!(f[&vec![7]].locations, vec![0]);
    }

    #[test]
    fn edge_yields_directed_paths() {
        let g = graph_from_parts(&[1, 2], &[(0, 1)]);
        let f = extract_features(&g, 3);
        // Features: [1], [2], [1,2], [2,1].
        assert_eq!(f.len(), 4);
        assert_eq!(f[&vec![1, 2]].count, 1);
        assert_eq!(f[&vec![1, 2]].locations, vec![0]);
        assert_eq!(f[&vec![2, 1]].locations, vec![1]);
    }

    #[test]
    fn path_counts_on_triangle() {
        let g = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        let f = extract_features(&g, 2);
        // Directed length-1 paths: 6 of [0,0]; length-2: 6 of [0,0,0].
        assert_eq!(f[&vec![0, 0]].count, 6);
        assert_eq!(f[&vec![0, 0, 0]].count, 6);
        assert_eq!(f[&vec![0]].count, 3);
        // Every node starts paths of every kind.
        assert_eq!(f[&vec![0, 0, 0]].locations, vec![0, 1, 2]);
    }

    #[test]
    fn max_edges_zero_keeps_only_node_labels() {
        let g = graph_from_parts(&[1, 2], &[(0, 1)]);
        let f = extract_features(&g, 0);
        assert_eq!(f.len(), 2);
        assert!(f.contains_key(&vec![1]));
        assert!(f.contains_key(&vec![2]));
    }

    #[test]
    fn simple_paths_only_no_revisits() {
        // Square: longest simple path from any node has 3 edges.
        let g = graph_from_parts(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let f = extract_features(&g, 5);
        let longest = f.keys().map(|k| k.len()).max().unwrap();
        assert_eq!(longest, 4, "4 nodes max on a 4-cycle");
    }

    #[test]
    fn query_counts_subset_of_graph_counts() {
        // Soundness on a concrete containment pair.
        let t = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let q = graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let fq = query_feature_counts(&q, 3);
        let ft = extract_features(&t, 3);
        for (feat, cq) in fq {
            let cg = ft.get(&feat).map_or(0, |o| o.count);
            assert!(cq <= cg, "feature {feat:?}: query {cq} > graph {cg}");
        }
    }
}
