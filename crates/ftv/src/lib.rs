//! # psi-ftv — filter-then-verify subgraph query systems
//!
//! The two FTV systems evaluated by the paper (§3.1.1), reimplemented over
//! the `psi-graph`/`psi-matchers` substrate:
//!
//! * [`grapes::GrapesIndex`] — Grapes (Giugno et al., PLoS One 2013):
//!   indexes label paths **with location information** in a trie, filters
//!   candidate graphs by feature counts, then extracts only the *relevant
//!   connected components* around matched locations and runs VF2 on them.
//!   Verification is multithreaded ("Grapes/N" in the paper) via rayon.
//! * [`ggsx::GgsxIndex`] — GGSX (Bonnici et al., PRIB 2010): indexes label
//!   paths in a suffix trie **without** locations, filters by feature
//!   counts, and verifies with VF2 against the whole candidate graph.
//!
//! Both systems answer the **decision problem** over a multi-graph database
//! ([`GraphDb`]): which stored graphs contain the query? Per the paper's
//! setup, verification stops at the first embedding per graph (the authors
//! patched Grapes' VF2 to do exactly this, §3.2).
//!
//! ```
//! use psi_ftv::{GraphDb, GrapesIndex};
//! use psi_graph::graph::graph_from_parts;
//! use psi_matchers::SearchBudget;
//!
//! let db = GraphDb::new(vec![
//!     graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
//!     graph_from_parts(&[0, 1], &[(0, 1)]),
//! ]);
//! let index = GrapesIndex::build(&db, 3, 1);
//! let query = graph_from_parts(&[1, 2], &[(0, 1)]);
//! let outcome = index.query(&query, &SearchBudget::first_match());
//! assert_eq!(outcome.matching_graphs, vec![0]); // only graph 0 has a 1-2 edge
//! ```

pub mod db;
pub mod ggsx;
pub mod grapes;
pub mod paths;
pub mod trie;

pub use db::{FtvOutcome, GraphDb, GraphId};
pub use ggsx::GgsxIndex;
pub use grapes::GrapesIndex;
