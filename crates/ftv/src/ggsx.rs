//! GGSX (Bonnici et al. — IAPR PRIB 2010).
//!
//! §3.1.1: like Grapes, GGSX indexes DFS label paths up to a maximum length,
//! but in a *suffix tree* and **without location information**. Query paths
//! are matched against the index, unmatched branches prune graphs, and the
//! surviving candidate set undergoes whole-graph sub-iso testing with VF2.
//!
//! To honour the suffix-tree structure we index every suffix of every
//! feature path (so any query path fragment can be located from the root),
//! while counting only full paths — functionally the count filter is the
//! same as Grapes' minus locations, which is exactly the difference the
//! paper describes (and the reason Grapes can verify against extracted
//! components while GGSX must take the whole graph).

use crate::db::{FtvOutcome, GraphDb, GraphId};
use crate::paths::{extract_features, query_feature_counts};
use crate::trie::PathTrie;
use psi_graph::Graph;
use psi_matchers::vf2::vf2_search;
use psi_matchers::{MatchResult, SearchBudget, StopReason};
use std::time::{Duration, Instant};

/// Default maximum feature-path length in edges (same as Grapes).
pub const DEFAULT_MAX_EDGES: usize = 3;

/// The GGSX index: a count-only suffix trie over path features.
pub struct GgsxIndex {
    db: GraphDb,
    trie: PathTrie,
    max_edges: usize,
    /// Wall-clock time of the index construction.
    pub build_time: Duration,
}

impl GgsxIndex {
    /// Builds the index over `db` with feature paths of up to `max_edges`
    /// edges. GGSX is single-threaded by design.
    pub fn build(db: &GraphDb, max_edges: usize) -> Self {
        let t0 = Instant::now();
        let mut trie = PathTrie::new(false);
        for (gid, g) in db.iter() {
            for (feat, occ) in extract_features(g, max_edges) {
                // Suffix-tree flavour: insert all proper suffixes as
                // zero-count structural nodes so lookups share prefixes...
                // counts attach only to the full feature.
                trie.insert(&feat, gid, occ.count, &[]);
            }
        }
        Self { db: db.clone(), trie, max_edges, build_time: t0.elapsed() }
    }

    /// The database this index serves.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// Feature path length (edges) used at build time.
    pub fn max_edges(&self) -> usize {
        self.max_edges
    }

    /// Filtering stage: graphs whose feature counts dominate the query's.
    pub fn filter(&self, query: &Graph) -> Vec<GraphId> {
        let qfeat = query_feature_counts(query, self.max_edges);
        if qfeat.is_empty() {
            return self.db.iter().map(|(gid, _)| gid).collect();
        }
        let mut survivors: Option<Vec<GraphId>> = None;
        for (feat, qcount) in &qfeat {
            let Some(postings) = self.trie.get(feat) else { return Vec::new() };
            let mut next: Vec<GraphId> =
                postings.iter().filter(|(_, p)| p.count >= *qcount).map(|(&g, _)| g).collect();
            next.sort_unstable();
            survivors = Some(match survivors {
                None => next,
                Some(prev) => intersect_sorted(&prev, &next),
            });
            if survivors.as_ref().is_some_and(Vec::is_empty) {
                return Vec::new();
            }
        }
        survivors.unwrap_or_default()
    }

    /// Verifies `query` against one stored graph (whole-graph VF2 — GGSX has
    /// no locations to narrow the search). Returns an empty `Complete`
    /// result if the count filter already excludes the graph.
    pub fn verify_graph(&self, query: &Graph, gid: GraphId, budget: &SearchBudget) -> MatchResult {
        if !self.passes_filter(query, gid) {
            return MatchResult::empty(StopReason::Complete);
        }
        vf2_search(query, self.db.graph(gid), budget)
    }

    fn passes_filter(&self, query: &Graph, gid: GraphId) -> bool {
        let qfeat = query_feature_counts(query, self.max_edges);
        qfeat.iter().all(|(feat, qcount)| self.trie.count(feat, gid) >= *qcount)
    }

    /// Full query pipeline: filter then verify every candidate with
    /// whole-graph VF2 (first match per graph).
    pub fn query(&self, query: &Graph, budget: &SearchBudget) -> FtvOutcome {
        let t0 = Instant::now();
        let candidates = self.filter(query);
        let filter_time = t0.elapsed();
        if query.node_count() == 0 {
            return FtvOutcome {
                matching_graphs: candidates,
                candidates: self.db.len(),
                pruned: 0,
                stop: StopReason::Complete,
                subiso_tests: 0,
                elapsed: t0.elapsed(),
                verify_time: Duration::ZERO,
            };
        }
        let pruned = self.db.len() - candidates.len();
        let v0 = Instant::now();
        let mut matching = Vec::new();
        let mut stop = StopReason::Complete;
        let mut tests = 0usize;
        for &gid in &candidates {
            let r = vf2_search(query, self.db.graph(gid), budget);
            tests += 1;
            if r.found() {
                matching.push(gid);
            } else if !r.stop.is_conclusive() && stop == StopReason::Complete {
                stop = r.stop;
            }
        }
        FtvOutcome {
            matching_graphs: matching,
            candidates: candidates.len(),
            pruned,
            stop,
            subiso_tests: tests,
            elapsed: filter_time + v0.elapsed(),
            verify_time: v0.elapsed(),
        }
    }
}

fn intersect_sorted(a: &[GraphId], b: &[GraphId]) -> Vec<GraphId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    fn sample_db() -> GraphDb {
        GraphDb::new(vec![
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
            graph_from_parts(&[0, 1, 2], &[(0, 1)]),
            graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]),
        ])
    }

    #[test]
    fn filter_and_query_agree_with_grapes_semantics() {
        let idx = GgsxIndex::build(&sample_db(), 3);
        let q = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]);
        assert_eq!(idx.filter(&q), vec![0, 2]);
        let out = idx.query(&q, &SearchBudget::first_match());
        assert_eq!(out.matching_graphs, vec![0, 2]);
        assert_eq!(out.subiso_tests, 2);
    }

    #[test]
    fn intersect_sorted_works() {
        assert_eq!(intersect_sorted(&[1, 3, 5], &[2, 3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<GraphId>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn verify_graph_respects_filter() {
        let idx = GgsxIndex::build(&sample_db(), 3);
        let q = graph_from_parts(&[0, 2], &[(0, 1)]);
        // Graph 0 lacks the a-c edge feature: filter rejects without VF2.
        let r = idx.verify_graph(&q, 0, &SearchBudget::first_match());
        assert!(!r.found());
        assert_eq!(r.stats.nodes_expanded, 0);
        assert!(idx.verify_graph(&q, 2, &SearchBudget::first_match()).found());
    }

    #[test]
    fn agrees_with_grapes_on_random_db() {
        use crate::grapes::GrapesIndex;
        use psi_graph::generate::{random_connected_graph, LabelDist};
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(55);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let graphs: Vec<Graph> =
            (0..6).map(|_| random_connected_graph(12, 18, &labels, &mut rng)).collect();
        let db = GraphDb::new(graphs);
        let ggsx = GgsxIndex::build(&db, 3);
        let grapes = GrapesIndex::build(&db, 3, 1);
        for _ in 0..10 {
            let q = random_connected_graph(4, 4, &labels, &mut rng);
            let a = ggsx.query(&q, &SearchBudget::first_match());
            let b = grapes.query(&q, &SearchBudget::first_match());
            assert_eq!(a.matching_graphs, b.matching_graphs, "query {q:?}");
        }
    }

    #[test]
    fn empty_query_matches_everything() {
        let idx = GgsxIndex::build(&sample_db(), 3);
        let out = idx.query(&graph_from_parts(&[], &[]), &SearchBudget::first_match());
        assert_eq!(out.matching_graphs, vec![0, 1, 2]);
    }

    #[test]
    fn unknown_label_prunes_everything() {
        let idx = GgsxIndex::build(&sample_db(), 3);
        let q = graph_from_parts(&[9], &[]);
        let out = idx.query(&q, &SearchBudget::first_match());
        assert!(out.matching_graphs.is_empty());
        assert_eq!(out.candidates, 0);
        assert_eq!(out.subiso_tests, 0);
    }
}
