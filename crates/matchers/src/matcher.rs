//! The [`Matcher`] trait and common result types.
//!
//! Each NFV algorithm in this crate is *prepared* once over a stored graph
//! (the paper's "indexing/pre-processing phase", §2.1) and can then run any
//! number of queries against it, possibly concurrently from racing threads
//! (matchers are `Send + Sync` and `search` takes `&self`).

use crate::budget::{SearchBudget, StopReason};
use psi_delta::GraphView;
use psi_graph::{Graph, NodeId, TargetIndex};
use std::sync::Arc;
use std::time::Duration;

/// One embedding of the query: `embedding[q]` is the stored-graph node that
/// query node `q` maps to.
pub type Embedding = Vec<NodeId>;

/// Counters describing the work a search performed; used by the experiment
/// harness for ablation reporting and by tests to assert that pruning
/// actually prunes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of (query node, target node) pair extensions attempted.
    pub nodes_expanded: u64,
    /// Number of candidate pairs rejected by feasibility/pruning rules.
    pub candidates_pruned: u64,
    /// Number of backtracks.
    pub backtracks: u64,
    /// Adjacency probes answered by the shared [`TargetIndex`]'s dense
    /// bitset (`O(1)` fast path).
    pub edge_probes_bitset: u64,
    /// Adjacency probes answered by CSR binary search (no bitset built,
    /// or a scan-mode matcher).
    pub edge_probes_binary: u64,
}

/// Outcome of one search.
#[derive(Debug, Clone)]
pub struct MatchResult {
    /// Embeddings found (at most `budget.max_matches`).
    pub embeddings: Vec<Embedding>,
    /// Number of embeddings found (== `embeddings.len()`).
    pub num_matches: usize,
    /// Why the search stopped.
    pub stop: StopReason,
    /// Work counters.
    pub stats: SearchStats,
    /// Wall-clock duration of the search.
    pub elapsed: Duration,
}

impl MatchResult {
    /// A result carrying no matches, with the given stop reason.
    pub fn empty(stop: StopReason) -> Self {
        Self {
            embeddings: Vec::new(),
            num_matches: 0,
            stop,
            stats: SearchStats::default(),
            elapsed: Duration::ZERO,
        }
    }

    /// Whether at least one embedding was found (the decision problem's
    /// "contained" answer).
    pub fn found(&self) -> bool {
        self.num_matches > 0
    }

    /// Whether the answer is definitive: either we found something, or we
    /// exhausted the space without interruption.
    pub fn is_conclusive(&self) -> bool {
        self.found() || self.stop == StopReason::Complete
    }
}

/// Algorithm identifiers, used for reporting and for configuring Ψ variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Algorithm {
    /// VF2 (Cordella et al. 2004).
    Vf2,
    /// Ullmann (1976).
    Ullmann,
    /// QuickSI (Shang et al. 2008) — "QSI" in the paper.
    QuickSi,
    /// GraphQL (He & Singh 2008) — "GQL" in the paper.
    GraphQl,
    /// sPath (Zhao & Han 2010) — "SPA" in the paper.
    SPath,
}

impl Algorithm {
    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Algorithm::Vf2 => "VF2",
            Algorithm::Ullmann => "ULL",
            Algorithm::QuickSi => "QSI",
            Algorithm::GraphQl => "GQL",
            Algorithm::SPath => "SPA",
        }
    }

    /// All algorithms evaluated as NFV methods in the paper (§3.1.2),
    /// in the order they appear in the figures.
    pub fn paper_nfv() -> [Algorithm; 3] {
        [Algorithm::GraphQl, Algorithm::SPath, Algorithm::QuickSi]
    }

    /// Prepares this algorithm over a stored graph. This runs the
    /// algorithm's indexing phase (label statistics, signatures, ...), so it
    /// can be expensive — do it once per stored graph. Builds a private
    /// [`TargetIndex`]; callers preparing several algorithms over the
    /// *same* graph should build the index once and use
    /// [`Algorithm::prepare_indexed`] instead.
    pub fn prepare(self, target: Arc<Graph>) -> Arc<dyn Matcher> {
        self.prepare_indexed(Arc::new(TargetIndex::build(target)))
    }

    /// Prepares this algorithm over an already-built shared
    /// [`TargetIndex`] — the indexed constructor path. All algorithm
    /// preparation beyond the shared index (e.g. QuickSI's edge
    /// frequencies, sPath's distance signatures) still runs here, but
    /// the label/degree/signature/adjacency structures are the shared
    /// `Arc`, built once per stored graph no matter how many matchers
    /// race over it.
    pub fn prepare_indexed(self, index: Arc<TargetIndex>) -> Arc<dyn Matcher> {
        match self {
            Algorithm::Vf2 => Arc::new(crate::vf2::Vf2::with_index(index)),
            Algorithm::Ullmann => Arc::new(crate::ullmann::Ullmann::with_index(index)),
            Algorithm::QuickSi => Arc::new(crate::quicksi::QuickSi::with_index(index)),
            Algorithm::GraphQl => Arc::new(crate::graphql::GraphQl::with_index(index)),
            Algorithm::SPath => Arc::new(crate::spath::SPath::with_index(index)),
        }
    }

    /// Prepares this algorithm in **legacy scan mode**: the seed,
    /// pre-`TargetIndex` behavior — candidate seeding rescans target
    /// nodes, every adjacency probe is a CSR binary search, and search
    /// buffers are freshly allocated per query. Kept as the reference
    /// implementation for the equivalence property tests and as the
    /// baseline the `indexed_speedup` bench metric races against.
    /// Builds a private bitset-free index; callers preparing several
    /// scan-mode algorithms over the same graph should build that index
    /// once and use [`Algorithm::prepare_legacy_shared`].
    pub fn prepare_legacy(self, target: Arc<Graph>) -> Arc<dyn Matcher> {
        self.prepare_legacy_shared(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built bitset-free index. The
    /// scan-mode matchers ignore the index's derived structures wherever
    /// the seed rescanned (so per-query behavior is unchanged); sharing
    /// only avoids rebuilding the graph-derived state per algorithm at
    /// preparation time.
    pub fn prepare_legacy_shared(self, index: Arc<TargetIndex>) -> Arc<dyn Matcher> {
        match self {
            Algorithm::Vf2 => Arc::new(crate::vf2::Vf2::legacy_with_index(index)),
            Algorithm::Ullmann => Arc::new(crate::ullmann::Ullmann::legacy_with_index(index)),
            Algorithm::QuickSi => Arc::new(crate::quicksi::QuickSi::legacy_with_index(index)),
            Algorithm::GraphQl => Arc::new(crate::graphql::GraphQl::legacy_with_index(index)),
            Algorithm::SPath => Arc::new(crate::spath::SPath::legacy_with_index(index)),
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A subgraph-isomorphism engine prepared over one stored graph.
pub trait Matcher: Send + Sync {
    /// The algorithm this matcher implements.
    fn algorithm(&self) -> Algorithm;

    /// The stored graph this matcher was prepared over.
    fn target(&self) -> &Graph;

    /// The target index this matcher probes. Matchers prepared through
    /// [`Algorithm::prepare_indexed`] share one `Arc` per stored graph;
    /// legacy scan-mode matchers hold a private bitset-free index.
    fn index(&self) -> &Arc<TargetIndex>;

    /// Finds embeddings of `query` in the stored graph, subject to `budget`.
    ///
    /// Returns all found embeddings (each a query-node → target-node map).
    /// Implementations must check the budget cooperatively so that races can
    /// cancel them promptly.
    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult;

    /// Like [`Matcher::search`], but against an explicit [`GraphView`] —
    /// the live-graph entry point. The view's base graph must be the
    /// graph this matcher was prepared over (same epoch); the view may
    /// additionally carry a delta overlay, which the matcher's inner
    /// loops probe for touched nodes. A view without an overlay makes
    /// this equivalent to [`Matcher::search`].
    fn search_view(&self, query: &Graph, view: GraphView<'_>, budget: &SearchBudget)
        -> MatchResult;

    /// Prepares a sliceable search session over `view`: prework runs here
    /// (candidate filtering, plan/sequence construction), after which the
    /// session enumerates arbitrary root-candidate ranges via
    /// [`SliceSession::run_chunk`](crate::slice::SliceSession::run_chunk).
    /// The default says the matcher cannot partition its root-candidate
    /// space; slice groups then fall back to one ordinary
    /// [`Matcher::search_view`] call.
    fn slice_session<'a>(
        &'a self,
        query: &'a Graph,
        view: GraphView<'a>,
        budget: &SearchBudget,
    ) -> crate::slice::SliceSetup<'a> {
        let _ = (query, view, budget);
        crate::slice::SliceSetup::Unsupported
    }

    /// Decision-problem convenience: does `query` embed at all?
    fn contains(&self, query: &Graph) -> bool {
        self.search(query, &SearchBudget::first_match()).found()
    }
}

/// One adjacency probe against a [`GraphView`] — overlay adjacency for
/// touched endpoints, the shared index's bitset fast path when
/// acceleration is on, CSR binary search otherwise — with the answering
/// path counted into `stats`. Shared by every matcher's inner search
/// loop.
#[inline]
pub(crate) fn probe_view(
    view: &GraphView<'_>,
    u: NodeId,
    v: NodeId,
    stats: &mut SearchStats,
) -> bool {
    view.has_edge_counted(u, v, &mut stats.edge_probes_bitset, &mut stats.edge_probes_binary)
}

/// Validates that `embedding` is a correct non-induced sub-iso embedding of
/// `query` into `target` (Def. 3). Shared by tests of all matchers.
pub fn is_valid_embedding(query: &Graph, target: &Graph, embedding: &[NodeId]) -> bool {
    if embedding.len() != query.node_count() {
        return false;
    }
    // Injectivity.
    let mut seen = std::collections::HashSet::with_capacity(embedding.len());
    for &t in embedding {
        if (t as usize) >= target.node_count() || !seen.insert(t) {
            return false;
        }
    }
    // Labels.
    for q in query.nodes() {
        if query.label(q) != target.label(embedding[q as usize]) {
            return false;
        }
    }
    // Edges (non-induced: only query edges need to be present).
    for (u, v) in query.edges() {
        if !target.has_edge(embedding[u as usize], embedding[v as usize]) {
            return false;
        }
        if query.has_edge_labels()
            && query.edge_label(u, v)
                != target.edge_label(embedding[u as usize], embedding[v as usize])
        {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::GraphQl.short_name(), "GQL");
        assert_eq!(Algorithm::SPath.to_string(), "SPA");
        assert_eq!(Algorithm::paper_nfv().len(), 3);
    }

    #[test]
    fn valid_embedding_checks() {
        let target = graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 2)]);
        let query = graph_from_parts(&[0, 1], &[(0, 1)]);
        assert!(is_valid_embedding(&query, &target, &[0, 1]));
        assert!(is_valid_embedding(&query, &target, &[2, 1]));
        // label mismatch
        assert!(!is_valid_embedding(&query, &target, &[1, 0]));
        // missing edge
        assert!(!is_valid_embedding(&query, &target, &[0, 2].map(|x| x as NodeId)));
        // non-injective
        let q2 = graph_from_parts(&[0, 0], &[]);
        assert!(!is_valid_embedding(&q2, &target, &[0, 0]));
        // wrong arity
        assert!(!is_valid_embedding(&query, &target, &[0]));
        // out of range
        assert!(!is_valid_embedding(&query, &target, &[0, 9]));
    }

    #[test]
    fn match_result_flags() {
        let r = MatchResult::empty(StopReason::Complete);
        assert!(!r.found());
        assert!(r.is_conclusive());
        let r = MatchResult::empty(StopReason::TimedOut);
        assert!(!r.is_conclusive());
    }
}
