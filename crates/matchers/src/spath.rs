//! sPath (Zhao & Han — PVLDB 2010), "SPA" in the paper.
//!
//! §3.1.2: "sPath ... maintains a neighbourhood signature comprised of
//! shortest paths organized in a compact indexing structure. Specifically,
//! in order to reduce the storing space, shortest paths are not really
//! maintained, but they are decomposed in a distance-wise structure. In the
//! query processing, the query is initially decomposed in shortest paths
//! that are then matched to the candidate shortest paths from the stored
//! graph. From all possible candidate shortest paths, those that (i) can
//! cover the query and (ii) provide good selectivity ... are selected as
//! candidates. For each one of the selected paths, an edge-by-edge
//! verification is then used to perform the sub-iso test."
//!
//! Concretely:
//! * **Index**: for every stored node, the count of each label at every BFS
//!   distance `1..=radius` (the "distance-wise decomposition" of shortest
//!   paths; paper default radius 4).
//! * **Candidates**: query node `u` can map to stored node `v` only if
//!   labels match and, for every distance `d`, the query's *cumulative*
//!   label counts within `d` hops of `u` fit under the target's (sound for
//!   non-induced sub-iso because embeddings can only shorten distances).
//! * **Query decomposition**: greedy cover of the query's edges by paths of
//!   length ≤ `max_path_len`, each path starting at the most selective
//!   available vertex (fewest candidates, ties by node ID — the ID
//!   tie-break is what the paper's rewritings exploit).
//! * **Matching**: vertices are bound in path order with edge-by-edge
//!   verification against previously bound neighbors.

use crate::budget::{BudgetClock, SearchBudget, StopReason};
use crate::matcher::{probe_view, Algorithm, Embedding, MatchResult, Matcher, SearchStats};
use crate::scratch;
use psi_delta::GraphView;
use psi_graph::{Graph, Label, NodeId, TargetIndex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const UNMAPPED: NodeId = NodeId::MAX;

/// Paper defaults (§3.2): "neighbourhood radius of 4 and maximum path
/// length 4".
pub const DEFAULT_RADIUS: usize = 4;
/// Paper default maximum decomposition path length.
pub const DEFAULT_MAX_PATH_LEN: usize = 4;

/// Cumulative label counts per BFS distance: `counts[d-1]` holds sorted
/// `(label, count-of-nodes-within-distance-d)` pairs.
type DistanceSignature = Vec<Vec<(Label, u32)>>;

/// sPath prepared over a stored graph: the distance-wise signatures are
/// sPath's own (radius-parameterized) index; label lists, degrees and
/// adjacency probes come from the shared [`TargetIndex`].
#[derive(Debug)]
pub struct SPath {
    index: Arc<TargetIndex>,
    /// Per-node cumulative distance-wise signatures.
    signatures: Vec<DistanceSignature>,
    radius: usize,
    max_path_len: usize,
    scan: bool,
}

impl SPath {
    /// Indexing phase with paper-default radius (4) and path length (4),
    /// building a private [`TargetIndex`]. Prefer [`SPath::with_index`]
    /// when matchers share one stored graph.
    pub fn prepare(target: Arc<Graph>) -> Self {
        Self::with_params(target, DEFAULT_RADIUS, DEFAULT_MAX_PATH_LEN)
    }

    /// Indexing phase with explicit neighborhood radius and maximum
    /// decomposition path length.
    pub fn with_params(target: Arc<Graph>, radius: usize, max_path_len: usize) -> Self {
        Self::build(Arc::new(TargetIndex::build(target)), radius, max_path_len, false)
    }

    /// Indexed constructor path with paper-default parameters: only the
    /// distance-wise signatures (sPath's own structure) are computed
    /// here; label lists and adjacency come from the shared index.
    pub fn with_index(index: Arc<TargetIndex>) -> Self {
        Self::build(index, DEFAULT_RADIUS, DEFAULT_MAX_PATH_LEN, false)
    }

    /// Legacy scan mode — the seed behavior: binary-search adjacency
    /// probes and per-query buffer allocation.
    pub fn prepare_legacy(target: Arc<Graph>) -> Self {
        Self::legacy_with_index(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built (bitset-free) index —
    /// shared by a runner's scan-mode matchers; only the distance-wise
    /// signatures (sPath's own structure) are computed here.
    pub fn legacy_with_index(index: Arc<TargetIndex>) -> Self {
        Self::build(index, DEFAULT_RADIUS, DEFAULT_MAX_PATH_LEN, true)
    }

    fn build(index: Arc<TargetIndex>, radius: usize, max_path_len: usize, scan: bool) -> Self {
        assert!(radius >= 1, "radius must be at least 1");
        assert!(max_path_len >= 1, "path length must be at least 1");
        let target = index.graph();
        let signatures = (0..target.node_count() as NodeId)
            .map(|v| distance_signature(target, v, radius))
            .collect();
        Self { index, signatures, radius, max_path_len, scan }
    }

    /// The configured neighborhood radius.
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Candidate lists per query node via label + cumulative distance-wise
    /// signature containment. Ticks the budget clock so racing cancellation
    /// reaches the pre-search phase promptly.
    ///
    /// The distance signatures were computed over the *base* graph at
    /// preparation time; a delta overlay can shorten or lengthen BFS
    /// distances arbitrarily, so on overlay views the signature filter is
    /// skipped entirely (applying a stale signature could wrongly reject a
    /// valid candidate — label and degree checks remain sound).
    fn candidates(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        clock: &mut BudgetClock<'_>,
    ) -> Result<Vec<Vec<NodeId>>, StopReason> {
        let use_signatures = !view.has_overlay();
        let qsigs: Vec<DistanceSignature> = if use_signatures {
            (0..query.node_count() as NodeId)
                .map(|u| distance_signature(query, u, self.radius))
                .collect()
        } else {
            Vec::new()
        };
        let mut out = Vec::with_capacity(query.node_count());
        for u in 0..query.node_count() as NodeId {
            let mut cands = Vec::new();
            for &v in view.candidates(query.label(u)) {
                if let Some(r) = clock.tick() {
                    return Err(r);
                }
                if query.degree(u) <= view.degree(v)
                    && (!use_signatures
                        || signature_fits(&qsigs[u as usize], &self.signatures[v as usize]))
                {
                    cands.push(v);
                }
            }
            out.push(cands);
        }
        Ok(out)
    }

    /// Decomposes the query into a selectivity-ordered edge cover by paths
    /// of length ≤ `max_path_len`, returning the vertex matching order (each
    /// vertex once, in first-traversal order).
    ///
    /// The first path starts at the vertex with the fewest candidates;
    /// subsequent paths prefer starting at an already-covered vertex with
    /// remaining edges (keeping the join connected), again most-selective
    /// first with node-ID tie-breaks.
    fn path_order(&self, query: &Graph, cands: &[Vec<NodeId>]) -> Vec<NodeId> {
        let nq = query.node_count();
        let mut remaining: std::collections::HashSet<(NodeId, NodeId)> = query.edges().collect();
        let mut order: Vec<NodeId> = Vec::with_capacity(nq);
        let mut in_order = vec![false; nq];
        let push = |v: NodeId, order: &mut Vec<NodeId>, in_order: &mut Vec<bool>| {
            if !in_order[v as usize] {
                in_order[v as usize] = true;
                order.push(v);
            }
        };

        let selectivity = |v: NodeId| (cands[v as usize].len(), v);
        let has_remaining = |v: NodeId, remaining: &std::collections::HashSet<(NodeId, NodeId)>| {
            query.neighbors(v).iter().any(|&n| remaining.contains(&key(v, n)))
        };

        while !remaining.is_empty() {
            // Choose path start.
            let covered_start = order
                .iter()
                .copied()
                .filter(|&v| has_remaining(v, &remaining))
                .min_by_key(|&v| selectivity(v));
            let start = covered_start.unwrap_or_else(|| {
                (0..nq as NodeId)
                    .filter(|&v| has_remaining(v, &remaining))
                    .min_by_key(|&v| selectivity(v))
                    .expect("remaining non-empty implies an incident vertex")
            });
            push(start, &mut order, &mut in_order);
            // Greedy walk.
            let mut cur = start;
            for _ in 0..self.max_path_len {
                let next = query
                    .neighbors(cur)
                    .iter()
                    .copied()
                    .filter(|&n| remaining.contains(&key(cur, n)))
                    .min_by_key(|&n| selectivity(n));
                match next {
                    Some(n) => {
                        remaining.remove(&key(cur, n));
                        push(n, &mut order, &mut in_order);
                        cur = n;
                    }
                    None => break,
                }
            }
        }
        // Isolated query vertices (no edges) go last, most selective first.
        let mut rest: Vec<NodeId> = (0..nq as NodeId).filter(|&v| !in_order[v as usize]).collect();
        rest.sort_unstable_by_key(|&v| selectivity(v));
        for v in rest {
            push(v, &mut order, &mut in_order);
        }
        order
    }
}

#[inline]
fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    (a.min(b), a.max(b))
}

/// BFS out to `radius`, producing cumulative per-distance label counts.
fn distance_signature(g: &Graph, v: NodeId, radius: usize) -> DistanceSignature {
    let mut counts: Vec<HashMap<Label, u32>> = vec![HashMap::new(); radius];
    let mut dist: HashMap<NodeId, usize> = HashMap::new();
    dist.insert(v, 0);
    let mut frontier = vec![v];
    for d in 1..=radius {
        let mut next = Vec::new();
        for &u in &frontier {
            for &nb in g.neighbors(u) {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(nb) {
                    e.insert(d);
                    *counts[d - 1].entry(g.label(nb)).or_insert(0) += 1;
                    next.push(nb);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    // Cumulate: distance ≤ d.
    let mut out: DistanceSignature = Vec::with_capacity(radius);
    let mut acc: HashMap<Label, u32> = HashMap::new();
    for layer in counts {
        for (l, c) in layer {
            *acc.entry(l).or_insert(0) += c;
        }
        let mut flat: Vec<(Label, u32)> = acc.iter().map(|(&l, &c)| (l, c)).collect();
        flat.sort_unstable();
        out.push(flat);
    }
    out
}

/// Whether the query signature fits under the target signature at every
/// distance (cumulative counts, per label).
fn signature_fits(qsig: &DistanceSignature, tsig: &DistanceSignature) -> bool {
    for (d, qlayer) in qsig.iter().enumerate() {
        let Some(tlayer) = tsig.get(d) else {
            // Target has no nodes past this distance; query demands some.
            return qlayer.is_empty();
        };
        for &(l, qc) in qlayer {
            let tc =
                tlayer.binary_search_by_key(&l, |&(tl, _)| tl).map(|i| tlayer[i].1).unwrap_or(0);
            if qc > tc {
                return false;
            }
        }
    }
    true
}

impl Matcher for SPath {
    fn algorithm(&self) -> Algorithm {
        Algorithm::SPath
    }

    fn target(&self) -> &Graph {
        self.index.graph()
    }

    fn index(&self) -> &Arc<TargetIndex> {
        &self.index
    }

    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult {
        let view = if self.scan {
            GraphView::of_index_scan(&self.index)
        } else {
            GraphView::of_index(&self.index)
        };
        self.search_inner(query, view, budget)
    }

    fn search_view(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        self.search_inner(query, view.with_default_index(&self.index), budget)
    }
}

impl SPath {
    fn search_inner(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        let start = Instant::now();
        let mut out = MatchResult::empty(StopReason::Complete);
        let mut clock = budget.start();
        if let Some(r) = clock.check_now() {
            out.stop = r;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() == 0 {
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            out.elapsed = start.elapsed();
            return out;
        }

        let mut stats = SearchStats::default();
        let cands = match self.candidates(query, view, &mut clock) {
            Ok(c) => c,
            Err(r) => {
                out.stop = r;
                out.elapsed = start.elapsed();
                return out;
            }
        };
        if cands.iter().any(|c| c.is_empty()) {
            out.stats = stats;
            out.elapsed = start.elapsed();
            return out;
        }
        let order = self.path_order(query, &cands);
        debug_assert_eq!(order.len(), query.node_count());
        let mut assignment = scratch::u32_buf(query.node_count(), UNMAPPED, view.accel());
        let mut used = scratch::bool_buf(view.node_count(), view.accel());
        let stop = self.verify(
            query,
            view,
            &order,
            &cands,
            0,
            &mut assignment,
            &mut used,
            &mut out.embeddings,
            &mut clock,
            &mut stats,
            budget.max_matches,
        );
        out.num_matches = out.embeddings.len();
        out.stop = match stop {
            Some(r) => r,
            None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
                StopReason::MatchLimit
            }
            None => StopReason::Complete,
        };
        out.stats = stats;
        out.elapsed = start.elapsed();
        out
    }

    /// Edge-by-edge verification along the path order.
    #[allow(clippy::too_many_arguments)]
    fn verify(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        order: &[NodeId],
        cands: &[Vec<NodeId>],
        depth: usize,
        assignment: &mut [NodeId],
        used: &mut [bool],
        found: &mut Vec<Embedding>,
        clock: &mut BudgetClock<'_>,
        stats: &mut SearchStats,
        max_matches: usize,
    ) -> Option<StopReason> {
        if depth == order.len() {
            found.push(assignment.to_vec());
            return None;
        }
        let qv = order[depth];
        // Prefer extending through a bound neighbor's adjacency when
        // available (path traversal); otherwise use the candidate list.
        let bound_neighbor =
            query.neighbors(qv).iter().copied().find(|&qn| assignment[qn as usize] != UNMAPPED);
        let from_neighbors: &[NodeId];
        let from_cands: &[NodeId];
        match bound_neighbor {
            Some(qn) => {
                from_neighbors = view.neighbors(assignment[qn as usize]);
                from_cands = &[];
            }
            None => {
                from_neighbors = &[];
                from_cands = &cands[qv as usize];
            }
        }
        let member = |tv: NodeId| cands[qv as usize].binary_search(&tv).is_ok();
        for &tv in from_neighbors.iter().chain(from_cands) {
            if let Some(r) = clock.tick() {
                return Some(r);
            }
            if used[tv as usize] {
                continue;
            }
            if bound_neighbor.is_some() && !member(tv) {
                continue;
            }
            stats.nodes_expanded += 1;
            let ok = query.neighbors(qv).iter().all(|&qn| {
                let tn = assignment[qn as usize];
                if tn == UNMAPPED {
                    return true;
                }
                probe_view(&view, tn, tv, stats)
                    && (!query.has_edge_labels()
                        || query.edge_label(qv, qn) == view.edge_label(tv, tn))
            });
            if !ok {
                stats.candidates_pruned += 1;
                continue;
            }
            assignment[qv as usize] = tv;
            used[tv as usize] = true;
            let r = self.verify(
                query,
                view,
                order,
                cands,
                depth + 1,
                assignment,
                used,
                found,
                clock,
                stats,
                max_matches,
            );
            assignment[qv as usize] = UNMAPPED;
            used[tv as usize] = false;
            if r.is_some() {
                return r;
            }
            if found.len() >= max_matches {
                return None;
            }
            stats.backtracks += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::matcher::is_valid_embedding;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spa(t: Graph) -> SPath {
        SPath::prepare(Arc::new(t))
    }

    fn sorted(mut v: Vec<Embedding>) -> Vec<Embedding> {
        v.sort();
        v
    }

    #[test]
    fn distance_signature_of_path() {
        // 0 -1- 2 -3 chain labels a,b,c,d
        let g = graph_from_parts(&[10, 11, 12, 13], &[(0, 1), (1, 2), (2, 3)]);
        let sig = distance_signature(&g, 0, 4);
        assert_eq!(sig[0], vec![(11, 1)]); // within distance 1
        assert_eq!(sig[1], vec![(11, 1), (12, 1)]); // within 2
        assert_eq!(sig[2], vec![(11, 1), (12, 1), (13, 1)]);
        // Radius 4 exceeds eccentricity; the cumulative layer just repeats.
        assert_eq!(sig.len(), 4);
        assert_eq!(sig[3], sig[2]);
    }

    #[test]
    fn signature_fits_cumulative_rule() {
        let q = vec![vec![(1, 2)]]; // needs two label-1 within distance 1
        let t_good = vec![vec![(1, 2), (2, 1)]];
        let t_bad = vec![vec![(1, 1), (2, 5)]];
        assert!(signature_fits(&q, &t_good));
        assert!(!signature_fits(&q, &t_bad));
        // Query demanding nodes beyond target's reach fails.
        let q_deep = vec![vec![(1, 1)], vec![(1, 1), (2, 1)]];
        let t_shallow = vec![vec![(1, 1)]];
        assert!(!signature_fits(&q_deep, &t_shallow));
        // ... unless the query has no demands there either.
        let q_shallow = vec![vec![(1, 1)], vec![]];
        assert!(signature_fits(&q_shallow, &t_shallow));
    }

    #[test]
    fn triangle_vs_path_distance_pruning() {
        // Distance signatures let sPath reject mapping a node that needs
        // 2 label-2 nodes within distance 1 onto one that has them at
        // distance 2.
        let t = graph_from_parts(&[1, 2, 2], &[(0, 1), (1, 2)]); // path: 2 at dist 2
        let m = spa(t);
        let q = graph_from_parts(&[1, 2, 2], &[(0, 1), (0, 2)]); // star
        let r = m.search(&q, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 0);
        assert_eq!(r.stats.nodes_expanded, 0, "signature filter should preempt search");
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(606);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for i in 0..40 {
            let t = random_connected_graph(12, 20, &labels, &mut rng);
            let q = random_connected_graph(5, 6, &labels, &mut rng);
            let m = spa(t.clone());
            let got = m.search(&q, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(sorted(got.embeddings), sorted(want.embeddings), "case {i}");
        }
    }

    #[test]
    fn path_order_covers_all_vertices_once() {
        let t = graph_from_parts(&[0; 2], &[(0, 1)]);
        let m = spa(t);
        let q =
            graph_from_parts(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)]);
        let cands: Vec<Vec<NodeId>> = vec![vec![0, 1]; 6];
        let order = m.path_order(&q, &cands);
        let mut sorted_order = order.clone();
        sorted_order.sort_unstable();
        assert_eq!(sorted_order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn path_order_handles_isolated_vertices() {
        let t = graph_from_parts(&[0], &[]);
        let m = spa(t);
        let q = graph_from_parts(&[0, 0, 0], &[(0, 1)]); // 2 isolated
        let cands: Vec<Vec<NodeId>> = vec![vec![0], vec![0], vec![0]];
        let order = m.path_order(&q, &cands);
        assert_eq!(order.len(), 3);
        assert_eq!(order[2], 2, "isolated vertex should come last");
    }

    #[test]
    fn embeddings_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(25, 50, &labels, &mut rng);
        let q = random_connected_graph(5, 5, &labels, &mut rng);
        let m = spa(t.clone());
        let r = m.search(&q, &SearchBudget::paper_default());
        for e in &r.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn match_cap() {
        let t = graph_from_parts(&[0; 10], &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let m = spa(t);
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = m.search(&q, &SearchBudget::with_max_matches(7));
        assert_eq!(r.num_matches, 7);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn matcher_trait_and_params() {
        let t = Arc::new(graph_from_parts(&[0, 1], &[(0, 1)]));
        let m = SPath::prepare(Arc::clone(&t));
        assert_eq!(m.algorithm(), Algorithm::SPath);
        assert_eq!(m.radius(), DEFAULT_RADIUS);
        let m2 = SPath::with_params(t, 2, 3);
        assert_eq!(m2.radius(), 2);
        assert!(m2.contains(&graph_from_parts(&[0, 1], &[(0, 1)])));
    }

    #[test]
    fn radius_one_still_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(10, 14, &labels, &mut rng);
        let q = random_connected_graph(4, 4, &labels, &mut rng);
        let m = SPath::with_params(Arc::new(t.clone()), 1, 2);
        let got = m.search(&q, &SearchBudget::unlimited());
        let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(sorted(got.embeddings), sorted(want.embeddings));
    }

    #[test]
    fn empty_query() {
        let t = graph_from_parts(&[0], &[]);
        assert_eq!(
            spa(t).search(&graph_from_parts(&[], &[]), &SearchBudget::unlimited()).num_matches,
            1
        );
    }
}
