//! QuickSI (Shang, Zhang, Lin, Yu — PVLDB 2008), "QSI" in the paper.
//!
//! §3.1.2: "priority is given to the vertices with infrequent labels and
//! infrequent adjacent edge labels. In the indexing phase, QuickSI
//! precomputes the frequencies of labels and edges and uses them to compute
//! the *average inner support* of a vertex or an edge; i.e., the average
//! number of possible mappings of the vertex or edge in the graph. The inner
//! support is later used ... to assign weights on the edges of the query
//! graph and construct a rooted minimum spanning tree (MST). In case of
//! symmetries, edges are added in such a way that will make the MST denser.
//! The order in which vertices are inserted to the MST defines the order in
//! which they are then matched."
//!
//! Tie-breaking on equal weights falls back to query node IDs, mirroring the
//! reference implementation — this is what makes QSI respond to the paper's
//! ID-permuting rewritings.

use crate::budget::{BudgetClock, SearchBudget, StopReason};
use crate::matcher::{Algorithm, Embedding, MatchResult, Matcher, SearchStats};
use crate::scratch;
use psi_delta::GraphView;
use psi_graph::{Graph, Label, NodeId, TargetIndex};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const UNMAPPED: NodeId = NodeId::MAX;

/// QuickSI prepared over a stored graph: the edge "inner support"
/// frequency table (algorithm-specific), with label frequencies and the
/// inverted label → vertices list read from the shared [`TargetIndex`].
#[derive(Debug)]
pub struct QuickSi {
    index: Arc<TargetIndex>,
    /// Frequency of each unordered label pair over target edges.
    edge_freq: HashMap<(Label, Label), u32>,
    scan: bool,
}

impl QuickSi {
    /// Runs QuickSI's indexing phase over the stored graph, building a
    /// private [`TargetIndex`]. Prefer [`QuickSi::with_index`] when
    /// matchers share one stored graph.
    pub fn prepare(target: Arc<Graph>) -> Self {
        Self::with_index(Arc::new(TargetIndex::build(target)))
    }

    /// Indexed constructor path: only the edge-frequency table (QuickSI's
    /// own inner-support statistic) is computed here; label lists and
    /// frequencies come from the shared index.
    pub fn with_index(index: Arc<TargetIndex>) -> Self {
        let edge_freq = Self::edge_frequencies(index.graph());
        Self { index, edge_freq, scan: false }
    }

    /// Legacy scan mode — the seed behavior: binary-search adjacency
    /// probes and per-query buffer allocation (candidate lists were
    /// already prepared per matcher in the seed).
    pub fn prepare_legacy(target: Arc<Graph>) -> Self {
        Self::legacy_with_index(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built (bitset-free) index —
    /// shared by a runner's scan-mode matchers; only the edge-frequency
    /// table (QuickSI's own statistic) is computed here.
    pub fn legacy_with_index(index: Arc<TargetIndex>) -> Self {
        let edge_freq = Self::edge_frequencies(index.graph());
        Self { index, edge_freq, scan: true }
    }

    fn edge_frequencies(target: &Graph) -> HashMap<(Label, Label), u32> {
        let mut edge_freq: HashMap<(Label, Label), u32> = HashMap::new();
        for (u, v) in target.edges() {
            let (a, b) = ordered_pair(target.label(u), target.label(v));
            *edge_freq.entry((a, b)).or_insert(0) += 1;
        }
        edge_freq
    }

    fn vertex_support(&self, l: Label) -> u32 {
        self.index.candidates(l).len() as u32
    }

    fn edge_support(&self, l1: Label, l2: Label) -> u32 {
        self.edge_freq.get(&ordered_pair(l1, l2)).copied().unwrap_or(0)
    }

    /// Builds the QSI matching sequence for a query: a rooted MST by Prim's
    /// algorithm over inner-support edge weights.
    ///
    /// Returns, per matching step: `(query_vertex, parent_index_or_none)`,
    /// where `parent_index` points into the sequence (not a node ID). The
    /// root minimizes `(vertex support, node id)`; each subsequent step adds
    /// the frontier edge minimizing `(edge support, -connections_to_tree,
    /// vertex support, node id)` — the `-connections_to_tree` term is the
    /// "make the MST denser" symmetry-breaking rule.
    pub fn build_sequence(&self, query: &Graph) -> Vec<(NodeId, Option<usize>)> {
        let nq = query.node_count();
        if nq == 0 {
            return Vec::new();
        }
        let mut seq: Vec<(NodeId, Option<usize>)> = Vec::with_capacity(nq);
        let mut in_tree = vec![false; nq];
        let mut pos_in_seq = vec![usize::MAX; nq];

        while seq.len() < nq {
            // Best frontier edge: min (edge support, -connections-to-tree,
            // vertex support, node id). `Candidate` orders by exactly that.
            #[derive(PartialEq, Eq, PartialOrd, Ord, Clone, Copy)]
            struct Candidate {
                edge_support: u32,
                neg_conn: i64,
                vertex_support: u32,
                vertex: NodeId,
            }
            let mut best: Option<(Candidate, usize)> = None;
            for &(tv, _) in &seq {
                for &nb in query.neighbors(tv) {
                    if in_tree[nb as usize] {
                        continue;
                    }
                    let cand = Candidate {
                        edge_support: self.edge_support(query.label(tv), query.label(nb)),
                        neg_conn: -(query
                            .neighbors(nb)
                            .iter()
                            .filter(|&&x| in_tree[x as usize])
                            .count() as i64),
                        vertex_support: self.vertex_support(query.label(nb)),
                        vertex: nb,
                    };
                    if best.is_none_or(|(b, _)| cand < b) {
                        best = Some((cand, pos_in_seq[tv as usize]));
                    }
                }
            }
            match best {
                Some((cand, parent_pos)) => {
                    pos_in_seq[cand.vertex as usize] = seq.len();
                    seq.push((cand.vertex, Some(parent_pos)));
                    in_tree[cand.vertex as usize] = true;
                }
                None => {
                    // Empty frontier: initial root, or a new component of a
                    // disconnected query. Min (vertex support, node id).
                    let root = (0..nq as NodeId)
                        .filter(|&v| !in_tree[v as usize])
                        .min_by_key(|&v| (self.vertex_support(query.label(v)), v))
                        .expect("loop guard ensures a free vertex");
                    pos_in_seq[root as usize] = seq.len();
                    seq.push((root, None));
                    in_tree[root as usize] = true;
                }
            }
        }
        seq
    }
}

fn ordered_pair(a: Label, b: Label) -> (Label, Label) {
    (a.min(b), a.max(b))
}

impl Matcher for QuickSi {
    fn algorithm(&self) -> Algorithm {
        Algorithm::QuickSi
    }

    fn target(&self) -> &Graph {
        self.index.graph()
    }

    fn index(&self) -> &Arc<TargetIndex> {
        &self.index
    }

    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult {
        let view = if self.scan {
            GraphView::of_index_scan(&self.index)
        } else {
            GraphView::of_index(&self.index)
        };
        self.search_view(query, view, budget)
    }

    fn search_view(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        let view = view.with_default_index(&self.index);
        let start = Instant::now();
        let mut out = MatchResult::empty(StopReason::Complete);
        let mut clock = budget.start();
        if let Some(r) = clock.check_now() {
            out.stop = r;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() == 0 {
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            out.elapsed = start.elapsed();
            return out;
        }
        let seq = self.build_sequence(query);
        let mut stats = SearchStats::default();
        let pooled = view.accel();
        let mut assignment = scratch::u32_buf(query.node_count(), UNMAPPED, pooled);
        let mut used = scratch::bool_buf(view.node_count(), pooled);
        let stop = self.match_step(
            query,
            view,
            &seq,
            0,
            &mut assignment,
            &mut used,
            &mut out.embeddings,
            &mut clock,
            &mut stats,
            budget.max_matches,
            None,
        );
        out.num_matches = out.embeddings.len();
        out.stop = match stop {
            Some(r) => r,
            None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
                StopReason::MatchLimit
            }
            None => StopReason::Complete,
        };
        out.stats = stats;
        out.elapsed = start.elapsed();
        out
    }

    fn slice_session<'a>(
        &'a self,
        query: &'a Graph,
        view: GraphView<'a>,
        budget: &SearchBudget,
    ) -> crate::slice::SliceSetup<'a> {
        use crate::slice::SliceSetup;
        let view = view.with_default_index(&self.index);
        let clock = budget.start();
        if let Some(r) = clock.check_now() {
            return SliceSetup::Halted(MatchResult::empty(r));
        }
        if query.node_count() == 0 {
            let mut out = MatchResult::empty(StopReason::Complete);
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            return SliceSetup::Halted(out);
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            return SliceSetup::Halted(MatchResult::empty(StopReason::Complete));
        }
        let seq = self.build_sequence(query);
        let pooled = view.accel();
        let assignment = scratch::u32_buf(query.node_count(), UNMAPPED, pooled);
        let used = scratch::bool_buf(view.node_count(), pooled);
        // The slice domain is the candidate list of the sequence root's
        // label (what `match_step` enumerates at depth 0).
        let domain = view.candidates(query.label(seq[0].0)).len();
        SliceSetup::Ready(Box::new(QuickSiSliceSession {
            matcher: self,
            query,
            view,
            seq,
            assignment,
            used,
            stats: SearchStats::default(),
            domain,
        }))
    }
}

/// A sliceable QuickSI session: the matching sequence and scratch buffers
/// are built once; each chunk re-runs `match_step` with the root's
/// candidate list restricted to the chunk's range. Buffers survive
/// across chunks because `match_step` unwinds its assignments
/// unconditionally, even when halted mid-search.
struct QuickSiSliceSession<'a> {
    matcher: &'a QuickSi,
    query: &'a Graph,
    view: GraphView<'a>,
    seq: Vec<(NodeId, Option<usize>)>,
    assignment: scratch::U32Buf,
    used: scratch::BoolBuf,
    stats: SearchStats,
    domain: usize,
}

impl crate::slice::SliceSession for QuickSiSliceSession<'_> {
    fn domain(&self) -> usize {
        self.domain
    }

    fn run_chunk(
        &mut self,
        range: std::ops::Range<usize>,
        budget: &SearchBudget,
    ) -> crate::slice::ChunkOutcome {
        let mut clock = budget.start();
        let mut embeddings = Vec::new();
        let halted = self.matcher.match_step(
            self.query,
            self.view,
            &self.seq,
            0,
            &mut self.assignment,
            &mut self.used,
            &mut embeddings,
            &mut clock,
            &mut self.stats,
            budget.max_matches,
            Some(&range),
        );
        crate::slice::ChunkOutcome { range, embeddings, halted }
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

impl QuickSi {
    #[allow(clippy::too_many_arguments)]
    fn match_step(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        seq: &[(NodeId, Option<usize>)],
        depth: usize,
        assignment: &mut [NodeId],
        used: &mut [bool],
        found: &mut Vec<Embedding>,
        clock: &mut BudgetClock<'_>,
        stats: &mut SearchStats,
        max_matches: usize,
        root_range: Option<&std::ops::Range<usize>>,
    ) -> Option<StopReason> {
        if depth == seq.len() {
            found.push(assignment.to_vec());
            return None;
        }
        let (qv, parent) = seq[depth];
        let qlabel = query.label(qv);
        let qdeg = query.degree(qv);

        // Candidate source: parent image's neighborhood, or the label's
        // candidate list for component roots — both through the view, so
        // overlay adjacency and merged candidate lists apply. When slicing,
        // `root_range` restricts the sequence root (depth 0) only; roots of
        // later disconnected components stay unrestricted.
        let candidates: &[NodeId] = match parent {
            Some(pp) => {
                let pimg = assignment[seq[pp].0 as usize];
                debug_assert_ne!(pimg, UNMAPPED);
                view.neighbors(pimg)
            }
            None => {
                let cands = view.candidates(qlabel);
                match root_range {
                    Some(r) if depth == 0 => {
                        &cands[r.start.min(cands.len())..r.end.min(cands.len())]
                    }
                    _ => cands,
                }
            }
        };

        for &tv in candidates {
            if let Some(r) = clock.tick() {
                return Some(r);
            }
            if used[tv as usize] || view.label(tv) != qlabel || view.degree(tv) < qdeg {
                continue;
            }
            stats.nodes_expanded += 1;
            // Check all edges to already-matched query neighbors (tree edge
            // plus QuickSI's "extra edges").
            let ok = query.neighbors(qv).iter().all(|&qn| {
                let tn = assignment[qn as usize];
                if tn == UNMAPPED {
                    return true;
                }
                crate::matcher::probe_view(&view, tn, tv, stats)
                    && (!query.has_edge_labels()
                        || query.edge_label(qv, qn) == view.edge_label(tv, tn))
            });
            if !ok {
                stats.candidates_pruned += 1;
                continue;
            }
            assignment[qv as usize] = tv;
            used[tv as usize] = true;
            let r = self.match_step(
                query,
                view,
                seq,
                depth + 1,
                assignment,
                used,
                found,
                clock,
                stats,
                max_matches,
                root_range,
            );
            assignment[qv as usize] = UNMAPPED;
            used[tv as usize] = false;
            if r.is_some() {
                return r;
            }
            if found.len() >= max_matches {
                return None;
            }
            stats.backtracks += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::matcher::is_valid_embedding;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn qsi(t: Graph) -> QuickSi {
        QuickSi::prepare(Arc::new(t))
    }

    fn sorted(mut v: Vec<Embedding>) -> Vec<Embedding> {
        v.sort();
        v
    }

    #[test]
    fn sequence_starts_at_rarest_label() {
        // Target: many label-0, one label-1.
        let t = graph_from_parts(&[0, 0, 0, 1], &[(0, 1), (1, 2), (2, 3)]);
        let m = qsi(t);
        // Query: path label 0 - 0 - 1; vertex 2 is rare.
        let q = graph_from_parts(&[0, 0, 1], &[(0, 1), (1, 2)]);
        let seq = m.build_sequence(&q);
        assert_eq!(seq[0], (2, None), "rarest-label vertex should root the MST");
        assert_eq!(seq.len(), 3);
        // Parent pointers form a valid tree over the sequence.
        for (i, &(_, p)) in seq.iter().enumerate().skip(1) {
            assert!(p.expect("connected query after root") < i);
        }
    }

    #[test]
    fn sequence_covers_disconnected_queries() {
        let t = graph_from_parts(&[0, 1], &[(0, 1)]);
        let m = qsi(t);
        let q = graph_from_parts(&[0, 1, 0], &[(0, 1)]); // node 2 isolated
        let seq = m.build_sequence(&q);
        assert_eq!(seq.len(), 3);
        let roots = seq.iter().filter(|(_, p)| p.is_none()).count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for i in 0..40 {
            let t = random_connected_graph(12, 20, &labels, &mut rng);
            let q = random_connected_graph(4, 5, &labels, &mut rng);
            let m = qsi(t.clone());
            let got = m.search(&q, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(sorted(got.embeddings), sorted(want.embeddings), "case {i}");
        }
    }

    #[test]
    fn embeddings_valid_and_capped() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(30, 60, &labels, &mut rng);
        let q = random_connected_graph(4, 4, &labels, &mut rng);
        let m = qsi(t.clone());
        let r = m.search(&q, &SearchBudget::with_max_matches(5));
        assert!(r.num_matches <= 5);
        for e in &r.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn no_candidates_for_unknown_label() {
        let t = graph_from_parts(&[0, 0], &[(0, 1)]);
        let m = qsi(t);
        let q = graph_from_parts(&[7], &[]);
        let r = m.search(&q, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 0);
        assert_eq!(r.stop, StopReason::Complete);
    }

    #[test]
    fn empty_query_single_vacuous_match() {
        let t = graph_from_parts(&[0], &[]);
        let m = qsi(t);
        let q = graph_from_parts(&[], &[]);
        assert_eq!(m.search(&q, &SearchBudget::unlimited()).num_matches, 1);
    }

    #[test]
    fn matcher_trait() {
        let t = Arc::new(graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]));
        let m = QuickSi::prepare(t);
        assert_eq!(m.algorithm(), Algorithm::QuickSi);
        assert!(m.contains(&graph_from_parts(&[1, 2], &[(0, 1)])));
        assert!(!m.contains(&graph_from_parts(&[0, 2], &[(0, 1)])));
    }

    #[test]
    fn dense_tie_breaking_prefers_more_connected_vertex() {
        // Query: square 0-1-2-3 with all labels equal; after root + one
        // edge, the "denser" choice is the vertex adjacent to two tree
        // vertices.
        let t = graph_from_parts(&[0; 5], &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let m = qsi(t);
        let q = graph_from_parts(&[0; 4], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let seq = m.build_sequence(&q);
        // Root = 0 (all supports equal, min id). Frontier edges from {0}:
        // (0,1), (0,3) — equal support/connections, min id wins: 1.
        assert_eq!(seq[0].0, 0);
        assert_eq!(seq[1].0, 1);
        // Now 2 connects to one tree vertex (1), 3 connects to one (0)...
        // but after adding 2 or 3 first; with equal keys min id 2 wins, and
        // 3 then connects to two tree vertices.
        assert_eq!(seq[2].0, 2);
        assert_eq!(seq[3].0, 3);
    }
}
