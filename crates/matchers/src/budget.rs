//! Search budgets: embedding caps, deadlines and cooperative cancellation.
//!
//! The paper's experimental setup (§3.2) caps every query at 10 minutes and
//! every matching run at 1000 embeddings; the Ψ-framework (§8) additionally
//! kills the losing threads of a race as soon as a winner finishes. All
//! three stop conditions are expressed here as a [`SearchBudget`] that every
//! matcher checks cooperatively inside its search loop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The search space was exhausted: the result is exact and complete.
    Complete,
    /// The embedding cap (`max_matches`) was reached.
    MatchLimit,
    /// The deadline passed mid-search (the paper's "killed"/"hard" case).
    TimedOut,
    /// Another racer won and cancelled this search.
    Cancelled,
}

impl StopReason {
    /// Whether the search ran to an answer (either exhausted the space or
    /// found the requested number of matches). Timed-out and cancelled
    /// searches are inconclusive.
    pub fn is_conclusive(self) -> bool {
        matches!(self, StopReason::Complete | StopReason::MatchLimit)
    }
}

/// Shared flag used to cancel in-flight searches across threads (the
/// Ψ-framework's "kill the losing threads", implemented safely as
/// cooperative cancellation).
///
/// A token may be *linked* to a parent token ([`CancelToken::linked`]):
/// the child observes its own flag **or** the parent's, while
/// [`CancelToken::cancel`] on the child sets only its own flag. This is
/// how a slice group stops its own siblings early (cap reached) without
/// cancelling the race-wide token it hangs off.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    parent: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh token linked under `parent`: cancelled when either its own
    /// flag or the parent's (transitively: the parent's whole chain is
    /// folded into one observed flag here, so checks stay two loads) is
    /// set. Cancelling the child never touches the parent.
    pub fn linked(parent: &CancelToken) -> Self {
        // Collapse grandparents: a parent that is itself linked trips its
        // own flag only via `cancel()`, so observing both its flags needs
        // both — fold them by observing the parent's *effective* state
        // through a chain of at most one level. In practice our chains
        // are one level deep (race token → slice group); deeper chains
        // would need the parent checked via `is_cancelled`, which this
        // constructor preserves by linking to the nearer flag and
        // documenting the one-level contract.
        debug_assert!(
            parent.parent.is_none(),
            "CancelToken::linked supports one linking level (race token -> group token)"
        );
        Self { flag: Arc::new(AtomicBool::new(false)), parent: Some(Arc::clone(&parent.flag)) }
    }

    /// Signals every search holding a clone of this token to stop. For a
    /// linked token, only this token's own flag is set — the parent is
    /// never cancelled from below.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been signalled — on this token or, for a
    /// linked token, on its parent.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
            || self.parent.as_ref().is_some_and(|p| p.load(Ordering::Relaxed))
    }
}

/// Stop conditions for one search: embedding cap, wall-clock deadline,
/// cancellation token.
///
/// The default budget matches the paper's NFV setup: 1000 embeddings, no
/// deadline, no cancellation.
#[derive(Debug, Clone)]
pub struct SearchBudget {
    /// Stop after this many embeddings (§3.2: "capped at 1000").
    pub max_matches: usize,
    /// Absolute deadline, if any.
    pub deadline: Option<Instant>,
    /// Cross-thread cancellation, if racing.
    pub cancel: Option<CancelToken>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        Self { max_matches: 1000, deadline: None, cancel: None }
    }
}

impl SearchBudget {
    /// The paper's default: 1000 embeddings, unbounded time.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// No cap at all (used by correctness tests comparing full embedding
    /// sets against the brute-force oracle).
    pub fn unlimited() -> Self {
        Self { max_matches: usize::MAX, deadline: None, cancel: None }
    }

    /// Decision-problem budget: stop at the first embedding. This is the
    /// change the authors made to Grapes' VF2 ("returns after the first
    /// match", §3.2).
    pub fn first_match() -> Self {
        Self { max_matches: 1, deadline: None, cancel: None }
    }

    /// Budget with an embedding cap only.
    pub fn with_max_matches(max_matches: usize) -> Self {
        Self { max_matches, ..Self::default() }
    }

    /// Returns a copy with the given timeout from now.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Returns a copy with an absolute deadline.
    pub fn deadline_at(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns a copy wired to a cancellation token.
    pub fn cancellable(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Creates the per-search ticking checker.
    pub fn start(&self) -> BudgetClock<'_> {
        BudgetClock { budget: self, ticks: 0 }
    }
}

/// How many search steps pass between deadline/cancellation checks.
/// `Instant::now()` costs tens of nanoseconds; amortizing it over a power-of-
/// two stride keeps the overhead invisible while bounding the overshoot past
/// a deadline to microseconds.
const CHECK_STRIDE: u32 = 255;

/// Per-search stop-condition checker. Cheap to call on every search step;
/// performs the actual clock/flag reads once every `CHECK_STRIDE + 1` calls.
#[derive(Debug)]
pub struct BudgetClock<'a> {
    budget: &'a SearchBudget,
    ticks: u32,
}

impl BudgetClock<'_> {
    /// Called on every search step; returns `Some(reason)` when the search
    /// must stop for a non-match-count reason.
    #[inline]
    pub fn tick(&mut self) -> Option<StopReason> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks & CHECK_STRIDE != 0 {
            return None;
        }
        self.check_now()
    }

    /// Forces an immediate check (used at search entry and after long
    /// non-tick phases like index probes).
    #[inline]
    pub fn check_now(&self) -> Option<StopReason> {
        if let Some(c) = &self.budget.cancel {
            if c.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(d) = self.budget.deadline {
            if Instant::now() >= d {
                return Some(StopReason::TimedOut);
            }
        }
        None
    }

    /// Whether `found` embeddings satisfy the cap.
    #[inline]
    pub fn reached_match_limit(&self, found: usize) -> bool {
        found >= self.budget.max_matches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_paper() {
        let b = SearchBudget::default();
        assert_eq!(b.max_matches, 1000);
        assert!(b.deadline.is_none());
        assert!(b.cancel.is_none());
    }

    #[test]
    fn first_match_budget() {
        let b = SearchBudget::first_match();
        assert_eq!(b.max_matches, 1);
        let clock = b.start();
        assert!(clock.reached_match_limit(1));
        assert!(!clock.reached_match_limit(0));
    }

    #[test]
    fn cancel_token_propagates() {
        let t = CancelToken::new();
        let b = SearchBudget::default().cancellable(t.clone());
        let clock = b.start();
        assert_eq!(clock.check_now(), None);
        t.cancel();
        assert_eq!(clock.check_now(), Some(StopReason::Cancelled));
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let t = CancelToken::new();
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn linked_token_observes_parent() {
        let parent = CancelToken::new();
        let child = CancelToken::linked(&parent);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled(), "child must observe parent cancellation");
    }

    #[test]
    fn linked_token_cancel_stays_local() {
        let parent = CancelToken::new();
        let child = CancelToken::linked(&parent);
        let sibling = child.clone();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(sibling.is_cancelled(), "clones share the child flag");
        assert!(!parent.is_cancelled(), "cancelling a child never cancels the parent");
    }

    #[test]
    fn expired_deadline_detected() {
        let b = SearchBudget::default().deadline_at(Instant::now() - Duration::from_millis(1));
        let clock = b.start();
        assert_eq!(clock.check_now(), Some(StopReason::TimedOut));
    }

    #[test]
    fn future_deadline_not_triggered() {
        let b = SearchBudget::default().timeout(Duration::from_secs(3600));
        let clock = b.start();
        assert_eq!(clock.check_now(), None);
    }

    #[test]
    fn tick_eventually_observes_cancellation() {
        let t = CancelToken::new();
        let b = SearchBudget::default().cancellable(t.clone());
        let mut clock = b.start();
        t.cancel();
        let mut saw = None;
        for _ in 0..=(CHECK_STRIDE as usize + 1) {
            if let Some(r) = clock.tick() {
                saw = Some(r);
                break;
            }
        }
        assert_eq!(saw, Some(StopReason::Cancelled));
    }

    #[test]
    fn cancellation_beats_deadline_in_reporting() {
        let t = CancelToken::new();
        t.cancel();
        let b = SearchBudget::default()
            .deadline_at(Instant::now() - Duration::from_millis(1))
            .cancellable(t);
        assert_eq!(b.start().check_now(), Some(StopReason::Cancelled));
    }

    #[test]
    fn conclusive_reasons() {
        assert!(StopReason::Complete.is_conclusive());
        assert!(StopReason::MatchLimit.is_conclusive());
        assert!(!StopReason::TimedOut.is_conclusive());
        assert!(!StopReason::Cancelled.is_conclusive());
    }
}
