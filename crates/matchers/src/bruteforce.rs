//! Brute-force sub-iso enumerator — the correctness oracle.
//!
//! Plain backtracking in query node-ID order with label-only candidate
//! filtering and no pruning beyond edge-consistency. Exponentially slow on
//! purpose-built inputs, but trivially correct; every real matcher's
//! embedding set is compared against this in unit and property tests.

use crate::budget::{SearchBudget, StopReason};
use crate::matcher::{Embedding, MatchResult, SearchStats};
use psi_graph::{Graph, NodeId};
use std::time::Instant;

/// Enumerates embeddings of `query` in `target` by naive backtracking.
pub fn enumerate(query: &Graph, target: &Graph, budget: &SearchBudget) -> MatchResult {
    let start = Instant::now();
    let mut clock = budget.start();
    let nq = query.node_count();
    let mut out = MatchResult::empty(StopReason::Complete);

    if let Some(r) = clock.check_now() {
        out.stop = r;
        out.elapsed = start.elapsed();
        return out;
    }
    if nq == 0 {
        // The empty query embeds once (vacuously).
        out.embeddings.push(Vec::new());
        out.num_matches = 1;
        out.elapsed = start.elapsed();
        return out;
    }
    if nq > target.node_count() {
        out.elapsed = start.elapsed();
        return out;
    }

    let mut assignment: Vec<NodeId> = vec![0; nq];
    let mut used = vec![false; target.node_count()];
    let mut stats = SearchStats::default();
    let stop = backtrack(
        query,
        target,
        0,
        &mut assignment,
        &mut used,
        &mut out.embeddings,
        &mut clock,
        &mut stats,
        budget.max_matches,
    );
    out.num_matches = out.embeddings.len();
    out.stop = match stop {
        Some(r) => r,
        None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
            StopReason::MatchLimit
        }
        None => StopReason::Complete,
    };
    out.stats = stats;
    out.elapsed = start.elapsed();
    out
}

/// Decision-problem convenience: first match only.
pub fn contains(query: &Graph, target: &Graph) -> bool {
    enumerate(query, target, &SearchBudget::first_match()).found()
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    query: &Graph,
    target: &Graph,
    depth: NodeId,
    assignment: &mut [NodeId],
    used: &mut [bool],
    found: &mut Vec<Embedding>,
    clock: &mut crate::budget::BudgetClock<'_>,
    stats: &mut SearchStats,
    max_matches: usize,
) -> Option<StopReason> {
    if depth as usize == query.node_count() {
        found.push(assignment.to_vec());
        return None;
    }
    for t in target.nodes() {
        if let Some(r) = clock.tick() {
            return Some(r);
        }
        if used[t as usize] || target.label(t) != query.label(depth) {
            continue;
        }
        stats.nodes_expanded += 1;
        // Edge consistency against already-assigned query neighbors.
        let ok = query.neighbors(depth).iter().all(|&qn| {
            if qn < depth {
                let tn = assignment[qn as usize];
                target.has_edge(tn, t)
                    && (!query.has_edge_labels()
                        || query.edge_label(depth, qn) == target.edge_label(t, tn))
            } else {
                true
            }
        });
        if !ok {
            stats.candidates_pruned += 1;
            continue;
        }
        assignment[depth as usize] = t;
        used[t as usize] = true;
        let r =
            backtrack(query, target, depth + 1, assignment, used, found, clock, stats, max_matches);
        used[t as usize] = false;
        if r.is_some() {
            return r;
        }
        if found.len() >= max_matches {
            return None;
        }
        stats.backtracks += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::is_valid_embedding;
    use psi_graph::graph::graph_from_parts;

    #[test]
    fn triangle_in_triangle() {
        let t = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        let q = t.clone();
        let r = enumerate(&q, &t, &SearchBudget::unlimited());
        // 3! = 6 automorphisms of an unlabeled triangle.
        assert_eq!(r.num_matches, 6);
        assert_eq!(r.stop, StopReason::Complete);
        for e in &r.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn labels_restrict_matches() {
        let t = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]);
        let r = enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 1);
        assert_eq!(r.embeddings[0], vec![0, 1]);
    }

    #[test]
    fn no_match_when_query_larger() {
        let t = graph_from_parts(&[0], &[]);
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        assert!(!contains(&q, &t));
    }

    #[test]
    fn empty_query_matches_vacuously() {
        let t = graph_from_parts(&[0], &[]);
        let q = graph_from_parts(&[], &[]);
        let r = enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 1);
    }

    #[test]
    fn non_induced_semantics() {
        // Query path 0-1-2 embeds into a triangle even though the triangle
        // has the extra edge (0,2): non-induced matching.
        let t = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2), (2, 0)]);
        let q = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let r = enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 6);
    }

    #[test]
    fn match_limit_respected() {
        let t = graph_from_parts(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = enumerate(&q, &t, &SearchBudget::with_max_matches(3));
        assert_eq!(r.num_matches, 3);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn edge_labels_respected() {
        use psi_graph::GraphBuilder;
        let mut b = GraphBuilder::new();
        b.add_nodes(&[0, 0, 0]);
        b.add_labeled_edge(0, 1, 1).unwrap();
        b.add_labeled_edge(1, 2, 2).unwrap();
        let t = b.build().unwrap();
        let mut b = GraphBuilder::new();
        b.add_nodes(&[0, 0]);
        b.add_labeled_edge(0, 1, 2).unwrap();
        let q = b.build().unwrap();
        let r = enumerate(&q, &t, &SearchBudget::unlimited());
        // Only the (1,2) edge has label 2; two directions.
        assert_eq!(r.num_matches, 2);
    }

    #[test]
    fn cancelled_budget_stops_immediately() {
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let t = graph_from_parts(&[0; 10], &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = enumerate(&q, &t, &SearchBudget::unlimited().cancellable(token));
        assert_eq!(r.stop, StopReason::Cancelled);
    }
}
