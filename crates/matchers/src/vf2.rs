//! VF2 (Cordella, Foggia, Sansone, Vento — TPAMI 2004).
//!
//! The underlying isomorphism algorithm of both Grapes and GGSX (§3.1.1 of
//! the paper). VF2 keeps a partial mapping plus "terminal sets" (unmatched
//! nodes adjacent to the mapping) on both sides, and extends the mapping one
//! pair at a time with three pruning rules:
//!
//! 1. consistency — the candidate target node must be adjacent to the images
//!    of the candidate query node's already-matched neighbors (with matching
//!    edge labels);
//! 2. terminal lookahead — the candidate query node must not have more
//!    unmatched neighbors *in the terminal set* than the candidate target
//!    node does;
//! 3. new-node lookahead — ditto for unmatched neighbors *outside* the
//!    terminal set.
//!
//! (For non-induced matching, both lookaheads are `≤` comparisons.)
//!
//! VF2 "does not define any order in which query vertices are selected"
//! (§3.1.1): like the reference implementation, we pick the **lowest-ID**
//! query vertex in the terminal set, which is exactly why permuting query
//! node IDs (the paper's rewritings) changes VF2's search and runtime.

use crate::budget::{BudgetClock, SearchBudget, StopReason};
use crate::matcher::{Algorithm, Embedding, MatchResult, Matcher, SearchStats};
use crate::scratch;
use psi_delta::GraphView;
use psi_graph::{Graph, NodeId, TargetIndex};
use std::sync::Arc;
use std::time::Instant;

const UNMAPPED: NodeId = NodeId::MAX;

/// VF2 prepared over a stored graph. VF2 itself needs no algorithm-
/// specific preprocessing; an indexed instance probes the shared
/// [`TargetIndex`] for root candidates and adjacency.
#[derive(Debug, Clone)]
pub struct Vf2 {
    index: Arc<TargetIndex>,
    scan: bool,
}

impl Vf2 {
    /// Wraps a stored graph, building a private [`TargetIndex`]. Prefer
    /// [`Vf2::with_index`] when several matchers share one stored graph.
    pub fn prepare(target: Arc<Graph>) -> Self {
        Self::with_index(Arc::new(TargetIndex::build(target)))
    }

    /// Indexed constructor path: shares an already-built [`TargetIndex`].
    pub fn with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, scan: false }
    }

    /// Legacy scan mode — the seed behavior: root candidates scan every
    /// target node, adjacency probes binary-search the CSR, buffers are
    /// freshly allocated per search.
    pub fn prepare_legacy(target: Arc<Graph>) -> Self {
        Self::legacy_with_index(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built (bitset-free) index —
    /// lets a runner share one index across all its scan-mode matchers
    /// instead of building one per algorithm. VF2 ignores the derived
    /// structures either way; only the graph handle is read.
    pub fn legacy_with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, scan: true }
    }
}

impl Matcher for Vf2 {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Vf2
    }

    fn target(&self) -> &Graph {
        self.index.graph()
    }

    fn index(&self) -> &Arc<TargetIndex> {
        &self.index
    }

    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult {
        let view = if self.scan {
            GraphView::of_index_scan(&self.index)
        } else {
            GraphView::of_index(&self.index)
        };
        search_inner(query, view, budget)
    }

    fn search_view(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        search_inner(query, view.with_default_index(&self.index), budget)
    }

    fn slice_session<'a>(
        &'a self,
        query: &'a Graph,
        view: GraphView<'a>,
        budget: &SearchBudget,
    ) -> crate::slice::SliceSetup<'a> {
        use crate::slice::SliceSetup;
        let view = view.with_default_index(&self.index);
        let clock = budget.start();
        if let Some(r) = clock.check_now() {
            return SliceSetup::Halted(MatchResult::empty(r));
        }
        // Degenerate cases decided by prework, mirroring `search_inner`.
        if query.node_count() == 0 {
            let mut out = MatchResult::empty(StopReason::Complete);
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            return SliceSetup::Halted(out);
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            return SliceSetup::Halted(MatchResult::empty(StopReason::Complete));
        }
        // The first vertex placed at the empty mapping is always query
        // vertex 0 (lowest-ID fallback), so the slice domain is vertex 0's
        // root-candidate list.
        let domain =
            if view.accel() { view.candidates(query.label(0)).len() } else { view.node_count() };
        SliceSetup::Ready(Box::new(Vf2SliceSession { state: State::new(query, view), domain }))
    }
}

/// Runs VF2 directly on a (query, target) pair without constructing a
/// [`Vf2`] value. The FTV systems call this per candidate graph / extracted
/// component; it is the index-free scan implementation, routed through a
/// bare [`GraphView`].
pub fn vf2_search(query: &Graph, target: &Graph, budget: &SearchBudget) -> MatchResult {
    search_inner(query, GraphView::of_graph(target), budget)
}

fn search_inner(query: &Graph, view: GraphView<'_>, budget: &SearchBudget) -> MatchResult {
    let start = Instant::now();
    let mut out = MatchResult::empty(StopReason::Complete);
    let mut clock = budget.start();
    if let Some(r) = clock.check_now() {
        out.stop = r;
        out.elapsed = start.elapsed();
        return out;
    }
    if query.node_count() == 0 {
        out.embeddings.push(Vec::new());
        out.num_matches = 1;
        out.elapsed = start.elapsed();
        return out;
    }
    if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
        out.elapsed = start.elapsed();
        return out;
    }

    let mut st = State::new(query, view);
    let stop = st.grow(0, &mut clock, &mut out.embeddings, budget.max_matches);
    out.num_matches = out.embeddings.len();
    out.stop = match stop {
        Some(r) => r,
        None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
            StopReason::MatchLimit
        }
        None => StopReason::Complete,
    };
    out.stats = st.stats;
    out.elapsed = start.elapsed();
    out
}

struct State<'a> {
    q: &'a Graph,
    /// The unified read surface: base CSR + index (+ delta overlay).
    view: GraphView<'a>,
    /// query → target mapping (UNMAPPED if free).
    core_q: scratch::U32Buf,
    /// target → query mapping (UNMAPPED if free).
    core_t: scratch::U32Buf,
    /// Depth (1-based) at which a query node entered the terminal region;
    /// 0 = not in it. Matched nodes also carry their entry depth.
    tin_q: scratch::U32Buf,
    /// Ditto for target nodes.
    tin_t: scratch::U32Buf,
    /// When slicing, the sub-range of the root-candidate domain this run
    /// enumerates. Applied only at the empty mapping (`matched == 0`);
    /// later unanchored roots (disconnected query components) stay
    /// unrestricted, so every slice explores them in full.
    root_range: Option<std::ops::Range<usize>>,
    stats: SearchStats,
}

impl<'a> State<'a> {
    fn new(q: &'a Graph, view: GraphView<'a>) -> Self {
        let pooled = view.accel();
        Self {
            q,
            view,
            core_q: scratch::u32_buf(q.node_count(), UNMAPPED, pooled),
            core_t: scratch::u32_buf(view.node_count(), UNMAPPED, pooled),
            tin_q: scratch::u32_buf(q.node_count(), 0, pooled),
            tin_t: scratch::u32_buf(view.node_count(), 0, pooled),
            root_range: None,
            stats: SearchStats::default(),
        }
    }

    /// Adjacency probe through the view (overlay, bitset fast path, or
    /// CSR binary search — counted accordingly).
    #[inline]
    fn probe_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        crate::matcher::probe_view(&self.view, u, v, &mut self.stats)
    }

    /// Picks the next query vertex: the lowest-ID unmatched vertex in the
    /// terminal set, falling back to the lowest-ID unmatched vertex when the
    /// terminal set is empty (start of search, or disconnected query).
    fn next_query_vertex(&self) -> (NodeId, bool) {
        let mut fallback = UNMAPPED;
        for v in 0..self.core_q.len() as NodeId {
            if self.core_q[v as usize] == UNMAPPED {
                if self.tin_q[v as usize] != 0 {
                    return (v, true);
                }
                if fallback == UNMAPPED {
                    fallback = v;
                }
            }
        }
        (fallback, false)
    }

    /// Rules 1–3 for the candidate pair `(qv, tv)`; labels are assumed to
    /// have been checked by the caller.
    fn feasible(&mut self, qv: NodeId, tv: NodeId) -> bool {
        // Rule 1: every matched query-neighbor's image must be adjacent,
        // with a matching edge label.
        for i in 0..self.q.neighbors(qv).len() {
            let qn = self.q.neighbors(qv)[i];
            let img = self.core_q[qn as usize];
            if img != UNMAPPED {
                if !self.probe_edge(img, tv) {
                    return false;
                }
                if self.q.has_edge_labels()
                    && self.q.edge_label(qv, qn) != self.view.edge_label(tv, img)
                {
                    return false;
                }
            }
        }
        // Rules 2 & 3: lookahead counts over unmatched neighbors.
        let (mut q_term, mut q_new) = (0usize, 0usize);
        for &qn in self.q.neighbors(qv) {
            if self.core_q[qn as usize] == UNMAPPED {
                if self.tin_q[qn as usize] != 0 {
                    q_term += 1;
                } else {
                    q_new += 1;
                }
            }
        }
        let (mut t_term, mut t_new) = (0usize, 0usize);
        for &tn in self.view.neighbors(tv) {
            if self.core_t[tn as usize] == UNMAPPED {
                if self.tin_t[tn as usize] != 0 {
                    t_term += 1;
                } else {
                    t_new += 1;
                }
            }
        }
        // Non-induced: target may have extras, query may not exceed.
        // A "new" query neighbor can also map onto a terminal target
        // neighbor, so the second comparison bounds the total.
        q_term <= t_term && q_term + q_new <= t_term + t_new
    }

    fn add_pair(&mut self, qv: NodeId, tv: NodeId, depth: u32) {
        self.core_q[qv as usize] = tv;
        self.core_t[tv as usize] = qv;
        if self.tin_q[qv as usize] == 0 {
            self.tin_q[qv as usize] = depth;
        }
        if self.tin_t[tv as usize] == 0 {
            self.tin_t[tv as usize] = depth;
        }
        for &qn in self.q.neighbors(qv) {
            if self.tin_q[qn as usize] == 0 {
                self.tin_q[qn as usize] = depth;
            }
        }
        for &tn in self.view.neighbors(tv) {
            if self.tin_t[tn as usize] == 0 {
                self.tin_t[tn as usize] = depth;
            }
        }
    }

    fn remove_pair(&mut self, qv: NodeId, tv: NodeId, depth: u32) {
        self.core_q[qv as usize] = UNMAPPED;
        self.core_t[tv as usize] = UNMAPPED;
        for x in self.tin_q.iter_mut() {
            if *x == depth {
                *x = 0;
            }
        }
        for x in self.tin_t.iter_mut() {
            if *x == depth {
                *x = 0;
            }
        }
    }

    fn grow(
        &mut self,
        matched: usize,
        clock: &mut BudgetClock<'_>,
        found: &mut Vec<Embedding>,
        max_matches: usize,
    ) -> Option<StopReason> {
        if matched == self.q.node_count() {
            found.push(self.core_q.to_vec());
            return None;
        }
        let depth = matched as u32 + 1;
        let (qv, in_terminal) = self.next_query_vertex();
        debug_assert_ne!(qv, UNMAPPED);
        let qlabel = self.q.label(qv);

        // Candidate target vertices: when qv touches the mapping, restrict
        // to the neighborhood of one matched neighbor's image (the smallest
        // such neighborhood); otherwise all target vertices with the label.
        let anchor: Option<NodeId> = if in_terminal {
            self.q
                .neighbors(qv)
                .iter()
                .copied()
                .filter(|&qn| self.core_q[qn as usize] != UNMAPPED)
                .min_by_key(|&qn| self.view.degree(self.core_q[qn as usize]))
        } else {
            None
        };

        macro_rules! try_candidate {
            ($tv:expr) => {{
                let tv: NodeId = $tv;
                if let Some(r) = clock.tick() {
                    return Some(r);
                }
                if self.core_t[tv as usize] == UNMAPPED && self.view.label(tv) == qlabel {
                    self.stats.nodes_expanded += 1;
                    if self.feasible(qv, tv) {
                        self.add_pair(qv, tv, depth);
                        let r = self.grow(matched + 1, clock, found, max_matches);
                        self.remove_pair(qv, tv, depth);
                        if r.is_some() {
                            return r;
                        }
                        if found.len() >= max_matches {
                            return None;
                        }
                        self.stats.backtracks += 1;
                    } else {
                        self.stats.candidates_pruned += 1;
                    }
                }
            }};
        }

        // Root-candidate slicing applies only at the empty mapping: the
        // very first vertex placed is what the slice domain partitions.
        let root = if matched == 0 { self.root_range.clone() } else { None };
        match anchor {
            Some(qn) => {
                let img = self.core_q[qn as usize];
                // Candidates must be adjacent to the image of the anchor.
                // The slice borrows the view's state (lifetime 'a), not
                // `self`, so the macro's `&mut self` calls are fine.
                for &tv in self.view.neighbors(img) {
                    try_candidate!(tv);
                }
            }
            None if self.view.accel() => {
                // Indexed: only vertices carrying the query label can
                // match — same visit order (IDs ascending), no full scan.
                let cands = self.view.candidates(qlabel);
                let cands = match root {
                    Some(r) => &cands[r.start.min(cands.len())..r.end.min(cands.len())],
                    None => cands,
                };
                for &tv in cands {
                    try_candidate!(tv);
                }
            }
            // Scan mode (seed behavior): every target vertex. Tombstones
            // carry the reserved label, so they never match.
            None => {
                let n = self.view.node_count();
                let (lo, hi) = match root {
                    Some(r) => (r.start.min(n), r.end.min(n)),
                    None => (0, n),
                };
                for tv in lo as NodeId..hi as NodeId {
                    try_candidate!(tv);
                }
            }
        }
        None
    }
}

/// A sliceable VF2 session: one reusable [`State`] whose `root_range` is
/// re-aimed per chunk. Safe to reuse across chunks — even halted runs
/// unwind `remove_pair` all the way out, leaving the mapping empty.
struct Vf2SliceSession<'a> {
    state: State<'a>,
    domain: usize,
}

impl crate::slice::SliceSession for Vf2SliceSession<'_> {
    fn domain(&self) -> usize {
        self.domain
    }

    fn run_chunk(
        &mut self,
        range: std::ops::Range<usize>,
        budget: &SearchBudget,
    ) -> crate::slice::ChunkOutcome {
        let mut clock = budget.start();
        let mut embeddings = Vec::new();
        self.state.root_range = Some(range.clone());
        let halted = self.state.grow(0, &mut clock, &mut embeddings, budget.max_matches);
        crate::slice::ChunkOutcome { range, embeddings, halted }
    }

    fn stats(&self) -> SearchStats {
        self.state.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::matcher::is_valid_embedding;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use psi_graph::Permutation;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sorted(mut v: Vec<Embedding>) -> Vec<Embedding> {
        v.sort();
        v
    }

    #[test]
    fn agrees_with_bruteforce_on_small_cases() {
        let cases: Vec<(Graph, Graph)> = vec![
            (graph_from_parts(&[0, 1], &[(0, 1)]), graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 2)])),
            (
                graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2), (2, 0)]),
                graph_from_parts(&[0, 0, 0, 0], &[(0, 1), (1, 2), (2, 0), (0, 3)]),
            ),
            (
                graph_from_parts(&[1, 2, 1], &[(0, 1), (1, 2)]),
                graph_from_parts(&[1, 2, 1, 2], &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            ),
        ];
        for (q, t) in cases {
            let got = vf2_search(&q, &t, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(sorted(got.embeddings), sorted(want.embeddings), "q={q:?} t={t:?}");
            assert_eq!(got.stop, StopReason::Complete);
        }
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for i in 0..40 {
            let t = random_connected_graph(10, 16, &labels, &mut rng);
            let q = random_connected_graph(4, 4, &labels, &mut rng);
            let got = vf2_search(&q, &t, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(
                sorted(got.embeddings),
                sorted(want.embeddings),
                "case {i}: q={q:?} t={t:?}"
            );
        }
    }

    #[test]
    fn disconnected_query_supported() {
        let t = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
        let q = graph_from_parts(&[0, 0], &[]); // two isolated label-0 nodes
        let got = vf2_search(&q, &t, &SearchBudget::unlimited());
        let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(sorted(got.embeddings), sorted(want.embeddings));
        assert_eq!(got.num_matches, 2); // (0,2) and (2,0)
    }

    #[test]
    fn embeddings_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(20, 40, &labels, &mut rng);
        let q = random_connected_graph(5, 6, &labels, &mut rng);
        let got = vf2_search(&q, &t, &SearchBudget::unlimited());
        for e in &got.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn first_match_budget_stops_early() {
        let t = graph_from_parts(&[0; 8], &(0..7).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = vf2_search(&q, &t, &SearchBudget::first_match());
        assert_eq!(r.num_matches, 1);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn quick_reject_on_size() {
        let t = graph_from_parts(&[0], &[]);
        let q = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2)]);
        let r = vf2_search(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 0);
        assert_eq!(r.stop, StopReason::Complete);
        assert_eq!(r.stats.nodes_expanded, 0);
    }

    #[test]
    fn matcher_trait_roundtrip() {
        let t = Arc::new(graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 2)]));
        let m = Vf2::prepare(t);
        assert_eq!(m.algorithm(), Algorithm::Vf2);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]);
        assert!(m.contains(&q));
        let q_missing = graph_from_parts(&[2], &[]);
        assert!(!m.contains(&q_missing));
    }

    #[test]
    fn isomorphic_rewriting_preserves_answer() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let t = random_connected_graph(15, 30, &labels, &mut rng);
        let q = random_connected_graph(5, 6, &labels, &mut rng);
        let orig = vf2_search(&q, &t, &SearchBudget::unlimited());
        for seed in 0..5 {
            let mut prng = ChaCha8Rng::seed_from_u64(seed);
            let p = Permutation::random(q.node_count(), &mut prng);
            let q2 = p.apply_to(&q);
            let rewritten = vf2_search(&q2, &t, &SearchBudget::unlimited());
            assert_eq!(orig.num_matches, rewritten.num_matches, "seed {seed}");
        }
    }

    #[test]
    fn rewriting_changes_search_order() {
        // A query whose node 0 is a rare label vs one whose node 0 is a
        // frequent label should expand different numbers of nodes: ID order
        // is load-bearing.
        let mut tb = psi_graph::GraphBuilder::new();
        // Target: 30 label-0 nodes in a chain, one label-1 node hanging off.
        let n0 = tb.add_node(1);
        let mut prev = tb.add_node(0);
        tb.add_edge(n0, prev).unwrap();
        for _ in 0..29 {
            let nxt = tb.add_node(0);
            tb.add_edge(prev, nxt).unwrap();
            prev = nxt;
        }
        let t = tb.build().unwrap();

        // Query: rare label 1 attached to a frequent label 0.
        let q_rare_first = graph_from_parts(&[1, 0], &[(0, 1)]);
        let q_freq_first = graph_from_parts(&[0, 1], &[(0, 1)]);
        let r1 = vf2_search(&q_rare_first, &t, &SearchBudget::unlimited());
        let r2 = vf2_search(&q_freq_first, &t, &SearchBudget::unlimited());
        assert_eq!(r1.num_matches, r2.num_matches);
        assert!(
            r1.stats.nodes_expanded < r2.stats.nodes_expanded,
            "rare-label-first should expand fewer nodes ({} vs {})",
            r1.stats.nodes_expanded,
            r2.stats.nodes_expanded
        );
    }

    #[test]
    fn cancellation_observed() {
        let token = crate::budget::CancelToken::new();
        token.cancel();
        let t = graph_from_parts(&[0, 0], &[(0, 1)]);
        let q = graph_from_parts(&[0], &[]);
        let r = vf2_search(&q, &t, &SearchBudget::unlimited().cancellable(token));
        assert_eq!(r.stop, StopReason::Cancelled);
        assert_eq!(r.num_matches, 0);
    }
}
