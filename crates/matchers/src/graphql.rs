//! GraphQL (He & Singh — SIGMOD 2008), "GQL" in the paper.
//!
//! §3.1.2: "In the indexing phase ... the labels of all vertices along with
//! the neighbourhood signatures, which capture the labels of neighbouring
//! nodes ... are indexed. In the subgraph matching phase, the algorithm
//! starts by retrieving all possible matches for each node in the pattern.
//! Subsequently, 3 rules are applied to prune the search space. First, the
//! indexed vertex labels and neighbourhood signatures are used to \[prune\]
//! infeasible matches. Then a pseudo subgraph isomorphism algorithm is
//! applied iteratively up to level l; i.e., for every pair of possible
//! graph-query vertex matches, the nodes adjacent to the query node should
//! be matched to the corresponding neighbours of the graph \[node\]. Finally,
//! the algorithm ... optimize\[s\] the search order ... based on an estimation
//! of the result-set size of intermediate joins; only left-deep query plans
//! are considered."
//!
//! The pseudo-isomorphism check is a bipartite semi-perfect matching between
//! the query node's neighbors and the target node's neighbors (Kuhn's
//! algorithm); it runs for [`GraphQl::refine_level`] iterations (paper
//! default r = 4).

use crate::budget::{BudgetClock, SearchBudget, StopReason};
use crate::matcher::{probe_view, Algorithm, Embedding, MatchResult, Matcher, SearchStats};
use crate::scratch;
use psi_delta::GraphView;
use psi_graph::{Graph, Label, NodeId, TargetIndex};
use std::sync::Arc;
use std::time::Instant;

const UNMAPPED: NodeId = NodeId::MAX;

/// Paper default refinement level ("refined level of iterations of
/// pseudo-subgraph isomorphism r = 4", §3.2).
pub const DEFAULT_REFINE_LEVEL: usize = 4;

/// Per-join-edge selectivity used by the left-deep plan cost estimate: each
/// edge joining the next vertex to the partial plan is assumed to keep this
/// fraction of candidate combinations.
const JOIN_SELECTIVITY: f64 = 0.5;

/// GraphQL prepared over a stored graph. The neighborhood signatures and
/// label lists GraphQL indexes are exactly the shared [`TargetIndex`]'s
/// structures — computed once per stored graph at matcher construction
/// (never inside `search`), and shared with every other matcher when the
/// index is. `search` only ever computes the *query's* signatures, which
/// necessarily vary per call.
#[derive(Debug)]
pub struct GraphQl {
    index: Arc<TargetIndex>,
    /// Number of pseudo-iso refinement iterations.
    refine_level: usize,
    scan: bool,
}

impl GraphQl {
    /// Runs GraphQL's indexing phase with the paper-default refinement
    /// level (4), building a private [`TargetIndex`]. Prefer
    /// [`GraphQl::with_index`] when matchers share one stored graph.
    pub fn prepare(target: Arc<Graph>) -> Self {
        Self::with_refine_level(target, DEFAULT_REFINE_LEVEL)
    }

    /// Indexing phase with an explicit pseudo-iso refinement level.
    pub fn with_refine_level(target: Arc<Graph>, refine_level: usize) -> Self {
        Self { index: Arc::new(TargetIndex::build(target)), refine_level, scan: false }
    }

    /// Indexed constructor path: the signatures/label lists are the
    /// shared index; nothing further to precompute.
    pub fn with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, refine_level: DEFAULT_REFINE_LEVEL, scan: false }
    }

    /// Legacy scan mode — the seed behavior: no bit-mask pre-filter, no
    /// dense-bitset adjacency, per-query buffer allocation. (Target
    /// signatures were already built at construction in the seed, and
    /// still are.)
    pub fn prepare_legacy(target: Arc<Graph>) -> Self {
        Self::legacy_with_index(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built (bitset-free) index —
    /// shared by a runner's scan-mode matchers.
    pub fn legacy_with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, refine_level: DEFAULT_REFINE_LEVEL, scan: true }
    }

    /// The configured pseudo-iso refinement level.
    pub fn refine_level(&self) -> usize {
        self.refine_level
    }

    /// Rule 1: initial candidate lists by label + signature containment.
    /// Target signatures are index lookups (built once at construction);
    /// only the query's signatures are computed here. Indexed matchers
    /// reject most infeasible candidates with the 64-bit label-mask
    /// pre-filter before touching the multiset. Ticks the budget clock
    /// so racing cancellation reaches even the pre-search phase promptly.
    fn initial_candidates(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        clock: &mut BudgetClock<'_>,
    ) -> Result<Vec<Vec<NodeId>>, StopReason> {
        let qsigs: Vec<Vec<Label>> =
            (0..query.node_count() as NodeId).map(|u| signature(query, u)).collect();
        let mut out = Vec::with_capacity(query.node_count());
        for u in 0..query.node_count() as NodeId {
            let qsig = &qsigs[u as usize];
            let qmask = TargetIndex::mask_of(qsig);
            let qdeg = query.degree(u);
            let mut cands = Vec::new();
            for &v in view.candidates(query.label(u)) {
                if let Some(r) = clock.tick() {
                    return Err(r);
                }
                if qdeg > view.degree(v) {
                    continue;
                }
                // Mask subset is necessary for multiset containment, so
                // the pre-filter never changes the candidate set — it
                // only skips doomed multiset walks.
                if view.accel() && qmask & !view.label_mask(v) != 0 {
                    continue;
                }
                if multiset_contains(view.signature(v), qsig) {
                    cands.push(v);
                }
            }
            out.push(cands);
        }
        Ok(out)
    }

    /// Rule 2: iterated pseudo sub-iso refinement. Removes candidate `v`
    /// for query node `u` unless the neighbors of `u` can be matched
    /// one-to-one into *distinct* candidate neighbors of `v`.
    fn refine(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        cands: &mut [Vec<NodeId>],
        clock: &mut BudgetClock<'_>,
        stats: &mut SearchStats,
    ) -> Result<(), StopReason> {
        let nq = query.node_count();
        let nt = view.node_count();
        // Membership matrix for O(1) "is v a candidate of u" checks.
        let mut member = scratch::bool_buf(nq * nt, view.accel());
        for (u, c) in cands.iter().enumerate() {
            for &v in c {
                member[u * nt + v as usize] = true;
            }
        }
        for _level in 0..self.refine_level {
            let mut changed = false;
            for u in 0..nq {
                let qn: &[NodeId] = query.neighbors(u as NodeId);
                if qn.is_empty() {
                    continue;
                }
                let mut survivors = Vec::with_capacity(cands[u].len());
                for &v in &cands[u] {
                    if let Some(r) = clock.tick() {
                        return Err(r);
                    }
                    if bipartite_match_exists(qn, view.neighbors(v), |q2, t2| {
                        member[q2 as usize * nt + t2 as usize]
                    }) {
                        survivors.push(v);
                    } else {
                        member[u * nt + v as usize] = false;
                        stats.candidates_pruned += 1;
                        changed = true;
                    }
                }
                cands[u] = survivors;
            }
            if !changed {
                break;
            }
        }
        Ok(())
    }

    /// Rule 3: left-deep join order. Greedy: start from the smallest
    /// candidate list; repeatedly append the vertex minimizing the estimated
    /// intermediate result growth `|C(u)| * JOIN_SELECTIVITY^(edges to
    /// chosen)`, preferring connected vertices and breaking ties by node ID.
    fn plan_order(&self, query: &Graph, cands: &[Vec<NodeId>]) -> Vec<NodeId> {
        let nq = query.node_count();
        let mut order: Vec<NodeId> = Vec::with_capacity(nq);
        let mut chosen = vec![false; nq];
        for step in 0..nq {
            let mut best: Option<(u8, f64, NodeId)> = None; // (disconnected?, cost, id)
            for u in 0..nq as NodeId {
                if chosen[u as usize] {
                    continue;
                }
                let links =
                    query.neighbors(u).iter().filter(|&&n| chosen[n as usize]).count() as i32;
                let disconnected = u8::from(step > 0 && links == 0);
                let cost = cands[u as usize].len() as f64 * JOIN_SELECTIVITY.powi(links);
                let better = match best {
                    None => true,
                    Some((bd, bc, _)) => (disconnected, cost) < (bd, bc),
                };
                if better {
                    best = Some((disconnected, cost, u));
                }
            }
            let (_, _, u) = best.expect("step < nq leaves an unchosen vertex");
            chosen[u as usize] = true;
            order.push(u);
        }
        order
    }
}

/// Sorted neighbor-label multiset of `v`.
fn signature(g: &Graph, v: NodeId) -> Vec<Label> {
    let mut s: Vec<Label> = g.neighbors(v).iter().map(|&n| g.label(n)).collect();
    s.sort_unstable();
    s
}

/// Whether sorted multiset `needle` is contained in sorted multiset `hay`.
fn multiset_contains(hay: &[Label], needle: &[Label]) -> bool {
    let mut i = 0;
    for &x in needle {
        loop {
            if i >= hay.len() {
                return false;
            }
            if hay[i] == x {
                i += 1;
                break;
            }
            if hay[i] > x {
                return false;
            }
            i += 1;
        }
    }
    true
}

/// Kuhn's augmenting-path bipartite matching: can every node of `left` be
/// matched to a *distinct* node of `right` where `feasible(l, r)` holds?
fn bipartite_match_exists(
    left: &[NodeId],
    right: &[NodeId],
    feasible: impl Fn(NodeId, NodeId) -> bool,
) -> bool {
    if left.len() > right.len() {
        return false;
    }
    let mut match_right: Vec<usize> = vec![usize::MAX; right.len()];
    let mut visited = vec![false; right.len()];

    fn augment(
        l: usize,
        left: &[NodeId],
        right: &[NodeId],
        feasible: &impl Fn(NodeId, NodeId) -> bool,
        match_right: &mut [usize],
        visited: &mut [bool],
    ) -> bool {
        for r in 0..right.len() {
            if visited[r] || !feasible(left[l], right[r]) {
                continue;
            }
            visited[r] = true;
            if match_right[r] == usize::MAX
                || augment(match_right[r], left, right, feasible, match_right, visited)
            {
                match_right[r] = l;
                return true;
            }
        }
        false
    }

    for l in 0..left.len() {
        visited.iter_mut().for_each(|v| *v = false);
        if !augment(l, left, right, &feasible, &mut match_right, &mut visited) {
            return false;
        }
    }
    true
}

impl Matcher for GraphQl {
    fn algorithm(&self) -> Algorithm {
        Algorithm::GraphQl
    }

    fn target(&self) -> &Graph {
        self.index.graph()
    }

    fn index(&self) -> &Arc<TargetIndex> {
        &self.index
    }

    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult {
        let view = if self.scan {
            GraphView::of_index_scan(&self.index)
        } else {
            GraphView::of_index(&self.index)
        };
        self.search_inner(query, view, budget)
    }

    fn search_view(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        self.search_inner(query, view.with_default_index(&self.index), budget)
    }

    fn slice_session<'a>(
        &'a self,
        query: &'a Graph,
        view: GraphView<'a>,
        budget: &SearchBudget,
    ) -> crate::slice::SliceSetup<'a> {
        use crate::slice::SliceSetup;
        let view = view.with_default_index(&self.index);
        let mut clock = budget.start();
        if let Some(r) = clock.check_now() {
            return SliceSetup::Halted(MatchResult::empty(r));
        }
        if query.node_count() == 0 {
            let mut out = MatchResult::empty(StopReason::Complete);
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            return SliceSetup::Halted(out);
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            return SliceSetup::Halted(MatchResult::empty(StopReason::Complete));
        }
        // Prework = rules 1–3, run once per slice task (each task owns its
        // own candidate lists; the lists are deterministic, so every task
        // computes the same plan and the same slice domain).
        let mut stats = SearchStats::default();
        let halted = |r: StopReason, stats: SearchStats| {
            let mut out = MatchResult::empty(r);
            out.stats = stats;
            SliceSetup::Halted(out)
        };
        let mut cands = match self.initial_candidates(query, view, &mut clock) {
            Ok(c) => c,
            Err(r) => return halted(r, stats),
        };
        if cands.iter().any(|c| c.is_empty()) {
            return halted(StopReason::Complete, stats);
        }
        if let Err(r) = self.refine(query, view, &mut cands, &mut clock, &mut stats) {
            return halted(r, stats);
        }
        if cands.iter().any(|c| c.is_empty()) {
            return halted(StopReason::Complete, stats);
        }
        let order = self.plan_order(query, &cands);
        let assignment = scratch::u32_buf(query.node_count(), UNMAPPED, view.accel());
        let used = scratch::bool_buf(view.node_count(), view.accel());
        let domain = cands[order[0] as usize].len();
        SliceSetup::Ready(Box::new(GraphQlSliceSession {
            matcher: self,
            query,
            view,
            order,
            cands,
            assignment,
            used,
            stats,
            domain,
        }))
    }
}

/// A sliceable GraphQL session: rules 1–3 ran at construction; each chunk
/// re-enters the backtracking join with the plan root's candidate list
/// restricted to the chunk's range. Buffers survive across chunks because
/// `join` unwinds its assignments unconditionally, even when halted.
struct GraphQlSliceSession<'a> {
    matcher: &'a GraphQl,
    query: &'a Graph,
    view: GraphView<'a>,
    order: Vec<NodeId>,
    cands: Vec<Vec<NodeId>>,
    assignment: scratch::U32Buf,
    used: scratch::BoolBuf,
    stats: SearchStats,
    domain: usize,
}

impl crate::slice::SliceSession for GraphQlSliceSession<'_> {
    fn domain(&self) -> usize {
        self.domain
    }

    fn run_chunk(
        &mut self,
        range: std::ops::Range<usize>,
        budget: &SearchBudget,
    ) -> crate::slice::ChunkOutcome {
        let mut clock = budget.start();
        let mut embeddings = Vec::new();
        let halted = self.matcher.join(
            self.query,
            self.view,
            &self.order,
            &self.cands,
            0,
            &mut self.assignment,
            &mut self.used,
            &mut embeddings,
            &mut clock,
            &mut self.stats,
            budget.max_matches,
            Some(&range),
        );
        crate::slice::ChunkOutcome { range, embeddings, halted }
    }

    fn stats(&self) -> SearchStats {
        self.stats
    }
}

impl GraphQl {
    fn search_inner(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        let start = Instant::now();
        let mut out = MatchResult::empty(StopReason::Complete);
        let mut clock = budget.start();
        if let Some(r) = clock.check_now() {
            out.stop = r;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() == 0 {
            out.embeddings.push(Vec::new());
            out.num_matches = 1;
            out.elapsed = start.elapsed();
            return out;
        }
        if query.node_count() > view.node_count() || query.edge_count() > view.edge_count() {
            out.elapsed = start.elapsed();
            return out;
        }

        let mut stats = SearchStats::default();
        // Rule 1.
        let mut cands = match self.initial_candidates(query, view, &mut clock) {
            Ok(c) => c,
            Err(r) => {
                out.stop = r;
                out.elapsed = start.elapsed();
                return out;
            }
        };
        if cands.iter().any(|c| c.is_empty()) {
            out.stats = stats;
            out.elapsed = start.elapsed();
            return out;
        }
        // Rule 2.
        if let Err(r) = self.refine(query, view, &mut cands, &mut clock, &mut stats) {
            out.stop = r;
            out.stats = stats;
            out.elapsed = start.elapsed();
            return out;
        }
        if cands.iter().any(|c| c.is_empty()) {
            out.stats = stats;
            out.elapsed = start.elapsed();
            return out;
        }
        // Rule 3 + backtracking join.
        let order = self.plan_order(query, &cands);
        let mut assignment = scratch::u32_buf(query.node_count(), UNMAPPED, view.accel());
        let mut used = scratch::bool_buf(view.node_count(), view.accel());
        let stop = self.join(
            query,
            view,
            &order,
            &cands,
            0,
            &mut assignment,
            &mut used,
            &mut out.embeddings,
            &mut clock,
            &mut stats,
            budget.max_matches,
            None,
        );
        out.num_matches = out.embeddings.len();
        out.stop = match stop {
            Some(r) => r,
            None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
                StopReason::MatchLimit
            }
            None => StopReason::Complete,
        };
        out.stats = stats;
        out.elapsed = start.elapsed();
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn join(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        order: &[NodeId],
        cands: &[Vec<NodeId>],
        depth: usize,
        assignment: &mut [NodeId],
        used: &mut [bool],
        found: &mut Vec<Embedding>,
        clock: &mut BudgetClock<'_>,
        stats: &mut SearchStats,
        max_matches: usize,
        root_range: Option<&std::ops::Range<usize>>,
    ) -> Option<StopReason> {
        if depth == order.len() {
            found.push(assignment.to_vec());
            return None;
        }
        let qv = order[depth];
        // When slicing, `root_range` restricts the plan's first vertex
        // (depth 0) to the chunk's share of its candidate list.
        let list: &[NodeId] = &cands[qv as usize];
        let list = match root_range {
            Some(r) if depth == 0 => &list[r.start.min(list.len())..r.end.min(list.len())],
            _ => list,
        };
        for &tv in list {
            if let Some(r) = clock.tick() {
                return Some(r);
            }
            if used[tv as usize] {
                continue;
            }
            stats.nodes_expanded += 1;
            let ok = query.neighbors(qv).iter().all(|&qn| {
                let tn = assignment[qn as usize];
                if tn == UNMAPPED {
                    return true;
                }
                probe_view(&view, tn, tv, stats)
                    && (!query.has_edge_labels()
                        || query.edge_label(qv, qn) == view.edge_label(tv, tn))
            });
            if !ok {
                stats.candidates_pruned += 1;
                continue;
            }
            assignment[qv as usize] = tv;
            used[tv as usize] = true;
            let r = self.join(
                query,
                view,
                order,
                cands,
                depth + 1,
                assignment,
                used,
                found,
                clock,
                stats,
                max_matches,
                root_range,
            );
            assignment[qv as usize] = UNMAPPED;
            used[tv as usize] = false;
            if r.is_some() {
                return r;
            }
            if found.len() >= max_matches {
                return None;
            }
            stats.backtracks += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::matcher::is_valid_embedding;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn gql(t: Graph) -> GraphQl {
        GraphQl::prepare(Arc::new(t))
    }

    fn sorted(mut v: Vec<Embedding>) -> Vec<Embedding> {
        v.sort();
        v
    }

    #[test]
    fn multiset_contains_works() {
        assert!(multiset_contains(&[1, 1, 2, 3], &[1, 2]));
        assert!(multiset_contains(&[1, 1, 2, 3], &[1, 1]));
        assert!(!multiset_contains(&[1, 2, 3], &[1, 1]));
        assert!(!multiset_contains(&[1, 2], &[4]));
        assert!(multiset_contains(&[1, 2], &[]));
        assert!(!multiset_contains(&[], &[1]));
    }

    #[test]
    fn bipartite_matching_basic() {
        // left {0,1} each feasible only with right {5}: no injective match.
        assert!(!bipartite_match_exists(&[0, 1], &[5, 6], |_, r| r == 5));
        // distinct options: ok.
        assert!(bipartite_match_exists(&[0, 1], &[5, 6], |l, r| (l == 0) == (r == 5)));
        // augmenting path required: 0 can take 5 or 6, 1 only 5.
        assert!(bipartite_match_exists(&[0, 1], &[5, 6], |l, r| l == 0 || r == 5));
        assert!(!bipartite_match_exists(&[0, 1, 2], &[5, 6], |_, _| true));
    }

    #[test]
    fn signature_pruning_rejects_poor_neighborhoods() {
        // Target: label-1 node whose neighbors are labels {2}; query wants
        // a label-1 node with neighbors {2, 3}.
        let t = graph_from_parts(&[1, 2], &[(0, 1)]);
        let m = gql(t);
        let q = graph_from_parts(&[1, 2, 3], &[(0, 1), (0, 2)]);
        let budget = SearchBudget::unlimited();
        let mut clock = budget.start();
        let cands = m.initial_candidates(&q, GraphView::of_index(&m.index), &mut clock).unwrap();
        assert!(cands[0].is_empty(), "signature containment must fail");
    }

    #[test]
    fn refinement_uses_injective_neighbor_matching() {
        // Query center needs two distinct label-2 neighbors; target center
        // has exactly two -> survives; target with one label-2 neighbor and
        // one label-9 neighbor is rejected by rule 1 already, so craft a
        // rule-2 case: neighbors exist but their own candidates are empty.
        let t = graph_from_parts(&[1, 2, 2, 9], &[(0, 1), (0, 2), (0, 3)]);
        let m = gql(t);
        let q = graph_from_parts(&[1, 2, 2], &[(0, 1), (0, 2)]);
        let r = m.search(&q, &SearchBudget::unlimited());
        // center -> 0, the two leaves -> {1,2} in both orders.
        assert_eq!(r.num_matches, 2);
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(808);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for i in 0..40 {
            let t = random_connected_graph(12, 20, &labels, &mut rng);
            let q = random_connected_graph(5, 6, &labels, &mut rng);
            let m = gql(t.clone());
            let got = m.search(&q, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(sorted(got.embeddings), sorted(want.embeddings), "case {i}");
        }
    }

    #[test]
    fn plan_order_starts_with_most_selective() {
        let mut tb = psi_graph::GraphBuilder::new();
        // 20 label-0 nodes, 1 label-1 node, fully connected star on label-1.
        let hub = tb.add_node(1);
        for _ in 0..20 {
            let v = tb.add_node(0);
            tb.add_edge(hub, v).unwrap();
        }
        let t = tb.build().unwrap();
        let m = gql(t);
        let q = graph_from_parts(&[0, 1], &[(0, 1)]); // node 1 is rare
        let budget = SearchBudget::unlimited();
        let mut clock = budget.start();
        let cands = m.initial_candidates(&q, GraphView::of_index(&m.index), &mut clock).unwrap();
        let order = m.plan_order(&q, &cands);
        assert_eq!(order[0], 1, "rare label-1 vertex should lead the plan");
    }

    #[test]
    fn embeddings_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(25, 50, &labels, &mut rng);
        let q = random_connected_graph(5, 5, &labels, &mut rng);
        let m = gql(t.clone());
        let r = m.search(&q, &SearchBudget::paper_default());
        for e in &r.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn match_cap_honored() {
        let t = graph_from_parts(&[0; 10], &(0..9).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let m = gql(t);
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = m.search(&q, &SearchBudget::with_max_matches(4));
        assert_eq!(r.num_matches, 4);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn refine_level_zero_still_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
        let t = random_connected_graph(10, 15, &labels, &mut rng);
        let q = random_connected_graph(4, 4, &labels, &mut rng);
        let m0 = GraphQl::with_refine_level(Arc::new(t.clone()), 0);
        let got = m0.search(&q, &SearchBudget::unlimited());
        let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
        assert_eq!(sorted(got.embeddings), sorted(want.embeddings));
    }

    #[test]
    fn matcher_trait() {
        let t = Arc::new(graph_from_parts(&[0, 1], &[(0, 1)]));
        let m = GraphQl::prepare(t);
        assert_eq!(m.algorithm(), Algorithm::GraphQl);
        assert_eq!(m.refine_level(), DEFAULT_REFINE_LEVEL);
        assert!(m.contains(&graph_from_parts(&[0, 1], &[(0, 1)])));
    }

    #[test]
    fn empty_query() {
        let t = graph_from_parts(&[0], &[]);
        assert_eq!(
            gql(t).search(&graph_from_parts(&[], &[]), &SearchBudget::unlimited()).num_matches,
            1
        );
    }
}
