//! Per-worker scratch-buffer reuse for the matchers' search state.
//!
//! Every search allocates the same transient buffers: an assignment
//! vector, a `used` flag array sized to the target, and (for the
//! matrix-based matchers) an `nq × nt` membership matrix. Under a
//! serving engine those allocations happen once per *entrant per
//! query* — pure allocator traffic on the steady-state hot path. This
//! module keeps a small thread-local pool of `Vec<u32>` / `Vec<bool>`
//! buffers: pooled workers are long-lived threads, so after warm-up a
//! search's buffers are recycled capacity, not fresh heap.
//!
//! Buffers are handed out as guards ([`U32Buf`], [`BoolBuf`]) that
//! return their storage to the pool on drop. Legacy-scan matchers (the
//! seed behavior the `indexed_speedup` bench compares against) request
//! *unpooled* buffers, which behave exactly like `vec![..]`.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Buffers retained per kind per thread; anything beyond this is simply
/// freed (a pool is a cache, not a leak).
const POOL_CAP: usize = 16;

#[derive(Default)]
struct Pool {
    u32s: Vec<Vec<u32>>,
    bools: Vec<Vec<bool>>,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// A pooled (or, in legacy mode, plain) `Vec<u32>` sized and filled on
/// acquisition; returns to the thread-local pool on drop when pooled.
pub struct U32Buf {
    buf: Vec<u32>,
    pooled: bool,
}

/// A pooled (or plain) `Vec<bool>`, cleared to `false` on acquisition.
pub struct BoolBuf {
    buf: Vec<bool>,
    pooled: bool,
}

/// Acquires a `Vec<u32>` of `len` elements, all set to `fill`. With
/// `pooled == false` this is exactly `vec![fill; len]`.
pub fn u32_buf(len: usize, fill: u32, pooled: bool) -> U32Buf {
    let mut buf = if pooled {
        POOL.with(|p| p.borrow_mut().u32s.pop()).unwrap_or_default()
    } else {
        Vec::new()
    };
    buf.clear();
    buf.resize(len, fill);
    U32Buf { buf, pooled }
}

/// Acquires a `Vec<bool>` of `len` elements, all `false`. With
/// `pooled == false` this is exactly `vec![false; len]`.
pub fn bool_buf(len: usize, pooled: bool) -> BoolBuf {
    let mut buf = if pooled {
        POOL.with(|p| p.borrow_mut().bools.pop()).unwrap_or_default()
    } else {
        Vec::new()
    };
    buf.clear();
    buf.resize(len, false);
    BoolBuf { buf, pooled }
}

impl Deref for U32Buf {
    type Target = Vec<u32>;
    #[inline]
    fn deref(&self) -> &Vec<u32> {
        &self.buf
    }
}

impl DerefMut for U32Buf {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<u32> {
        &mut self.buf
    }
}

impl Deref for BoolBuf {
    type Target = Vec<bool>;
    #[inline]
    fn deref(&self) -> &Vec<bool> {
        &self.buf
    }
}

impl DerefMut for BoolBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<bool> {
        &mut self.buf
    }
}

impl Drop for U32Buf {
    fn drop(&mut self) {
        if self.pooled {
            let buf = std::mem::take(&mut self.buf);
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.u32s.len() < POOL_CAP {
                    pool.u32s.push(buf);
                }
            });
        }
    }
}

impl Drop for BoolBuf {
    fn drop(&mut self) {
        if self.pooled {
            let buf = std::mem::take(&mut self.buf);
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.bools.len() < POOL_CAP {
                    pool.bools.push(buf);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_sized_and_filled() {
        let a = u32_buf(4, 7, true);
        assert_eq!(&a[..], &[7, 7, 7, 7]);
        let b = bool_buf(3, true);
        assert_eq!(&b[..], &[false, false, false]);
        let c = u32_buf(2, 0, false);
        assert_eq!(&c[..], &[0, 0]);
    }

    #[test]
    fn pooled_capacity_is_recycled_on_this_thread() {
        {
            let mut a = u32_buf(100, 0, true);
            a[99] = 5;
        } // returned to the pool
        let b = u32_buf(10, 3, true);
        assert!(b.capacity() >= 100, "recycled buffer keeps its capacity");
        assert_eq!(&b[..], &[3; 10], "stale contents are cleared");
    }

    #[test]
    fn unpooled_buffers_do_not_touch_the_pool() {
        // Drain the pool first.
        while POOL.with(|p| p.borrow_mut().bools.pop()).is_some() {}
        drop(bool_buf(50, false));
        assert!(POOL.with(|p| p.borrow().bools.is_empty()));
    }

    #[test]
    fn pool_is_bounded() {
        let many: Vec<U32Buf> = (0..POOL_CAP + 8).map(|_| u32_buf(8, 0, true)).collect();
        drop(many);
        assert!(POOL.with(|p| p.borrow().u32s.len()) <= POOL_CAP);
    }
}
