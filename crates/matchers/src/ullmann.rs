//! Ullmann's algorithm (JACM 1976) — reference \[18\] of the paper.
//!
//! The classic candidate-matrix formulation: a boolean matrix `M[q][t]`
//! holds the surviving target candidates for every query vertex, seeded by
//! label and degree, and *refined* before every branching step: a candidate
//! `t` for `q` survives only if every neighbor of `q` still has at least one
//! candidate among the neighbors of `t`. Vertices are matched strictly in
//! **query node-ID order** — Ullmann is the most order-sensitive algorithm
//! in the suite, which makes it a useful extreme point for the rewriting
//! experiments.

use crate::budget::{BudgetClock, SearchBudget, StopReason};
use crate::matcher::{Algorithm, Embedding, MatchResult, Matcher, SearchStats};
use crate::scratch;
use psi_delta::GraphView;
use psi_graph::{Graph, NodeId, TargetIndex};
use std::sync::Arc;
use std::time::Instant;

/// Ullmann prepared over a stored graph. An indexed instance seeds its
/// candidate matrix from the shared [`TargetIndex`]'s label lists
/// instead of scanning the full `nq × nt` label matrix per query.
#[derive(Debug, Clone)]
pub struct Ullmann {
    index: Arc<TargetIndex>,
    scan: bool,
}

impl Ullmann {
    /// Wraps a stored graph, building a private [`TargetIndex`]. Prefer
    /// [`Ullmann::with_index`] when matchers share one stored graph.
    pub fn prepare(target: Arc<Graph>) -> Self {
        Self::with_index(Arc::new(TargetIndex::build(target)))
    }

    /// Indexed constructor path: shares an already-built [`TargetIndex`].
    pub fn with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, scan: false }
    }

    /// Legacy scan mode — the seed behavior: the candidate matrix is
    /// seeded by a full `nq × nt` label/degree scan and adjacency probes
    /// binary-search the CSR.
    pub fn prepare_legacy(target: Arc<Graph>) -> Self {
        Self::legacy_with_index(Arc::new(TargetIndex::build_without_bitset(target)))
    }

    /// Legacy scan mode over an already-built (bitset-free) index —
    /// shared by a runner's scan-mode matchers; Ullmann ignores the
    /// derived structures and only reads the graph handle.
    pub fn legacy_with_index(index: Arc<TargetIndex>) -> Self {
        Self { index, scan: true }
    }
}

impl Matcher for Ullmann {
    fn algorithm(&self) -> Algorithm {
        Algorithm::Ullmann
    }

    fn target(&self) -> &Graph {
        self.index.graph()
    }

    fn index(&self) -> &Arc<TargetIndex> {
        &self.index
    }

    fn search(&self, query: &Graph, budget: &SearchBudget) -> MatchResult {
        let view = if self.scan {
            GraphView::of_index_scan(&self.index)
        } else {
            GraphView::of_index(&self.index)
        };
        search_inner(query, view, budget)
    }

    fn search_view(
        &self,
        query: &Graph,
        view: GraphView<'_>,
        budget: &SearchBudget,
    ) -> MatchResult {
        search_inner(query, view.with_default_index(&self.index), budget)
    }
}

/// Candidate matrix: row per query node, dense bit-less boolean per target
/// node. Query/target sizes in this workload are small enough that a
/// `Vec<bool>` row beats bit-twiddling in clarity at negligible cost.
/// Indexed searches draw the storage from the per-worker scratch pool.
struct Matrix {
    cols: usize,
    data: scratch::BoolBuf,
}

impl Matrix {
    fn new(rows: usize, cols: usize, pooled: bool) -> Self {
        Self { cols, data: scratch::bool_buf(rows * cols, pooled) }
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> bool {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: bool) {
        self.data[r * self.cols + c] = v;
    }

    fn row_empty(&self, r: usize) -> bool {
        !self.data[r * self.cols..(r + 1) * self.cols].iter().any(|&b| b)
    }
}

/// Runs Ullmann on a (query, target) pair — the index-free scan
/// implementation (the seed behavior), routed through a bare
/// [`GraphView`].
pub fn ullmann_search(query: &Graph, target: &Graph, budget: &SearchBudget) -> MatchResult {
    search_inner(query, GraphView::of_graph(target), budget)
}

fn search_inner(query: &Graph, view: GraphView<'_>, budget: &SearchBudget) -> MatchResult {
    let start = Instant::now();
    let mut out = MatchResult::empty(StopReason::Complete);
    let mut clock = budget.start();
    if let Some(r) = clock.check_now() {
        out.stop = r;
        out.elapsed = start.elapsed();
        return out;
    }
    let pooled = view.accel();
    let nq = query.node_count();
    let nt = view.node_count();
    if nq == 0 {
        out.embeddings.push(Vec::new());
        out.num_matches = 1;
        out.elapsed = start.elapsed();
        return out;
    }
    if nq > nt || query.edge_count() > view.edge_count() {
        out.elapsed = start.elapsed();
        return out;
    }

    // Seed matrix: label equality + degree feasibility (non-induced, so
    // deg(q) <= deg(t)).
    let mut m = Matrix::new(nq, nt, pooled);
    if view.accel() {
        // Indexed: only the label's candidate list is visited — the
        // seeded membership is identical to the scan, without the
        // `nq × nt` label scan per query.
        for q in 0..nq {
            let qdeg = query.degree(q as NodeId);
            for &t in view.candidates(query.label(q as NodeId)) {
                if qdeg <= view.degree(t) {
                    m.set(q, t as usize, true);
                }
            }
        }
    } else {
        for q in 0..nq {
            for t in 0..nt {
                m.set(
                    q,
                    t,
                    query.label(q as NodeId) == view.label(t as NodeId)
                        && query.degree(q as NodeId) <= view.degree(t as NodeId),
                );
            }
        }
    }

    let mut stats = SearchStats::default();
    if !refine(query, view, &mut m, &mut stats) {
        out.stats = stats;
        out.elapsed = start.elapsed();
        return out;
    }

    let mut assignment = scratch::u32_buf(nq, 0, pooled);
    let mut used = scratch::bool_buf(nt, pooled);
    let stop = backtrack(
        query,
        view,
        0,
        &m,
        &mut assignment,
        &mut used,
        &mut out.embeddings,
        &mut clock,
        &mut stats,
        budget.max_matches,
    );
    out.num_matches = out.embeddings.len();
    out.stop = match stop {
        Some(r) => r,
        None if out.num_matches >= budget.max_matches && budget.max_matches != usize::MAX => {
            StopReason::MatchLimit
        }
        None => StopReason::Complete,
    };
    out.stats = stats;
    out.elapsed = start.elapsed();
    out
}

/// Ullmann's refinement: iterate to a fixpoint removing candidates `(q, t)`
/// for which some neighbor of `q` has no candidate among `t`'s neighbors.
/// Returns false if some query vertex loses all candidates.
fn refine(query: &Graph, view: GraphView<'_>, m: &mut Matrix, stats: &mut SearchStats) -> bool {
    let nq = query.node_count();
    let nt = view.node_count();
    let mut changed = true;
    while changed {
        changed = false;
        for q in 0..nq {
            for t in 0..nt {
                if !m.get(q, t) {
                    continue;
                }
                let ok = query.neighbors(q as NodeId).iter().all(|&qn| {
                    view.neighbors(t as NodeId).iter().any(|&tn| m.get(qn as usize, tn as usize))
                });
                if !ok {
                    m.set(q, t, false);
                    stats.candidates_pruned += 1;
                    changed = true;
                }
            }
            if m.row_empty(q) {
                return false;
            }
        }
    }
    true
}

#[allow(clippy::too_many_arguments)]
fn backtrack(
    query: &Graph,
    view: GraphView<'_>,
    depth: usize,
    m: &Matrix,
    assignment: &mut [NodeId],
    used: &mut [bool],
    found: &mut Vec<Embedding>,
    clock: &mut BudgetClock<'_>,
    stats: &mut SearchStats,
    max_matches: usize,
) -> Option<StopReason> {
    if depth == query.node_count() {
        found.push(assignment.to_vec());
        return None;
    }
    let qv = depth as NodeId;
    for t in 0..view.node_count() {
        if let Some(r) = clock.tick() {
            return Some(r);
        }
        if used[t] || !m.get(depth, t) {
            continue;
        }
        stats.nodes_expanded += 1;
        // Edge consistency against earlier assignments.
        let tv = t as NodeId;
        let ok = query.neighbors(qv).iter().all(|&qn| {
            if qn < qv {
                let tn = assignment[qn as usize];
                crate::matcher::probe_view(&view, tn, tv, stats)
                    && (!query.has_edge_labels()
                        || query.edge_label(qv, qn) == view.edge_label(tv, tn))
            } else {
                true
            }
        });
        if !ok {
            stats.candidates_pruned += 1;
            continue;
        }
        assignment[depth] = tv;
        used[t] = true;
        let r = backtrack(
            query,
            view,
            depth + 1,
            m,
            assignment,
            used,
            found,
            clock,
            stats,
            max_matches,
        );
        used[t] = false;
        if r.is_some() {
            return r;
        }
        if found.len() >= max_matches {
            return None;
        }
        stats.backtracks += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce;
    use crate::matcher::is_valid_embedding;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sorted(mut v: Vec<Embedding>) -> Vec<Embedding> {
        v.sort();
        v
    }

    #[test]
    fn agrees_with_bruteforce_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(31337);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for i in 0..40 {
            let t = random_connected_graph(10, 18, &labels, &mut rng);
            let q = random_connected_graph(4, 4, &labels, &mut rng);
            let got = ullmann_search(&q, &t, &SearchBudget::unlimited());
            let want = bruteforce::enumerate(&q, &t, &SearchBudget::unlimited());
            assert_eq!(sorted(got.embeddings), sorted(want.embeddings), "case {i}");
        }
    }

    #[test]
    fn refinement_prunes() {
        // A path query on a star target: refinement should kill leaf-center
        // confusion quickly.
        let t = graph_from_parts(&[0, 1, 1, 1, 1], &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let q = graph_from_parts(&[1, 0, 1], &[(0, 1), (1, 2)]);
        let r = ullmann_search(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 4 * 3);
        for e in &r.embeddings {
            assert!(is_valid_embedding(&q, &t, e));
        }
    }

    #[test]
    fn impossible_query_pruned_before_search() {
        // Query needs degree 3 on label 1, target has max degree 2 there.
        let t = graph_from_parts(&[1, 0, 0], &[(0, 1), (0, 2)]);
        let q = graph_from_parts(&[1, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]);
        let r = ullmann_search(&q, &t, &SearchBudget::unlimited());
        assert_eq!(r.num_matches, 0);
        assert_eq!(r.stats.nodes_expanded, 0, "refinement should preempt search");
    }

    #[test]
    fn match_limit() {
        let t = graph_from_parts(&[0; 6], &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let q = graph_from_parts(&[0, 0], &[(0, 1)]);
        let r = ullmann_search(&q, &t, &SearchBudget::with_max_matches(2));
        assert_eq!(r.num_matches, 2);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn matcher_trait() {
        let t = Arc::new(graph_from_parts(&[0, 1], &[(0, 1)]));
        let m = Ullmann::prepare(t);
        assert_eq!(m.algorithm(), Algorithm::Ullmann);
        assert!(m.contains(&graph_from_parts(&[1], &[])));
    }

    #[test]
    fn empty_query() {
        let t = graph_from_parts(&[0], &[]);
        let q = graph_from_parts(&[], &[]);
        assert_eq!(ullmann_search(&q, &t, &SearchBudget::unlimited()).num_matches, 1);
    }

    #[test]
    fn timeout_reported() {
        let t = graph_from_parts(&[0, 0], &[(0, 1)]);
        let q = graph_from_parts(&[0], &[]);
        let b = SearchBudget::unlimited()
            .deadline_at(Instant::now() - std::time::Duration::from_millis(1));
        let r = ullmann_search(&q, &t, &b);
        assert_eq!(r.stop, StopReason::TimedOut);
    }
}
