//! # psi-matchers — subgraph-isomorphism algorithms
//!
//! Rust reimplementations of the five sub-iso engines used by the paper
//! (§3.1), all behind the common [`Matcher`] trait:
//!
//! * [`vf2`] — VF2 (Cordella et al., TPAMI 2004): the verification engine of
//!   the FTV systems (Grapes/GGSX). No preprocessing; order-free heuristic
//!   with node-ID tie-breaking.
//! * [`ullmann`] — Ullmann (JACM 1976): the classic candidate-matrix
//!   refinement algorithm, matching strictly in query node-ID order.
//! * [`quicksi`] — QuickSI (Shang et al., PVLDB 2008): infrequent-label
//!   first, rooted-MST search order weighted by "average inner support".
//! * [`graphql`] — GraphQL (He & Singh, SIGMOD 2008): neighborhood
//!   signatures, iterated pseudo sub-iso refinement, left-deep join-order
//!   optimization.
//! * [`spath`] — sPath (Zhao & Han, PVLDB 2010): distance-wise neighborhood
//!   signatures, shortest-path decomposition of the query, path-at-a-time
//!   matching with edge-by-edge verification.
//!
//! A brute-force enumerator ([`bruteforce`]) serves as the correctness
//! oracle for tests.
//!
//! ## Semantics
//!
//! All matchers solve **non-induced subgraph isomorphism** (Def. 3 of the
//! paper): an injective, label- and edge-preserving map from the query into
//! the stored graph. Matching stops at the configured embedding cap
//! (default 1000, per the paper's setup §3.2), at a deadline, or on
//! cooperative cancellation — see [`SearchBudget`].
//!
//! ## Order sensitivity (load-bearing!)
//!
//! Every matcher breaks heuristic ties by **query node ID**, exactly like
//! the reference implementations. This is the property the paper's
//! Observation 2 rests on: isomorphic queries (same structure, permuted
//! IDs) can take wildly different times, and the ILF/IND/DND rewritings
//! work by permuting IDs so that the tie-breaking favours selective
//! vertices.
//!
//! ```
//! use psi_graph::graph::graph_from_parts;
//! use psi_matchers::{vf2::Vf2, Matcher, SearchBudget};
//!
//! let target = graph_from_parts(&[0, 1, 1, 0], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let query = graph_from_parts(&[0, 1], &[(0, 1)]);
//! let m = Vf2::prepare(target.into());
//! let res = m.search(&query, &SearchBudget::unlimited());
//! assert_eq!(res.num_matches, 2); // node 0→(0,1) and node 3→(3,2)
//! ```

pub mod bruteforce;
pub mod budget;
pub mod graphql;
pub mod matcher;
pub mod quicksi;
pub mod scratch;
pub mod slice;
pub mod spath;
pub mod ullmann;
pub mod vf2;

pub use budget::{CancelToken, SearchBudget, StopReason};
pub use matcher::{Algorithm, Embedding, MatchResult, Matcher, SearchStats};
pub use slice::{
    sliced_search_view, ChunkOutcome, SliceCoordinator, SliceSession, SliceSetup, SliceTaskSummary,
};
