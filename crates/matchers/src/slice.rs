//! Intra-query parallelism: work-stealing root-candidate slices.
//!
//! A single matcher search is bounded by one thread walking the whole
//! root-candidate space in ID order. This module partitions that space —
//! the [`TargetIndex`](psi_graph::TargetIndex) candidate list (or node-ID
//! range, in scan mode) of the query's start vertex — into chunks that
//! cooperating *slice tasks* claim from a shared atomic cursor. A task
//! that drains its natural share keeps claiming: every claim after a
//! task's first counts as a **steal**, so stragglers shed their tail to
//! idle siblings automatically.
//!
//! ## Determinism contract
//!
//! A sliced search must be observably identical to the single-threaded
//! search whenever both are conclusive:
//!
//! * every chunk runs under the *global* embedding cap, so each chunk's
//!   embeddings are a DFS-prefix of that chunk's subtree;
//! * chunks merge in ascending range order, truncated at the cap — which
//!   reproduces exactly the first `cap` embeddings of the canonical
//!   (single-slice) enumeration order;
//! * the commit frontier tracks the *contiguous* completed prefix: only
//!   when the prefix alone holds `cap` embeddings does the group cancel
//!   its remaining siblings early, so early cancellation can never
//!   change the merged answer.
//!
//! Inconclusive outcomes (timeout, race cancellation) keep the merged
//! contiguous prefix found so far and report the interrupting reason,
//! mirroring a single-threaded search interrupted mid-walk.
//!
//! ## Group cancellation
//!
//! Each slice group owns a [`CancelToken::linked`] child of the race
//! token: a slice observes both the race-wide kill (a sibling *entrant*
//! won) and the group-local stop (the committed prefix reached the cap),
//! while the group cancelling itself never touches the race token.

use crate::budget::{CancelToken, SearchBudget, StopReason};
use crate::matcher::{Embedding, MatchResult, Matcher, SearchStats};
use psi_delta::GraphView;
use psi_graph::Graph;
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Target number of chunks each task's natural share is divided into.
/// Finer chunks steal better but pay more claim/commit traffic; 4 keeps
/// the steal granularity useful while the cursor stays cold.
const CHUNKS_PER_TASK: usize = 4;

/// Sentinel for "domain not resolved yet" (no task has finished prework).
const DOMAIN_UNRESOLVED: usize = usize::MAX;

/// What preparing a matcher for sliced execution produced.
pub enum SliceSetup<'a> {
    /// This matcher cannot partition its root-candidate space; the group
    /// falls back to one ordinary `search_view` call (single slice).
    Unsupported,
    /// Prework already decided the search (empty candidate lists, size
    /// reject, vacuous empty-query match) or was interrupted before any
    /// enumeration could start. The result stands for the whole search.
    Halted(MatchResult),
    /// Prework succeeded: the session enumerates root-candidate ranges.
    Ready(Box<dyn SliceSession + 'a>),
}

/// One task's prepared search state: prework (candidate filtering, plan
/// ordering, matching-sequence construction) ran **once** at
/// construction; [`SliceSession::run_chunk`] then enumerates any range
/// of the root-candidate domain against it. Sessions are created and
/// driven on a single thread; the coordinator is what's shared.
pub trait SliceSession {
    /// Size of the root-candidate domain this session partitions. Every
    /// task of a group computes the same value (prework is
    /// deterministic); the first to finish prework publishes it.
    fn domain(&self) -> usize;

    /// Enumerates root candidates in `range` (indices into the domain),
    /// finding at most `budget.max_matches` embeddings (the *global*
    /// cap — see the determinism contract) and heeding the budget's
    /// deadline and cancellation.
    fn run_chunk(&mut self, range: Range<usize>, budget: &SearchBudget) -> ChunkOutcome;

    /// Cumulative work counters for this task: prework plus every chunk
    /// run so far.
    fn stats(&self) -> SearchStats;
}

/// What one claimed chunk produced.
pub struct ChunkOutcome {
    /// The domain range this chunk covered.
    pub range: Range<usize>,
    /// Embeddings found, in the chunk's canonical DFS order.
    pub embeddings: Vec<Embedding>,
    /// `Some` when the chunk was interrupted (deadline or cancellation)
    /// before exhausting its range; `None` when the range completed or
    /// the per-chunk cap was reached.
    pub halted: Option<StopReason>,
}

/// Per-task summary, for trace events and steal accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct SliceTaskSummary {
    /// Chunks this task ran.
    pub chunks: u32,
    /// Claims after the task's first — ranges stolen from the shared
    /// cursor beyond its natural share.
    pub steals: u32,
    /// Whether this task ran the whole search unsliced (the matcher
    /// returned [`SliceSetup::Unsupported`]).
    pub fallback: bool,
}

/// Mutable group state behind the coordinator's lock.
struct SliceState {
    /// Completed chunk outcomes, any order; sorted at merge time.
    chunks: Vec<ChunkOutcome>,
    /// A whole-search result (fallback run or prework verdict), if any.
    whole: Option<MatchResult>,
    /// Folded per-task work counters (prework + chunks, every task).
    stats: SearchStats,
    /// First unfinished domain index: everything below completed.
    frontier: usize,
    /// Embeddings in the contiguous completed prefix `[0, frontier)`.
    committed: usize,
    /// Completed (un-halted) chunks waiting above the frontier:
    /// `start → (end, embedding count)`.
    pending: BTreeMap<usize, (usize, usize)>,
}

/// Shared bookkeeping of one sliced search: the steal cursor, the
/// lazily-published domain, the commit frontier, and the merge. Tasks
/// call [`SliceCoordinator::run_task`] then [`SliceCoordinator::finish_task`];
/// exactly one task (the last to finish) receives the merged result.
pub struct SliceCoordinator {
    /// Next unclaimed domain index; grows past `domain` once drained.
    cursor: AtomicUsize,
    /// Root-candidate domain size; [`DOMAIN_UNRESOLVED`] until the first
    /// task finishes prework and publishes it.
    domain: AtomicUsize,
    /// Chunk granularity, fixed when the domain resolves.
    chunk: AtomicUsize,
    steals: AtomicU64,
    /// Whether some task already claimed the unsliced fallback run.
    fallback: AtomicBool,
    /// Tasks that have not called [`SliceCoordinator::finish_task`] yet.
    remaining: AtomicUsize,
    tasks: usize,
    /// The per-chunk budget: global cap + deadline, cancel = the group
    /// token (linked under the outer token, if any).
    budget: SearchBudget,
    group: CancelToken,
    started: Instant,
    inner: Mutex<SliceState>,
}

impl SliceCoordinator {
    /// A coordinator for `tasks` cooperating slice tasks running under
    /// `outer` (the entrant's race-wired budget). The group token is
    /// linked under `outer`'s token, so slices stop on either a race
    /// kill or the group's own cap-reached signal.
    pub fn new(outer: &SearchBudget, tasks: usize) -> Self {
        let tasks = tasks.max(1);
        let group = match &outer.cancel {
            Some(token) => CancelToken::linked(token),
            None => CancelToken::new(),
        };
        let budget = SearchBudget {
            max_matches: outer.max_matches,
            deadline: outer.deadline,
            cancel: Some(group.clone()),
        };
        Self {
            cursor: AtomicUsize::new(0),
            domain: AtomicUsize::new(DOMAIN_UNRESOLVED),
            chunk: AtomicUsize::new(1),
            steals: AtomicU64::new(0),
            fallback: AtomicBool::new(false),
            remaining: AtomicUsize::new(tasks),
            tasks,
            budget,
            group,
            started: Instant::now(),
            inner: Mutex::new(SliceState {
                chunks: Vec::new(),
                whole: None,
                stats: SearchStats::default(),
                frontier: 0,
                committed: 0,
                pending: BTreeMap::new(),
            }),
        }
    }

    /// Number of cooperating tasks in this group.
    pub fn tasks(&self) -> usize {
        self.tasks
    }

    /// Total ranges stolen so far (claims beyond each task's first).
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// The group-local cancellation token (linked under the race token).
    pub fn group_token(&self) -> &CancelToken {
        &self.group
    }

    /// Publishes the domain size (first prework to finish wins; every
    /// task computes the same value) and fixes the chunk granularity.
    fn resolve_domain(&self, domain: usize) {
        let chunk = (domain / (self.tasks * CHUNKS_PER_TASK)).max(1);
        self.chunk.store(chunk, Ordering::Release);
        let _ = self.domain.compare_exchange(
            DOMAIN_UNRESOLVED,
            domain,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }

    /// Claims the next unclaimed chunk, or `None` when the domain is
    /// drained.
    fn claim(&self) -> Option<Range<usize>> {
        let domain = self.domain.load(Ordering::Acquire);
        debug_assert_ne!(domain, DOMAIN_UNRESOLVED, "claim before prework resolved the domain");
        let chunk = self.chunk.load(Ordering::Acquire).max(1);
        let start = self.cursor.fetch_add(chunk, Ordering::AcqRel);
        (start < domain).then(|| start..(start + chunk).min(domain))
    }

    /// Records a finished chunk and advances the commit frontier. When
    /// the contiguous completed prefix alone holds `cap` embeddings the
    /// merged answer is already determined — cancel the group so sibling
    /// slices stop burning workers on ranges the merge will truncate.
    fn commit(&self, outcome: ChunkOutcome) {
        let mut inner = self.inner.lock().expect("slice group lock");
        if outcome.halted.is_none() {
            inner
                .pending
                .insert(outcome.range.start, (outcome.range.end, outcome.embeddings.len()));
            while let Some((&start, &(end, count))) = inner.pending.first_key_value() {
                if start != inner.frontier {
                    break;
                }
                inner.pending.remove(&start);
                inner.frontier = end;
                inner.committed += count;
            }
            if self.budget.max_matches != usize::MAX && inner.committed >= self.budget.max_matches {
                self.group.cancel();
            }
        }
        inner.chunks.push(outcome);
    }

    fn fold_stats(&self, stats: SearchStats) {
        let mut inner = self.inner.lock().expect("slice group lock");
        let s = &mut inner.stats;
        s.nodes_expanded += stats.nodes_expanded;
        s.candidates_pruned += stats.candidates_pruned;
        s.backtracks += stats.backtracks;
        s.edge_probes_bitset += stats.edge_probes_bitset;
        s.edge_probes_binary += stats.edge_probes_binary;
    }

    /// One task's whole body: prework via [`Matcher::slice_session`],
    /// then claim-and-run chunks until the domain drains or the budget
    /// trips. Matchers without slicing support fall back to one ordinary
    /// search (run by whichever task gets there first).
    pub fn run_task(
        &self,
        matcher: &dyn Matcher,
        query: &Graph,
        view: GraphView<'_>,
    ) -> SliceTaskSummary {
        let mut summary = SliceTaskSummary::default();
        // A helper arriving after the group stopped (race decided,
        // domain drained) skips prework entirely — its prework would be
        // pure overhead with no chunk left to run.
        if self.budget.start().check_now().is_some() {
            return summary;
        }
        let domain = self.domain.load(Ordering::Acquire);
        if domain != DOMAIN_UNRESOLVED && self.cursor.load(Ordering::Acquire) >= domain {
            return summary;
        }
        match matcher.slice_session(query, view, &self.budget) {
            SliceSetup::Unsupported => {
                if !self.fallback.swap(true, Ordering::AcqRel) {
                    let result = matcher.search_view(query, view, &self.budget);
                    summary.fallback = true;
                    self.fold_stats(result.stats);
                    let mut inner = self.inner.lock().expect("slice group lock");
                    inner.whole.get_or_insert(result);
                }
            }
            SliceSetup::Halted(result) => {
                self.fold_stats(result.stats);
                let mut inner = self.inner.lock().expect("slice group lock");
                // Conclusive prework verdicts are deterministic across
                // tasks; prefer one over any interrupted task's reason.
                let replace = match &inner.whole {
                    None => true,
                    Some(w) => !w.stop.is_conclusive() && result.stop.is_conclusive(),
                };
                if replace {
                    inner.whole = Some(result);
                }
            }
            SliceSetup::Ready(mut session) => {
                self.resolve_domain(session.domain());
                let mut first = true;
                while let Some(range) = self.claim() {
                    if first {
                        first = false;
                    } else {
                        summary.steals += 1;
                        self.steals.fetch_add(1, Ordering::Relaxed);
                    }
                    summary.chunks += 1;
                    let outcome = session.run_chunk(range, &self.budget);
                    let halted = outcome.halted.is_some();
                    self.commit(outcome);
                    if halted {
                        break;
                    }
                }
                self.fold_stats(session.stats());
            }
        }
        summary
    }

    /// Marks this task done. The **last** task to finish merges the
    /// group's chunks and returns the final result; everyone else gets
    /// `None`.
    pub fn finish_task(&self) -> Option<MatchResult> {
        (self.remaining.fetch_sub(1, Ordering::AcqRel) == 1).then(|| self.conclude())
    }

    /// Deterministic merge: ascending range order, truncated at the cap.
    fn conclude(&self) -> MatchResult {
        let (chunks, whole, stats) = {
            let mut inner = self.inner.lock().expect("slice group lock");
            (std::mem::take(&mut inner.chunks), inner.whole.take(), inner.stats)
        };
        let mut result = match whole {
            Some(w) if w.stop.is_conclusive() || chunks.is_empty() => w,
            _ => {
                // A claimed-but-never-run range (task panicked, or the
                // group stopped before claims drained) reads as this
                // interruption reason.
                let gap = self.budget.start().check_now().unwrap_or(StopReason::Cancelled);
                merge_chunks(
                    chunks,
                    self.domain.load(Ordering::Acquire),
                    self.budget.max_matches,
                    gap,
                )
            }
        };
        result.num_matches = result.embeddings.len();
        result.stats = stats;
        result.elapsed = self.started.elapsed();
        result
    }
}

/// Merges chunk outcomes into one [`MatchResult`]. See the module docs
/// for the determinism argument.
fn merge_chunks(
    mut chunks: Vec<ChunkOutcome>,
    domain: usize,
    cap: usize,
    gap_reason: StopReason,
) -> MatchResult {
    chunks.sort_by_key(|c| c.range.start);
    let mut embeddings: Vec<Embedding> = Vec::new();
    let mut expected = 0usize;
    let mut stop: Option<StopReason> = None;
    for chunk in chunks {
        if chunk.range.start != expected {
            stop = Some(gap_reason);
            break;
        }
        for e in chunk.embeddings {
            if cap != usize::MAX && embeddings.len() >= cap {
                break;
            }
            embeddings.push(e);
        }
        if cap != usize::MAX && embeddings.len() >= cap {
            stop = Some(StopReason::MatchLimit);
            break;
        }
        if let Some(r) = chunk.halted {
            stop = Some(r);
            break;
        }
        expected = chunk.range.end;
    }
    let stop = stop.unwrap_or(if domain != DOMAIN_UNRESOLVED && expected >= domain {
        StopReason::Complete
    } else {
        gap_reason
    });
    let mut out = MatchResult::empty(stop);
    out.num_matches = embeddings.len();
    out.embeddings = embeddings;
    out
}

/// Runs `matcher` on `query` split into `slices` cooperating tasks on
/// scoped threads — the library-level entry point used by tests and the
/// comparison harness. The engine drives the same coordinator from its
/// shared worker pool instead. `slices <= 1` runs the ordinary search.
pub fn sliced_search_view(
    matcher: &dyn Matcher,
    query: &Graph,
    view: GraphView<'_>,
    budget: &SearchBudget,
    slices: usize,
) -> MatchResult {
    if slices <= 1 {
        return matcher.search_view(query, view, budget);
    }
    let coord = SliceCoordinator::new(budget, slices);
    std::thread::scope(|scope| {
        let coord = &coord;
        let handles: Vec<_> = (1..slices)
            .map(|_| {
                scope.spawn(move || {
                    coord.run_task(matcher, query, view);
                    coord.finish_task()
                })
            })
            .collect();
        coord.run_task(matcher, query, view);
        let mut out = coord.finish_task();
        for handle in handles {
            if let Some(result) = handle.join().expect("slice task must not panic") {
                out = Some(result);
            }
        }
        out.expect("exactly one slice task concludes the group")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(start: usize, end: usize, n: usize, halted: Option<StopReason>) -> ChunkOutcome {
        ChunkOutcome {
            range: start..end,
            embeddings: (0..n).map(|i| vec![(start * 100 + i) as u32]).collect(),
            halted,
        }
    }

    #[test]
    fn merge_complete_tiling() {
        let r = merge_chunks(
            vec![chunk(4, 8, 1, None), chunk(0, 4, 2, None)],
            8,
            usize::MAX,
            StopReason::Cancelled,
        );
        assert_eq!(r.stop, StopReason::Complete);
        assert_eq!(r.embeddings.len(), 3);
        // Ascending range order regardless of completion order.
        assert_eq!(r.embeddings[0], vec![0]);
        assert_eq!(r.embeddings[2], vec![400]);
    }

    #[test]
    fn merge_truncates_at_cap() {
        let r = merge_chunks(
            vec![chunk(0, 4, 3, None), chunk(4, 8, 3, None)],
            8,
            4,
            StopReason::Cancelled,
        );
        assert_eq!(r.stop, StopReason::MatchLimit);
        assert_eq!(r.embeddings.len(), 4);
        assert_eq!(r.embeddings[3], vec![400], "cap cuts inside the second chunk");
    }

    #[test]
    fn merge_exact_cap_is_match_limit() {
        let r = merge_chunks(vec![chunk(0, 8, 4, None)], 8, 4, StopReason::Cancelled);
        assert_eq!(r.stop, StopReason::MatchLimit);
    }

    #[test]
    fn merge_reports_first_interruption() {
        let r = merge_chunks(
            vec![chunk(0, 4, 1, Some(StopReason::TimedOut)), chunk(4, 8, 2, None)],
            8,
            usize::MAX,
            StopReason::Cancelled,
        );
        assert_eq!(r.stop, StopReason::TimedOut);
        assert_eq!(r.embeddings.len(), 1, "only the contiguous prefix survives");
    }

    #[test]
    fn merge_gap_is_inconclusive() {
        let r = merge_chunks(
            vec![chunk(0, 4, 1, None), chunk(6, 8, 1, None)],
            8,
            usize::MAX,
            StopReason::Cancelled,
        );
        assert_eq!(r.stop, StopReason::Cancelled);
        assert_eq!(r.embeddings.len(), 1);
    }

    #[test]
    fn merge_cap_beats_interruption_in_same_chunk() {
        // The cap is reached by embeddings found *before* the chunk was
        // interrupted: the merged prefix equals the capped single-slice
        // answer, so the verdict must be conclusive.
        let r = merge_chunks(
            vec![chunk(0, 4, 3, Some(StopReason::TimedOut))],
            8,
            2,
            StopReason::Cancelled,
        );
        assert_eq!(r.stop, StopReason::MatchLimit);
        assert_eq!(r.embeddings.len(), 2);
    }

    #[test]
    fn empty_domain_is_complete() {
        let r = merge_chunks(Vec::new(), 0, usize::MAX, StopReason::Cancelled);
        assert_eq!(r.stop, StopReason::Complete);
        assert_eq!(r.num_matches, 0);
    }

    #[test]
    fn coordinator_chunks_cover_domain_exactly_once() {
        let budget = SearchBudget::unlimited();
        let coord = SliceCoordinator::new(&budget, 3);
        coord.resolve_domain(100);
        let mut seen = [false; 100];
        while let Some(range) = coord.claim() {
            for i in range {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index claimed");
    }

    #[test]
    fn commit_frontier_cancels_group_at_cap() {
        let budget = SearchBudget::with_max_matches(3);
        let coord = SliceCoordinator::new(&budget, 2);
        coord.resolve_domain(10);
        // Out-of-order completion: the later range first.
        coord.commit(chunk(5, 10, 5, None));
        assert!(!coord.group_token().is_cancelled(), "prefix [0,5) still missing");
        coord.commit(chunk(0, 5, 3, None));
        assert!(coord.group_token().is_cancelled(), "contiguous prefix holds the cap");
    }
}
