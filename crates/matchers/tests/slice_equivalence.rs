//! Sliced-vs-single-slice equivalence: partitioning a matcher's root-
//! candidate space across cooperating slice tasks is an *execution*
//! strategy, not a semantic one — for random graph/query pairs the merged
//! sliced result must carry the same verdict and the same embedding
//! sequence as the ordinary single-threaded search, under unlimited,
//! match-capped, and mid-search-timeout budgets, in both indexed and
//! legacy scan preparation modes.
//!
//! The deterministic merge (ascending range order, truncated at the
//! global cap) makes capped results byte-identical, not merely
//! equivalent as sets; only wall-clock timeouts, which cut searches at
//! machine-dependent points, are compared verdict-only (and only when
//! both sides are conclusive).

use proptest::prelude::*;
use psi_delta::GraphView;
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::{Graph, TargetIndex};
use psi_matchers::matcher::is_valid_embedding;
use psi_matchers::{sliced_search_view, Algorithm, Matcher, SearchBudget, StopReason};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

/// The three sliceable matchers plus two that exercise the
/// single-slice fallback path (`SliceSetup::Unsupported`).
const ALGORITHMS: [Algorithm; 5] =
    [Algorithm::Vf2, Algorithm::QuickSi, Algorithm::GraphQl, Algorithm::Ullmann, Algorithm::SPath];

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 2 }.sampler();
    let target = random_connected_graph(24, 46, &labels, &mut rng);
    let query = random_connected_graph(5, 6, &labels, &mut rng);
    (query, target)
}

/// Both preparation modes for one algorithm over one stored graph.
fn both_modes(alg: Algorithm, stored: &Arc<Graph>) -> [(Arc<dyn Matcher>, bool); 2] {
    let index = Arc::new(TargetIndex::build(Arc::clone(stored)));
    [(alg.prepare_indexed(index), false), (alg.prepare_legacy(Arc::clone(stored)), true)]
}

fn view_for(m: &dyn Matcher, scan: bool) -> GraphView<'_> {
    if scan {
        GraphView::of_index_scan(m.index())
    } else {
        GraphView::of_index(m.index())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unlimited budget: identical embedding sequences (not just sets).
    #[test]
    fn prop_sliced_equals_single_slice(seed in 0u64..100_000, slices in 2usize..6) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        for alg in ALGORITHMS {
            for (m, scan) in both_modes(alg, &stored) {
                let budget = SearchBudget::unlimited();
                let view = view_for(m.as_ref(), scan);
                let single = m.search_view(&query, view, &budget);
                let sliced = sliced_search_view(m.as_ref(), &query, view, &budget, slices);
                prop_assert_eq!(sliced.stop, single.stop, "{} scan={} stop", alg, scan);
                prop_assert_eq!(
                    &sliced.embeddings, &single.embeddings,
                    "{} scan={} slices={}", alg, scan, slices
                );
                prop_assert_eq!(sliced.num_matches, sliced.embeddings.len());
                for e in &sliced.embeddings {
                    prop_assert!(is_valid_embedding(&query, &target, e), "{}", alg);
                }
            }
        }
    }

    /// Match caps: every chunk runs under the global cap and the merge
    /// truncates in canonical order, so capped sliced output equals the
    /// capped single-slice prefix exactly.
    #[test]
    fn prop_sliced_equivalence_under_match_caps(
        seed in 0u64..100_000,
        cap in 1usize..6,
        slices in 2usize..6,
    ) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        for alg in ALGORITHMS {
            for (m, scan) in both_modes(alg, &stored) {
                let budget = SearchBudget::with_max_matches(cap);
                let view = view_for(m.as_ref(), scan);
                let single = m.search_view(&query, view, &budget);
                let sliced = sliced_search_view(m.as_ref(), &query, view, &budget, slices);
                prop_assert_eq!(sliced.stop, single.stop, "{} scan={} cap={}", alg, scan, cap);
                prop_assert_eq!(
                    &sliced.embeddings, &single.embeddings,
                    "{} scan={} cap={}", alg, scan, cap
                );
                for e in &sliced.embeddings {
                    prop_assert!(is_valid_embedding(&query, &target, e), "{}", alg);
                }
            }
        }
    }

    /// Mid-search timeouts cut both executions at machine-dependent
    /// points: compare verdicts only when both sides are conclusive, and
    /// require every reported embedding (from either side) to be valid.
    #[test]
    fn prop_sliced_equivalence_under_timeouts(
        seed in 0u64..100_000,
        micros in 0u64..300,
        slices in 2usize..5,
    ) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        for alg in ALGORITHMS {
            for (m, scan) in both_modes(alg, &stored) {
                let budget = SearchBudget::unlimited().timeout(Duration::from_micros(micros));
                let view = view_for(m.as_ref(), scan);
                let single = m.search_view(&query, view, &budget);
                let sliced = sliced_search_view(m.as_ref(), &query, view, &budget, slices);
                for (label, r) in [("single", &single), ("sliced", &sliced)] {
                    prop_assert!(
                        r.stop == StopReason::TimedOut || r.stop == StopReason::Complete,
                        "{} {} unexpected stop {:?}", alg, label, r.stop
                    );
                    for e in &r.embeddings {
                        prop_assert!(is_valid_embedding(&query, &target, e), "{} {}", alg, label);
                    }
                }
                if sliced.is_conclusive() && single.is_conclusive() {
                    prop_assert_eq!(sliced.found(), single.found(), "{} verdicts", alg);
                }
            }
        }
    }
}

/// A race-cancelled slice group reports `Cancelled` without inventing a
/// verdict, exactly like a cancelled single-slice search.
#[test]
fn cancelled_group_is_inconclusive() {
    let (query, target) = pair(3);
    let stored = Arc::new(target);
    let token = psi_matchers::CancelToken::new();
    token.cancel();
    let budget = SearchBudget::unlimited().cancellable(token);
    for alg in ALGORITHMS {
        for (m, scan) in both_modes(alg, &stored) {
            let view = view_for(m.as_ref(), scan);
            let sliced = sliced_search_view(m.as_ref(), &query, view, &budget, 4);
            assert_eq!(sliced.stop, StopReason::Cancelled, "{alg} scan={scan}");
            assert_eq!(sliced.num_matches, 0);
        }
    }
}

/// More slices than root candidates: surplus tasks find the cursor
/// drained and exit; the merge still tiles the whole domain.
#[test]
fn oversliced_group_still_complete() {
    let (query, target) = pair(11);
    let stored = Arc::new(target.clone());
    for alg in [Algorithm::Vf2, Algorithm::QuickSi, Algorithm::GraphQl] {
        for (m, scan) in both_modes(alg, &stored) {
            let budget = SearchBudget::unlimited();
            let view = view_for(m.as_ref(), scan);
            let single = m.search_view(&query, view, &budget);
            let sliced = sliced_search_view(m.as_ref(), &query, view, &budget, 32);
            assert_eq!(sliced.stop, single.stop, "{alg} scan={scan}");
            assert_eq!(sliced.embeddings, single.embeddings, "{alg} scan={scan}");
        }
    }
}
