//! Budget conformance across all five matchers: deadlines, cancellation,
//! caps and work counters behave uniformly — the contract the Ψ racing
//! engine depends on.

use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::Graph;
use psi_matchers::{Algorithm, CancelToken, SearchBudget, StopReason};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::{Duration, Instant};

const ALL: [Algorithm; 5] =
    [Algorithm::Vf2, Algorithm::Ullmann, Algorithm::QuickSi, Algorithm::GraphQl, Algorithm::SPath];

fn hard_pair() -> (Graph, Graph) {
    // A dense single-label target with a sizable single-label query: a
    // worst case with astronomically many embeddings — guaranteed to keep
    // any matcher busy far beyond a tiny deadline.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let labels = LabelDist::Uniform { num_labels: 1 }.sampler();
    let target = random_connected_graph(60, 500, &labels, &mut rng);
    let query = random_connected_graph(12, 18, &labels, &mut rng);
    (query, target)
}

#[test]
fn pre_expired_deadline_stops_every_matcher_immediately() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let budget =
            SearchBudget::unlimited().deadline_at(Instant::now() - Duration::from_millis(1));
        let t0 = Instant::now();
        let r = m.search(&query, &budget);
        assert_eq!(r.stop, StopReason::TimedOut, "{alg}");
        assert!(t0.elapsed() < Duration::from_millis(100), "{alg} did not stop fast");
    }
}

#[test]
fn mid_search_deadline_is_honored_promptly() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let budget = SearchBudget::unlimited().timeout(Duration::from_millis(20));
        let t0 = Instant::now();
        let r = m.search(&query, &budget);
        let took = t0.elapsed();
        assert_eq!(r.stop, StopReason::TimedOut, "{alg} should exceed 20ms on this input");
        assert!(took < Duration::from_millis(500), "{alg} overshot its deadline: {took:?}");
    }
}

#[test]
fn pre_set_cancellation_stops_every_matcher() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let token = CancelToken::new();
        token.cancel();
        let r = m.search(&query, &SearchBudget::unlimited().cancellable(token));
        assert_eq!(r.stop, StopReason::Cancelled, "{alg}");
        assert_eq!(r.num_matches, 0, "{alg}");
    }
}

#[test]
fn concurrent_cancellation_unblocks_every_matcher() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let token = CancelToken::new();
        let budget = SearchBudget::unlimited().cancellable(token.clone());
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| m.search(&query, &budget));
            std::thread::sleep(Duration::from_millis(15));
            token.cancel();
            let r = handle.join().expect("no panic");
            assert_eq!(r.stop, StopReason::Cancelled, "{alg}");
        });
        assert!(
            t0.elapsed() < Duration::from_millis(500),
            "{alg} ignored cancellation for {:?}",
            t0.elapsed()
        );
    }
}

#[test]
fn embedding_cap_is_exact_for_every_matcher() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        for cap in [1usize, 10, 100] {
            let r = m.search(&query, &SearchBudget::with_max_matches(cap));
            assert_eq!(r.num_matches, cap, "{alg} cap {cap}");
            assert_eq!(r.embeddings.len(), cap, "{alg} cap {cap}");
            assert_eq!(r.stop, StopReason::MatchLimit, "{alg} cap {cap}");
        }
    }
}

#[test]
fn work_counters_are_populated() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let r = m.search(&query, &SearchBudget::with_max_matches(50));
        assert!(r.stats.nodes_expanded > 0, "{alg} expanded nothing");
        assert!(r.elapsed > Duration::ZERO, "{alg} reported zero elapsed");
    }
}

#[test]
fn timeout_results_are_not_conclusive_but_partial_matches_are_reported() {
    let (query, target) = hard_pair();
    let shared = Arc::new(target);
    for alg in ALL {
        let m = alg.prepare(Arc::clone(&shared));
        let budget = SearchBudget::with_max_matches(usize::MAX).timeout(Duration::from_millis(30));
        let r = m.search(&query, &budget);
        assert_eq!(r.stop, StopReason::TimedOut, "{alg}");
        assert!(!r.is_conclusive() || r.found(), "{alg}");
        // Whatever it found before the deadline must be valid embeddings.
        for e in r.embeddings.iter().take(5) {
            assert!(
                psi_matchers::matcher::is_valid_embedding(&query, &shared, e),
                "{alg} returned a bogus partial embedding"
            );
        }
    }
}
