//! Indexed-vs-legacy matcher equivalence: for random graph/query pairs,
//! every matcher prepared over the shared [`TargetIndex`] must return
//! the same verdict (and the same embeddings, all valid) as the seed
//! scan-based implementation — including under budgets that cap the
//! match count or time out mid-search. The index is an *acceleration*
//! structure; any observable divergence is a bug.
//!
//! The indexed paths deliberately enumerate candidates in the same
//! order as the seed scans (label lists sorted by node ID = the ID scan
//! filtered by label), so even budget-truncated searches must produce
//! identical embedding sequences; only wall-clock timeouts, which cut
//! the two searches at machine-dependent points, are compared verdict-
//! only.

use proptest::prelude::*;
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::{Graph, TargetIndex};
use psi_matchers::matcher::is_valid_embedding;
use psi_matchers::{bruteforce, Algorithm, SearchBudget, StopReason};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;

const ALGORITHMS: [Algorithm; 5] =
    [Algorithm::Vf2, Algorithm::Ullmann, Algorithm::QuickSi, Algorithm::GraphQl, Algorithm::SPath];

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let target = random_connected_graph(18, 34, &labels, &mut rng);
    let query = random_connected_graph(5, 6, &labels, &mut rng);
    (query, target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Unlimited budget: identical embedding sequences, matching the
    /// brute-force ground truth verdict, all embeddings valid. One
    /// shared index serves all five matchers.
    #[test]
    fn prop_indexed_matchers_equal_legacy_scan(seed in 0u64..100_000) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
        let truth = bruteforce::contains(&query, &target);
        for alg in ALGORITHMS {
            let indexed = alg.prepare_indexed(Arc::clone(&index));
            let legacy = alg.prepare_legacy(Arc::clone(&stored));
            let budget = SearchBudget::unlimited();
            let got = indexed.search(&query, &budget);
            let want = legacy.search(&query, &budget);
            prop_assert_eq!(got.stop, want.stop, "{} stop reason", alg);
            prop_assert_eq!(&got.embeddings, &want.embeddings, "{} embeddings", alg);
            prop_assert_eq!(got.found(), truth, "{} vs brute force", alg);
            for e in &got.embeddings {
                prop_assert!(is_valid_embedding(&query, &target, e), "{} embedding", alg);
            }
        }
    }

    /// Match-limit budgets truncate both searches at the same point:
    /// the embedding sequences stay identical, not just the verdicts.
    #[test]
    fn prop_equivalence_under_match_caps(seed in 0u64..100_000, cap in 1usize..6) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
        for alg in ALGORITHMS {
            let indexed = alg.prepare_indexed(Arc::clone(&index));
            let legacy = alg.prepare_legacy(Arc::clone(&stored));
            let budget = SearchBudget::with_max_matches(cap);
            let got = indexed.search(&query, &budget);
            let want = legacy.search(&query, &budget);
            prop_assert_eq!(got.stop, want.stop, "{} stop under cap {}", alg, cap);
            prop_assert_eq!(&got.embeddings, &want.embeddings, "{} embeddings cap {}", alg, cap);
            for e in &got.embeddings {
                prop_assert!(is_valid_embedding(&query, &target, e), "{} embedding", alg);
            }
        }
    }

    /// Budgets that time out mid-search: the cut points are machine-
    /// dependent, so only *conclusive* results are comparable — and when
    /// both sides conclude, the verdicts must agree. Every embedding
    /// either side reports must still be valid.
    #[test]
    fn prop_equivalence_under_timeouts(seed in 0u64..100_000, micros in 0u64..300) {
        let (query, target) = pair(seed);
        let stored = Arc::new(target.clone());
        let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
        for alg in ALGORITHMS {
            let indexed = alg.prepare_indexed(Arc::clone(&index));
            let legacy = alg.prepare_legacy(Arc::clone(&stored));
            let budget = SearchBudget::unlimited().timeout(Duration::from_micros(micros));
            let got = indexed.search(&query, &budget);
            let want = legacy.search(&query, &budget);
            for (label, r) in [("indexed", &got), ("legacy", &want)] {
                prop_assert!(
                    r.stop == StopReason::TimedOut || r.stop == StopReason::Complete,
                    "{} {} unexpected stop {:?}", alg, label, r.stop
                );
                for e in &r.embeddings {
                    prop_assert!(is_valid_embedding(&query, &target, e), "{} {}", alg, label);
                }
            }
            if got.is_conclusive() && want.is_conclusive() {
                prop_assert_eq!(got.found(), want.found(), "{} conclusive verdicts", alg);
            }
        }
    }
}

/// An already-expired deadline stops both modes before any search work.
#[test]
fn expired_deadline_is_equivalent() {
    let (query, target) = pair(7);
    let stored = Arc::new(target);
    let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
    let budget =
        SearchBudget::unlimited().deadline_at(std::time::Instant::now() - Duration::from_millis(1));
    for alg in ALGORITHMS {
        let got = alg.prepare_indexed(Arc::clone(&index)).search(&query, &budget);
        let want = alg.prepare_legacy(Arc::clone(&stored)).search(&query, &budget);
        assert_eq!(got.stop, StopReason::TimedOut, "{alg}");
        assert_eq!(want.stop, StopReason::TimedOut, "{alg}");
        assert_eq!(got.num_matches, 0);
        assert_eq!(want.num_matches, 0);
    }
}
