//! Property tests for the workload layer: query-generation contracts and
//! metric identities.

use proptest::prelude::*;
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_workload::metrics::{max_min_ratio, qla, speedup_qla, speedup_star, wla, SummaryStats};
use psi_workload::{CapConfig, Class, QueryGen};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated queries are connected subgraphs of the requested size,
    /// with labels drawn from the source graph's alphabet.
    #[test]
    fn prop_query_gen_contract(seed in 0u64..50_000, edges in 1usize..12) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        let g = random_connected_graph(25, 50, &labels, &mut rng);
        if let Some(q) = QueryGen::new(seed).query_from_graph(&g, edges) {
            prop_assert_eq!(q.edge_count(), edges);
            prop_assert!(psi_graph::components::is_connected(&q));
            prop_assert!(q.max_label().unwrap_or(0) < 4);
            prop_assert!(q.node_count() <= edges + 1);
        }
    }

    /// Metric identities: comparing a set against itself gives exactly 1.
    #[test]
    fn prop_self_comparison_is_one(times in prop::collection::vec(0.001f64..100.0, 1..50)) {
        prop_assert!((wla(&times, &times).expect("non-empty") - 1.0).abs() < 1e-9);
        prop_assert!((qla(&times, &times).expect("non-empty") - 1.0).abs() < 1e-9);
    }

    /// (max/min) is ≥ 1 and scale-invariant.
    #[test]
    fn prop_max_min_scale_invariant(
        times in prop::collection::vec(0.001f64..100.0, 1..10),
        k in 0.01f64..100.0,
    ) {
        let r = max_min_ratio(&times).expect("positive inputs");
        prop_assert!(r >= 1.0 - 1e-12);
        let scaled: Vec<f64> = times.iter().map(|t| t * k).collect();
        let rs = max_min_ratio(&scaled).expect("positive inputs");
        prop_assert!((r - rs).abs() / r < 1e-9);
    }

    /// speedup★ against the best alternative is always ≥ speedup★ against
    /// any single alternative.
    #[test]
    fn prop_best_alternative_dominates(
        base in 0.001f64..100.0,
        alts in prop::collection::vec(0.001f64..100.0, 1..8),
    ) {
        let best = alts.iter().copied().fold(f64::INFINITY, f64::min);
        let s_best = speedup_star(base, best).expect("positive");
        for &a in &alts {
            prop_assert!(s_best >= speedup_star(base, a).expect("positive") - 1e-12);
        }
    }

    /// SummaryStats bounds: min ≤ median ≤ max, min ≤ mean ≤ max,
    /// stddev ≥ 0.
    #[test]
    fn prop_summary_stats_bounds(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = SummaryStats::of(&values).expect("non-empty");
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.count, values.len());
    }

    /// Classification is monotone in time: a slower completed run never
    /// lands in an "easier" class.
    #[test]
    fn prop_classification_monotone(a in 0u64..10_000, b in 0u64..10_000) {
        let cfg = CapConfig::scaled(Duration::from_millis(3000));
        let (lo, hi) = (a.min(b), a.max(b));
        let cl = cfg.classify(Duration::from_micros(lo), true);
        let ch = cfg.classify(Duration::from_micros(hi), true);
        let rank = |c: Class| match c { Class::Easy => 0, Class::Mid => 1, Class::Hard => 2 };
        prop_assert!(rank(cl) <= rank(ch));
    }

    /// The exclusion rule: if every per-query instance sits at the cap,
    /// speedup aggregation returns no samples at all.
    #[test]
    fn prop_exclusion_rule_total(n in 1usize..10) {
        let cap = 600.0;
        let base = vec![cap; n];
        let alts = vec![vec![cap; 3]; n];
        prop_assert!(speedup_qla(&base, &alts, cap).is_none());
    }
}
