//! Multi-graph workloads: mixed stored graphs plus skewed per-graph
//! traffic, and batch routing through a [`psi_engine::MultiEngine`].
//!
//! A multiplexed graph store never sees uniform traffic: stored graphs
//! differ in size and label alphabet, a few graphs dominate the request
//! stream, and within each graph a few queries repeat (cacheable heat).
//! [`MultiWorkload::generate`] builds exactly that shape,
//! deterministically, and [`submit_batch_multi`] replays it as
//! concurrent client traffic with per-graph serving breakdowns.

use crate::metrics::SummaryStats;
use crate::query_gen::Workloads;
use psi_engine::{EngineResponse, GraphId, MultiEngine, ServePath};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::Graph;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shape of a generated multi-graph workload.
#[derive(Debug, Clone)]
pub struct MultiWorkloadSpec {
    /// Number of stored graphs (default 4).
    pub graphs: usize,
    /// Nodes in the smallest stored graph (default 40).
    pub base_nodes: usize,
    /// Extra nodes per successive graph — graphs have mixed sizes
    /// (default 25).
    pub node_step: usize,
    /// Label alphabet of the smallest graph; successive graphs get one
    /// more label each, so selectivities differ per graph (default 3).
    pub base_labels: u32,
    /// Edges per generated query (default 8).
    pub query_edges: usize,
    /// Distinct queries drawn per graph; traffic repeats within this set
    /// (default 12).
    pub distinct_per_graph: usize,
    /// Total requests in the traffic stream (default 200).
    pub total_queries: usize,
    /// Zipf exponent of the per-graph traffic skew: weight of graph `g`
    /// is `1/(g+1)^skew`. 0 means uniform (default 1.0).
    pub skew: f64,
    /// Power-law exponent of the distinct-query *size* distribution.
    /// At 0 (default) every distinct query has [`query_edges`] edges;
    /// above 0 each distinct query's edge count is drawn with weight
    /// `e^-tail_alpha` from `query_edges..=tail_max_edges`, producing the
    /// heavy-tailed mix — mostly small queries plus rare large stragglers
    /// — that intra-query slicing exists to tame.
    ///
    /// [`query_edges`]: MultiWorkloadSpec::query_edges
    pub tail_alpha: f64,
    /// Largest query size (edges) in the heavy tail. Ignored unless
    /// `tail_alpha > 0` and this exceeds [`query_edges`] (default 0:
    /// tail off).
    ///
    /// [`query_edges`]: MultiWorkloadSpec::query_edges
    pub tail_max_edges: usize,
}

impl Default for MultiWorkloadSpec {
    fn default() -> Self {
        Self {
            graphs: 4,
            base_nodes: 40,
            node_step: 25,
            base_labels: 3,
            query_edges: 8,
            distinct_per_graph: 12,
            total_queries: 200,
            skew: 1.0,
            tail_alpha: 0.0,
            tail_max_edges: 0,
        }
    }
}

/// Draws one edge count from the truncated power law
/// `P(e) ∝ e^-alpha, e ∈ min..=max`.
fn power_law_edges(rng: &mut ChaCha8Rng, min: usize, max: usize, alpha: f64) -> usize {
    let weights: Vec<f64> = (min..=max).map(|e| (e as f64).powf(-alpha)).collect();
    let total: f64 = weights.iter().sum();
    let mut pick = rng.random_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return min + i;
        }
        pick -= w;
    }
    max
}

/// A generated multi-graph workload: the stored graphs and a traffic
/// stream of `(graph index, query)` requests.
#[derive(Debug)]
pub struct MultiWorkload {
    /// Stored graphs, smallest first (mixed sizes and label alphabets).
    /// Shared handles: registering them (e.g. via
    /// [`psi_core::PsiRunner::nfv_default_shared`]) needs no CSR clone.
    pub graphs: Vec<Arc<Graph>>,
    /// The request stream: graph index into [`MultiWorkload::graphs`]
    /// plus the query to run against it. Skewed across graphs and
    /// repeating within each graph's distinct-query set.
    pub traffic: Vec<(usize, Graph)>,
}

impl MultiWorkload {
    /// Deterministically generates a workload from `spec` and `seed`.
    pub fn generate(spec: &MultiWorkloadSpec, seed: u64) -> Self {
        let graphs_n = spec.graphs.max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graphs: Vec<Arc<Graph>> = (0..graphs_n)
            .map(|g| {
                let nodes = spec.base_nodes + g * spec.node_step;
                let edges = nodes * 2 + nodes / 4;
                let labels =
                    LabelDist::Uniform { num_labels: spec.base_labels + g as u32 }.sampler();
                Arc::new(random_connected_graph(nodes, edges, &labels, &mut rng))
            })
            .collect();

        // Distinct query pool per graph. Queries are grown from their
        // graph, so every request has a positive answer on *its* graph —
        // but not necessarily on any other (which is what the per-graph
        // cache-partition tests rely on). With the heavy tail on, each
        // distinct query's size is drawn from the power law instead of
        // being fixed at `query_edges`.
        let tailed = spec.tail_alpha > 0.0 && spec.tail_max_edges > spec.query_edges;
        let pools: Vec<Vec<Graph>> = graphs
            .iter()
            .enumerate()
            .map(|(g, stored)| {
                let pool_seed = seed ^ (g as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                if tailed {
                    (0..spec.distinct_per_graph.max(1))
                        .flat_map(|i| {
                            let edges = power_law_edges(
                                &mut rng,
                                spec.query_edges,
                                spec.tail_max_edges,
                                spec.tail_alpha,
                            );
                            Workloads::nfv_workload(
                                stored,
                                edges,
                                1,
                                pool_seed ^ (i as u64).wrapping_mul(0xD134_2543_DE82_EF95),
                            )
                        })
                        .collect()
                } else {
                    Workloads::nfv_workload(
                        stored,
                        spec.query_edges,
                        spec.distinct_per_graph.max(1),
                        pool_seed,
                    )
                }
            })
            .collect();

        // Zipf weights across graphs; cumulative for sampling.
        let weights: Vec<f64> =
            (0..graphs_n).map(|g| 1.0 / ((g + 1) as f64).powf(spec.skew)).collect();
        let total_weight: f64 = weights.iter().sum();

        let mut traffic = Vec::with_capacity(spec.total_queries);
        while traffic.len() < spec.total_queries {
            let mut pick = rng.random_range(0.0..total_weight);
            let mut graph = 0;
            for (g, w) in weights.iter().enumerate() {
                if pick < *w {
                    graph = g;
                    break;
                }
                pick -= w;
            }
            let pool = &pools[graph];
            if pool.is_empty() {
                // Degenerate stored graph (too small for query_edges):
                // skew the pick elsewhere. All-empty pools would loop
                // forever, so bail to whatever we have.
                if pools.iter().all(|p| p.is_empty()) {
                    break;
                }
                continue;
            }
            // Triangular repetition inside the pool (index `i` has weight
            // `n - i`): low indices dominate, so replays hit the cache.
            let n = pool.len();
            let mut r = rng.random_range(0..n * (n + 1) / 2);
            let mut idx = 0;
            while r >= n - idx {
                r -= n - idx;
                idx += 1;
            }
            traffic.push((graph, pool[idx].clone()));
        }
        Self { graphs, traffic }
    }

    /// Number of requests targeting each graph.
    pub fn per_graph_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.graphs.len()];
        for &(g, _) in &self.traffic {
            counts[g] += 1;
        }
        counts
    }
}

/// Per-graph serving breakdown within a [`MultiBatchReport`].
#[derive(Debug, Clone)]
pub struct GraphBatchStats {
    /// The graph these numbers describe.
    pub graph: GraphId,
    /// Requests routed to this graph.
    pub queries: usize,
    /// Answered from this graph's cache partition.
    pub cache_hits: usize,
    /// Answered by a full race on the shared pool.
    pub races: usize,
    /// Answered by the predictor fast path.
    pub fast_paths: usize,
    /// Mean end-to-end latency for this graph's requests, seconds.
    pub mean_latency: f64,
}

/// Aggregate outcome of one multi-graph batch run.
#[derive(Debug)]
pub struct MultiBatchReport {
    /// Per-request `(graph, response)` in traffic order.
    pub responses: Vec<(GraphId, EngineResponse)>,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Served requests per second over the batch.
    pub qps: f64,
    /// Distribution of per-request latencies, seconds.
    pub latency: Option<SummaryStats>,
    /// Requests answered from a cache partition.
    pub cache_hits: usize,
    /// Requests answered by the predictor fast path.
    pub fast_paths: usize,
    /// Requests answered by a full race.
    pub races: usize,
    /// Requests whose answer was not definitive.
    pub inconclusive: usize,
    /// Breakdown per registered graph (traffic order of first
    /// appearance; graphs receiving no traffic are omitted).
    pub per_graph: Vec<GraphBatchStats>,
}

/// Routes `traffic` through `multi` from `clients` concurrent client
/// threads (at least 1), blocking until every request is served.
/// Responses come back in traffic order regardless of completion order.
///
/// # Panics
/// Panics if a traffic entry references a [`GraphId`] that is not
/// registered with `multi` — a workload construction bug, not a serving
/// condition.
pub fn submit_batch_multi(
    multi: &MultiEngine,
    traffic: &[(GraphId, Graph)],
    clients: usize,
) -> MultiBatchReport {
    let clients = clients.clamp(1, traffic.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<EngineResponse>>> = Mutex::new(vec![None; traffic.len()]);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= traffic.len() {
                    break;
                }
                let (graph, query) = &traffic[idx];
                let response =
                    multi.submit(*graph, query).expect("traffic must target registered graphs");
                slots.lock().expect("batch slots lock")[idx] = Some(response);
            });
        }
    });
    let wall = start.elapsed();
    let responses: Vec<(GraphId, EngineResponse)> = slots
        .into_inner()
        .expect("batch slots lock")
        .into_iter()
        .zip(traffic)
        .map(|(slot, (graph, _))| (*graph, slot.expect("every request served")))
        .collect();

    let latencies: Vec<f64> = responses.iter().map(|(_, r)| r.elapsed.as_secs_f64()).collect();
    let count = |path: ServePath| responses.iter().filter(|(_, r)| r.path == path).count();

    let mut per_graph: Vec<GraphBatchStats> = Vec::new();
    for (graph, response) in &responses {
        let entry = match per_graph.iter_mut().find(|s| s.graph == *graph) {
            Some(entry) => entry,
            None => {
                per_graph.push(GraphBatchStats {
                    graph: *graph,
                    queries: 0,
                    cache_hits: 0,
                    races: 0,
                    fast_paths: 0,
                    mean_latency: 0.0,
                });
                per_graph.last_mut().expect("just pushed")
            }
        };
        entry.queries += 1;
        entry.mean_latency += response.elapsed.as_secs_f64();
        match response.path {
            ServePath::CacheHit => entry.cache_hits += 1,
            ServePath::Race => entry.races += 1,
            ServePath::FastPath => entry.fast_paths += 1,
        }
    }
    for entry in &mut per_graph {
        entry.mean_latency /= entry.queries.max(1) as f64;
    }

    MultiBatchReport {
        cache_hits: count(ServePath::CacheHit),
        fast_paths: count(ServePath::FastPath),
        races: count(ServePath::Race),
        inconclusive: responses.iter().filter(|(_, r)| !r.conclusive).count(),
        latency: SummaryStats::of(&latencies),
        qps: if wall.as_secs_f64() > 0.0 {
            responses.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall,
        responses,
        per_graph,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::{PsiRunner, RaceBudget};
    use psi_engine::{EngineConfig, MultiEngineConfig};
    use std::sync::Arc;

    #[test]
    fn generated_workload_has_mixed_graphs_and_skewed_traffic() {
        let spec = MultiWorkloadSpec { total_queries: 120, ..MultiWorkloadSpec::default() };
        let w = MultiWorkload::generate(&spec, 11);
        assert_eq!(w.graphs.len(), 4);
        // Mixed sizes: strictly growing node counts.
        for pair in w.graphs.windows(2) {
            assert!(pair[0].node_count() < pair[1].node_count());
        }
        assert_eq!(w.traffic.len(), 120);
        let counts = w.per_graph_counts();
        assert!(counts.iter().all(|&c| c > 0), "every graph sees some traffic: {counts:?}");
        assert!(counts[0] > counts[3], "Zipf skew must favour the first graph: {counts:?}");
        // Determinism.
        let w2 = MultiWorkload::generate(&spec, 11);
        assert_eq!(w.per_graph_counts(), w2.per_graph_counts());
        assert_eq!(w.traffic.len(), w2.traffic.len());
    }

    #[test]
    fn heavy_tail_mixes_query_sizes() {
        let spec = MultiWorkloadSpec {
            graphs: 2,
            total_queries: 80,
            distinct_per_graph: 16,
            query_edges: 4,
            tail_alpha: 2.5,
            tail_max_edges: 20,
            ..MultiWorkloadSpec::default()
        };
        let w = MultiWorkload::generate(&spec, 7);
        let sizes: Vec<usize> = w.traffic.iter().map(|(_, q)| q.edge_count()).collect();
        let small = sizes.iter().filter(|&&e| e <= spec.query_edges * 2).count();
        let large = sizes.iter().filter(|&&e| e > spec.query_edges * 2).count();
        assert!(small > large, "the power law must favour small queries: {sizes:?}");
        assert!(large > 0, "the tail must produce some large stragglers: {sizes:?}");
        // Determinism: the tailed generator is still seed-stable.
        let w2 = MultiWorkload::generate(&spec, 7);
        let sizes2: Vec<usize> = w2.traffic.iter().map(|(_, q)| q.edge_count()).collect();
        assert_eq!(sizes, sizes2);
        // Alpha 0 keeps the legacy fixed-size behavior.
        let flat =
            MultiWorkload::generate(&MultiWorkloadSpec { tail_alpha: 0.0, ..spec.clone() }, 7);
        assert!(flat.traffic.iter().all(|(_, q)| q.edge_count() == spec.query_edges));
    }

    #[test]
    fn batch_routes_every_request_to_its_graph() {
        let spec = MultiWorkloadSpec {
            graphs: 3,
            total_queries: 60,
            distinct_per_graph: 6,
            ..MultiWorkloadSpec::default()
        };
        let w = MultiWorkload::generate(&spec, 21);
        let multi = MultiEngine::new(MultiEngineConfig {
            workers: 3,
            max_concurrent_races: 3,
            tenant: EngineConfig {
                default_budget: RaceBudget::decision(),
                ..EngineConfig::default()
            },
        });
        let ids: Vec<GraphId> = w
            .graphs
            .iter()
            .enumerate()
            .map(|(i, g)| {
                multi
                    .register_shared(
                        format!("graph-{i}"),
                        Arc::new(PsiRunner::nfv_default_shared(Arc::clone(g))),
                    )
                    .expect("unique names")
            })
            .collect();
        let traffic: Vec<(GraphId, Graph)> =
            w.traffic.iter().map(|(g, q)| (ids[*g], q.clone())).collect();

        let report = submit_batch_multi(&multi, &traffic, 4);
        assert_eq!(report.responses.len(), 60);
        // Queries are grown from their own graph, so every request must
        // embed — a response answering from the wrong graph would break
        // this for cross-graph misses.
        assert!(report.responses.iter().all(|(_, r)| r.conclusive && r.found()));
        assert_eq!(report.cache_hits + report.races + report.fast_paths, 60);
        assert_eq!(report.per_graph.iter().map(|s| s.queries).sum::<usize>(), 60);
        assert!(report.qps > 0.0);

        // Engine-side accounting agrees with the report.
        let agg = multi.stats();
        assert_eq!(agg.queries, 60);
        let per_engine: u64 = ids.iter().map(|&id| multi.graph_stats(id).unwrap().queries).sum();
        assert_eq!(per_engine, 60);

        // Replaying the same traffic is served from per-graph caches.
        let warm = submit_batch_multi(&multi, &traffic, 4);
        assert_eq!(warm.cache_hits, 60);
        assert_eq!(warm.races, 0);
    }
}
