//! Batch submission of a whole workload through a [`psi_engine::Engine`].
//!
//! The experiment harness runs workloads query-by-query; a serving system
//! runs them as concurrent traffic. [`submit_batch`] drives `clients`
//! client threads pulling queries from a shared cursor and submitting
//! them through the engine's admission queue, and reports aggregate
//! serving metrics next to the per-query responses.

use crate::metrics::SummaryStats;
use psi_engine::{Engine, EngineResponse, ServePath};
use psi_graph::Graph;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Aggregate outcome of one batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query responses, in workload order.
    pub responses: Vec<EngineResponse>,
    /// Wall time of the whole batch (first submit to last answer).
    pub wall: Duration,
    /// Served queries per second over the batch.
    pub qps: f64,
    /// Distribution of per-query latencies, in seconds.
    pub latency: Option<SummaryStats>,
    /// Queries answered from the result cache.
    pub cache_hits: usize,
    /// Queries answered by the predictor fast path.
    pub fast_paths: usize,
    /// Queries answered by a full race.
    pub races: usize,
    /// Queries whose answer was not definitive (race timed out).
    pub inconclusive: usize,
}

/// Submits every query in `queries` through `engine` from `clients`
/// concurrent client threads (at least 1), blocking until all are served.
/// Responses come back in workload order regardless of completion order.
pub fn submit_batch(engine: &Engine, queries: &[Graph], clients: usize) -> BatchReport {
    let clients = clients.clamp(1, queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<EngineResponse>>> = Mutex::new(vec![None; queries.len()]);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= queries.len() {
                    break;
                }
                let response = engine.submit(&queries[idx]);
                slots.lock().expect("batch slots lock")[idx] = Some(response);
            });
        }
    });
    let wall = start.elapsed();
    let responses: Vec<EngineResponse> = slots
        .into_inner()
        .expect("batch slots lock")
        .into_iter()
        .map(|slot| slot.expect("every query served"))
        .collect();

    let latencies: Vec<f64> = responses.iter().map(|r| r.elapsed.as_secs_f64()).collect();
    let count = |path: ServePath| responses.iter().filter(|r| r.path == path).count();
    BatchReport {
        cache_hits: count(ServePath::CacheHit),
        fast_paths: count(ServePath::FastPath),
        races: count(ServePath::Race),
        inconclusive: responses.iter().filter(|r| !r.conclusive).count(),
        latency: SummaryStats::of(&latencies),
        qps: if wall.as_secs_f64() > 0.0 {
            responses.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall,
        responses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_gen::Workloads;
    use psi_core::{PsiRunner, RaceBudget};
    use psi_engine::EngineConfig;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn batch_serves_every_query_in_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        let stored = random_connected_graph(50, 110, &labels, &mut rng);
        let queries: Vec<Graph> = Workloads::nfv_workload(&stored, 6, 10, 77);
        assert!(!queries.is_empty());

        let engine = Engine::new(
            PsiRunner::nfv_default(&stored),
            EngineConfig {
                workers: 3,
                max_concurrent_races: 2,
                default_budget: RaceBudget::decision(),
                ..EngineConfig::default()
            },
        );
        let cold = submit_batch(&engine, &queries, 4);
        assert_eq!(cold.responses.len(), queries.len());
        assert!(cold.responses.iter().all(|r| r.conclusive));
        assert!(cold.responses.iter().all(|r| r.found()), "grown queries embed");
        assert_eq!(cold.cache_hits + cold.fast_paths + cold.races, queries.len());
        assert!(cold.qps > 0.0);
        assert_eq!(cold.latency.as_ref().map(|s| s.count), Some(queries.len()));

        // A second pass over the same workload is served from the cache.
        let warm = submit_batch(&engine, &queries, 4);
        assert_eq!(warm.cache_hits, queries.len());
        assert_eq!(warm.races, 0);
        for (c, w) in cold.responses.iter().zip(&warm.responses) {
            assert_eq!(c.found(), w.found());
        }
    }
}
