//! Capped execution helpers: run a search under a kill limit and produce
//! the per-query record the metrics consume.

use crate::classify::{CapConfig, Class};
use psi_matchers::{MatchResult, SearchBudget, StopReason};
use std::time::{Duration, Instant};

/// The outcome of one capped execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunRecord {
    /// Measured wall time (not cap-charged).
    pub raw_time: Duration,
    /// Cap-charged time in seconds (killed queries count at the cap —
    /// the paper's §3.5 convention). This is the value metrics consume.
    pub charged_secs: f64,
    /// Class under the run's [`CapConfig`].
    pub class: Class,
    /// Whether the run produced a definitive answer.
    pub conclusive: bool,
    /// Whether at least one embedding was found.
    pub found: bool,
}

impl RunRecord {
    /// Whether this run was killed at the cap.
    pub fn killed(&self) -> bool {
        self.class == Class::Hard
    }
}

/// Runs `f` under the cap: the search budget carries a deadline at
/// `cfg.cap`; the result is classified and cap-charged.
///
/// `max_matches` is the embedding cap (1 for decision runs, 1000 for the
/// paper's matching runs).
pub fn run_with_cap<F>(f: F, cfg: &CapConfig, max_matches: usize) -> (RunRecord, MatchResult)
where
    F: FnOnce(&SearchBudget) -> MatchResult,
{
    let budget = SearchBudget::with_max_matches(max_matches).timeout(cfg.cap);
    let start = Instant::now();
    let result = f(&budget);
    let raw_time = start.elapsed();
    let conclusive = result.stop.is_conclusive();
    let record = RunRecord {
        raw_time,
        charged_secs: cfg.charged_time(raw_time, conclusive).as_secs_f64(),
        class: cfg.classify(raw_time, conclusive),
        conclusive,
        found: result.found(),
    };
    (record, result)
}

/// Marker record for runs that were skipped entirely (used by harness code
/// when a variant is inapplicable): charged at the cap, classed hard.
pub fn killed_record(cfg: &CapConfig) -> RunRecord {
    RunRecord {
        raw_time: cfg.cap,
        charged_secs: cfg.cap.as_secs_f64(),
        class: Class::Hard,
        conclusive: false,
        found: false,
    }
}

/// Convenience conversion used in tests and the harness: builds a record
/// from an already-measured result.
pub fn record_from_result(result: &MatchResult, wall: Duration, cfg: &CapConfig) -> RunRecord {
    let conclusive = result.stop.is_conclusive();
    // Cancelled racers are *not* charged the cap; their time is simply the
    // point at which they stopped (they lost, they weren't killed by the
    // experiment limit).
    let charged = if result.stop == StopReason::Cancelled {
        wall
    } else {
        cfg.charged_time(wall, conclusive)
    };
    RunRecord {
        raw_time: wall,
        charged_secs: charged.as_secs_f64(),
        class: cfg.classify(wall, conclusive),
        conclusive,
        found: result.found(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;
    use psi_matchers::vf2::vf2_search;

    #[test]
    fn quick_run_is_easy_and_conclusive() {
        let t = graph_from_parts(&[0, 1], &[(0, 1)]);
        let q = graph_from_parts(&[0], &[]);
        let cfg = CapConfig::scaled(Duration::from_secs(30));
        let (rec, res) = run_with_cap(|b| vf2_search(&q, &t, b), &cfg, 1);
        assert!(rec.conclusive);
        assert!(rec.found);
        assert_eq!(rec.class, Class::Easy);
        assert!(!rec.killed());
        assert_eq!(res.num_matches, 1);
        assert!(rec.charged_secs < 1.0);
    }

    #[test]
    fn expired_cap_counts_as_hard_and_charged() {
        let t = graph_from_parts(&[0, 1], &[(0, 1)]);
        let q = graph_from_parts(&[0], &[]);
        let cfg = CapConfig::scaled(Duration::ZERO);
        let (rec, _) = run_with_cap(|b| vf2_search(&q, &t, b), &cfg, 1);
        assert!(!rec.conclusive);
        assert_eq!(rec.class, Class::Hard);
        assert_eq!(rec.charged_secs, 0.0); // cap of zero charges zero
    }

    #[test]
    fn killed_record_shape() {
        let cfg = CapConfig::scaled(Duration::from_secs(10));
        let r = killed_record(&cfg);
        assert!(r.killed());
        assert_eq!(r.charged_secs, 10.0);
        assert!(!r.found);
    }

    #[test]
    fn cancelled_racers_keep_their_wall_time() {
        let cfg = CapConfig::scaled(Duration::from_secs(100));
        let res = MatchResult::empty(StopReason::Cancelled);
        let rec = record_from_result(&res, Duration::from_millis(5), &cfg);
        assert!((rec.charged_secs - 0.005).abs() < 1e-9);
        assert!(!rec.conclusive);
    }

    #[test]
    fn timed_out_results_are_cap_charged() {
        let cfg = CapConfig::scaled(Duration::from_secs(100));
        let res = MatchResult::empty(StopReason::TimedOut);
        let rec = record_from_result(&res, Duration::from_secs(100), &cfg);
        assert_eq!(rec.charged_secs, 100.0);
        assert_eq!(rec.class, Class::Hard);
    }
}
