//! The easy / 2″–600″ / hard query classes (§3.4–3.5).
//!
//! "For all used methods, the majority of the queries completed in under 2″.
//! We call them *easy* queries. Another portion of queries had processing
//! times in the 2″ to 600″ range; we denote these *2″–600″* queries. We use
//! the term *completed* to refer to all queries that finished within the 10′
//! limit; those that did not are called *hard* or *killed*."
//!
//! The paper's 2″/600″ split is a 1:300 ratio of the cap. [`CapConfig`]
//! preserves that ratio at any scale so the scaled-down reproduction keeps
//! the same class semantics.

use std::time::Duration;

/// Query-time classification thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapConfig {
    /// The kill limit (paper: 600 s).
    pub cap: Duration,
    /// The easy-class threshold (paper: 2 s = cap / 300).
    pub easy: Duration,
}

impl CapConfig {
    /// The paper's actual limits: 10-minute cap, 2-second easy threshold.
    pub fn paper() -> Self {
        Self { cap: Duration::from_secs(600), easy: Duration::from_secs(2) }
    }

    /// A scaled cap preserving the paper's 1:300 easy:cap ratio.
    pub fn scaled(cap: Duration) -> Self {
        Self { cap, easy: cap / 300 }
    }

    /// Explicit thresholds.
    pub fn new(cap: Duration, easy: Duration) -> Self {
        assert!(easy <= cap, "easy threshold cannot exceed the cap");
        Self { cap, easy }
    }

    /// Classifies one query execution. `conclusive` is false when the run
    /// was killed at the cap (timed out).
    pub fn classify(&self, time: Duration, conclusive: bool) -> Class {
        if !conclusive || time >= self.cap {
            Class::Hard
        } else if time < self.easy {
            Class::Easy
        } else {
            Class::Mid
        }
    }

    /// The paper's accounting convention: killed queries are charged the
    /// cap as a lower bound on their true time.
    pub fn charged_time(&self, time: Duration, conclusive: bool) -> Duration {
        if !conclusive || time >= self.cap {
            self.cap
        } else {
            time
        }
    }
}

/// The three §3.4 classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Completed under the easy threshold (paper: < 2″).
    Easy,
    /// Completed between the easy threshold and the cap (paper: 2″–600″).
    Mid,
    /// Killed at the cap (paper: "hard"/"killed").
    Hard,
}

impl Class {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Class::Easy => "easy",
            Class::Mid => "2\"-600\"",
            Class::Hard => "hard",
        }
    }
}

/// Per-class aggregation of one (algorithm, workload) cell — the data behind
/// Figs 1–2 and Tables 3–4.
#[derive(Debug, Clone, Default)]
pub struct ClassBreakdown {
    /// Times of easy queries (seconds).
    pub easy: Vec<f64>,
    /// Times of 2″–600″ queries (seconds).
    pub mid: Vec<f64>,
    /// Number of killed queries.
    pub hard: usize,
}

impl ClassBreakdown {
    /// Adds one classified execution (time in seconds).
    pub fn push(&mut self, class: Class, secs: f64) {
        match class {
            Class::Easy => self.easy.push(secs),
            Class::Mid => self.mid.push(secs),
            Class::Hard => self.hard += 1,
        }
    }

    /// Total number of queries.
    pub fn total(&self) -> usize {
        self.easy.len() + self.mid.len() + self.hard
    }

    /// Percentage of a class in the workload.
    pub fn percent(&self, class: Class) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        let k = match class {
            Class::Easy => self.easy.len(),
            Class::Mid => self.mid.len(),
            Class::Hard => self.hard,
        };
        100.0 * k as f64 / n as f64
    }

    /// WLA average execution time of the easy class.
    pub fn avg_easy(&self) -> Option<f64> {
        avg(&self.easy)
    }

    /// WLA average execution time of the 2″–600″ class.
    pub fn avg_mid(&self) -> Option<f64> {
        avg(&self.mid)
    }

    /// WLA average over all *completed* (non-killed) queries — the bar that
    /// the paper shows being dominated by the expensive queries.
    pub fn avg_completed(&self) -> Option<f64> {
        let all: Vec<f64> = self.easy.iter().chain(self.mid.iter()).copied().collect();
        avg(&all)
    }
}

fn avg(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        let c = CapConfig::paper();
        assert_eq!(c.cap, Duration::from_secs(600));
        assert_eq!(c.easy, Duration::from_secs(2));
    }

    #[test]
    fn scaled_preserves_ratio() {
        let c = CapConfig::scaled(Duration::from_millis(3000));
        assert_eq!(c.easy, Duration::from_millis(10));
    }

    #[test]
    fn classification() {
        let c = CapConfig::scaled(Duration::from_millis(300));
        assert_eq!(c.classify(Duration::from_micros(500), true), Class::Easy);
        assert_eq!(c.classify(Duration::from_millis(50), true), Class::Mid);
        assert_eq!(c.classify(Duration::from_millis(300), true), Class::Hard);
        assert_eq!(c.classify(Duration::from_millis(1), false), Class::Hard);
    }

    #[test]
    fn charged_time_caps_killed_queries() {
        let c = CapConfig::scaled(Duration::from_millis(100));
        assert_eq!(c.charged_time(Duration::from_millis(5), true), Duration::from_millis(5));
        assert_eq!(c.charged_time(Duration::from_millis(5), false), Duration::from_millis(100));
        assert_eq!(c.charged_time(Duration::from_millis(150), true), Duration::from_millis(100));
    }

    #[test]
    #[should_panic(expected = "easy threshold")]
    fn invalid_thresholds_rejected() {
        CapConfig::new(Duration::from_secs(1), Duration::from_secs(2));
    }

    #[test]
    fn breakdown_percentages() {
        let mut b = ClassBreakdown::default();
        b.push(Class::Easy, 0.001);
        b.push(Class::Easy, 0.002);
        b.push(Class::Mid, 0.1);
        b.push(Class::Hard, 1.0);
        assert_eq!(b.total(), 4);
        assert!((b.percent(Class::Easy) - 50.0).abs() < 1e-9);
        assert!((b.percent(Class::Mid) - 25.0).abs() < 1e-9);
        assert!((b.percent(Class::Hard) - 25.0).abs() < 1e-9);
        assert!((b.avg_easy().unwrap() - 0.0015).abs() < 1e-9);
        assert!((b.avg_completed().unwrap() - (0.001 + 0.002 + 0.1) / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown() {
        let b = ClassBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.percent(Class::Easy), 0.0);
        assert!(b.avg_easy().is_none());
        assert!(b.avg_completed().is_none());
    }

    #[test]
    fn class_labels() {
        assert_eq!(Class::Easy.label(), "easy");
        assert_eq!(Class::Mid.label(), "2\"-600\"");
        assert_eq!(Class::Hard.label(), "hard");
    }
}
