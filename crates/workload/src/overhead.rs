//! Saturated-pool measurement of the Ψ-trace overhead: the same
//! multi-graph workload replayed against two registries that differ
//! *only* in [`psi_engine::TelemetryConfig`] — one with lifecycle
//! tracing on (and a consumer draining the rings, as a live deployment
//! would), one with tracing off entirely.
//!
//! Caches and the fast path are disabled so every request really races
//! and every race emits its full event sequence — the worst case for
//! tracing cost. The qps ratio (traced / untraced) is the CI bench
//! artifact's `telemetry_overhead` metric: 1.0 means free, and the gate
//! holds it above ~0.9.

use crate::multi::{submit_batch_multi, MultiWorkload, MultiWorkloadSpec};
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{EngineConfig, GraphId, MultiEngine, MultiEngineConfig, TelemetryConfig};
use psi_graph::Graph;
use std::sync::Arc;

/// Outcome of one tracing-on vs tracing-off measurement.
#[derive(Debug, Clone)]
pub struct TelemetryOverhead {
    /// Best-pass throughput with tracing on and a draining consumer,
    /// queries/second.
    pub traced_qps: f64,
    /// Best-pass throughput with tracing off, queries/second.
    pub untraced_qps: f64,
    /// `traced_qps / untraced_qps` (0 when the untraced run measured 0).
    /// Close to 1.0 when tracing is cheap.
    pub overhead_ratio: f64,
    /// Trace events drained from the traced registry across all passes.
    pub trace_events: u64,
    /// Events the traced registry dropped because rings filled between
    /// drains — nonzero means the capacity below was undersized for the
    /// measured qps.
    pub trace_dropped: u64,
}

/// Shape of a [`compare_telemetry_overhead`] measurement.
#[derive(Debug, Clone)]
pub struct OverheadSpec {
    /// The multi-graph workload both registries serve.
    pub workload: MultiWorkloadSpec,
    /// The variant field every race runs.
    pub config: PsiConfig,
    /// Pool workers per registry.
    pub workers: usize,
    /// Concurrent client threads replaying the traffic; should exceed
    /// `workers` so the pool saturates.
    pub clients: usize,
    /// Race budget applied to every query.
    pub budget: RaceBudget,
    /// Measurement passes per registry; each keeps its best pass.
    pub passes: usize,
    /// Ring capacity for the traced registry (per tenant).
    pub trace_capacity: usize,
}

impl Default for OverheadSpec {
    fn default() -> Self {
        Self {
            workload: MultiWorkloadSpec::default(),
            config: PsiConfig::gql_spa_orig_dnd(),
            workers: 4,
            clients: 8,
            budget: RaceBudget::with_max_matches(64),
            passes: 2,
            trace_capacity: 1 << 16,
        }
    }
}

fn race_only_registry(
    graphs: &[Arc<Graph>],
    spec: &OverheadSpec,
    traced: bool,
) -> (MultiEngine, Vec<GraphId>) {
    let telemetry = if traced {
        TelemetryConfig {
            trace_events: true,
            trace_capacity: spec.trace_capacity,
            ..TelemetryConfig::default()
        }
    } else {
        TelemetryConfig {
            trace_events: false,
            slow_query_capacity: 0,
            ..TelemetryConfig::default()
        }
    };
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: spec.workers,
        max_concurrent_races: spec.workers.max(spec.clients),
        tenant: EngineConfig {
            // Isolate the racing path: no result cache, no fast path —
            // every submission races and emits its full trace sequence.
            cache_capacity: 0,
            predictor_confidence: 2.0,
            default_budget: spec.budget.clone(),
            telemetry,
            ..EngineConfig::default()
        },
    });
    let ids = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let runner = PsiRunner::new(Arc::clone(g), spec.config.clone());
            multi.register(format!("ovh-{i}"), runner).expect("unique name")
        })
        .collect();
    (multi, ids)
}

/// Measures saturated-pool throughput of the same multi-graph traffic
/// with tracing on (drained after every pass, as a scraper would) and
/// off. Passes alternate in palindromic order (t u | u t) so a
/// throttling host cannot hand either mode a systematic edge.
pub fn compare_telemetry_overhead(spec: &OverheadSpec, seed: u64) -> TelemetryOverhead {
    let workload = MultiWorkload::generate(&spec.workload, seed);
    let (traced, traced_ids) = race_only_registry(&workload.graphs, spec, true);
    let (untraced, untraced_ids) = race_only_registry(&workload.graphs, spec, false);
    let route = |ids: &[GraphId]| -> Vec<(GraphId, Graph)> {
        workload.traffic.iter().map(|(g, q)| (ids[*g], q.clone())).collect()
    };
    let traced_traffic = route(&traced_ids);
    let untraced_traffic = route(&untraced_ids);

    let mut traced_qps = 0.0f64;
    let mut untraced_qps = 0.0f64;
    let mut trace_events = 0u64;
    for pass in 0..spec.passes.max(1) {
        let (first, second) = if pass % 2 == 0 { (true, false) } else { (false, true) };
        for traced_turn in [first, second] {
            if traced_turn {
                traced_qps =
                    traced_qps.max(submit_batch_multi(&traced, &traced_traffic, spec.clients).qps);
                // Drain between passes like a live scraper, so ring
                // capacity bounds memory rather than event count.
                trace_events += traced.drain_trace().len() as u64;
            } else {
                untraced_qps = untraced_qps
                    .max(submit_batch_multi(&untraced, &untraced_traffic, spec.clients).qps);
            }
        }
    }

    let trace_dropped: u64 = traced.exporter().graphs().iter().map(|g| g.trace_dropped).sum();
    TelemetryOverhead {
        traced_qps,
        untraced_qps,
        overhead_ratio: if untraced_qps > 0.0 { traced_qps / untraced_qps } else { 0.0 },
        trace_events,
        trace_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_measures_both_modes_and_sees_events() {
        let spec = OverheadSpec {
            workload: MultiWorkloadSpec {
                graphs: 2,
                total_queries: 40,
                distinct_per_graph: 8,
                ..MultiWorkloadSpec::default()
            },
            workers: 2,
            clients: 4,
            passes: 1,
            ..OverheadSpec::default()
        };
        let ovh = compare_telemetry_overhead(&spec, 7);
        assert!(ovh.traced_qps > 0.0);
        assert!(ovh.untraced_qps > 0.0);
        assert!(ovh.overhead_ratio > 0.0);
        assert!(ovh.trace_events > 0, "traced registry must emit lifecycle events: {ovh:?}");
    }
}
