//! # psi-workload — query workloads, caps and straggler-aware metrics
//!
//! Everything the paper's experimental methodology (§3.4–3.5) needs:
//!
//! * [`query_gen`] — the random-walk query generator: "select a graph ...
//!   uniformly and at random, and from that graph ... a node uniformly and
//!   at random. Starting from said node, we generate a query graph by
//!   incrementally adding edges chosen uniformly at random from the set of
//!   all edges adjacent to the resulting query graph, until it reaches the
//!   desired size."
//! * [`classify`] — the easy / 2″–600″ / hard query classes, parameterized
//!   by a scalable cap (the paper's 10-minute limit with its 2-second easy
//!   threshold preserved as a 1:300 ratio).
//! * [`metrics`] — WLA and QLA aggregation, the `(max/min)` isomorphic-
//!   variance metric and `speedup★`, plus summary statistics, including the
//!   paper's conventions (killed queries count at the cap; queries unhelped
//!   by every variant are excluded).
//! * [`runner`] — capped execution helpers producing per-query records.
//! * [`batch`] — batch submission of a whole workload through a
//!   [`psi_engine::Engine`] from concurrent client threads, with
//!   aggregate serving metrics.
//! * [`async_batch`] — ticket-driven batch submission through either
//!   engine's [`psi_engine::Submit`] frontend: a few event-loop client
//!   threads keep windows of in-flight [`psi_engine::QueryTicket`]s
//!   open and drain a [`psi_engine::CompletionQueue`], reporting the
//!   in-flight high-water mark.
//! * [`net_fleet`] — loopback TCP client fleets against a
//!   [`psi_net::PsiServer`]: hundreds of pipelined connections from a
//!   few threads, feeding the CI bench artifact's `net_qps` trail.
//! * [`multi`] — multi-graph workloads (mixed graph sizes and label
//!   alphabets, Zipf-skewed per-graph traffic with repeats) and batch
//!   routing through a [`psi_engine::MultiEngine`] with per-graph
//!   breakdowns.
//! * [`streaming`] — streaming ingest: concurrent writer threads apply
//!   additive [`psi_core::GraphUpdate`] batches while a query fleet
//!   keeps reading through the delta overlay, feeding the CI bench
//!   artifact's `ingest_qps` trail.
//! * [`strategy`] — saturated-pool comparison of race strategies
//!   (full-field vs adaptive top-K with staged escalation), feeding the
//!   CI bench artifact's `topk_qps` trail.
//! * [`index_cmp`] — saturated-pool comparison of the shared per-graph
//!   `TargetIndex` against the legacy scan paths, feeding the CI bench
//!   artifact's `indexed_speedup` trail.
//! * [`slicing`] — idle-biased comparison of intra-query slicing
//!   ([`psi_engine::RaceStrategy::Adaptive`]) against classic one-slice
//!   racing on a heavy-tailed workload, feeding the CI bench artifact's
//!   `sliced_p99_speedup` trail.
//! * [`overhead`] — saturated-pool comparison of tracing-on vs
//!   tracing-off registries (identical otherwise), feeding the CI bench
//!   artifact's `telemetry_overhead` trail.

pub mod async_batch;
pub mod batch;
pub mod classify;
pub mod index_cmp;
pub mod metrics;
pub mod multi;
pub mod net_fleet;
pub mod overhead;
pub mod query_gen;
pub mod runner;
pub mod slicing;
pub mod strategy;
pub mod streaming;

pub use async_batch::{submit_batch_async, AsyncBatchReport};
pub use batch::{submit_batch, BatchReport};
pub use classify::{CapConfig, Class, ClassBreakdown};
pub use index_cmp::{compare_index_modes, IndexCmpSpec, IndexComparison};
pub use metrics::{qla, speedup_star, wla, SummaryStats};
pub use multi::{
    submit_batch_multi, GraphBatchStats, MultiBatchReport, MultiWorkload, MultiWorkloadSpec,
};
pub use net_fleet::{run_net_fleet, NetFleetReport, NetFleetSpec};
pub use overhead::{compare_telemetry_overhead, OverheadSpec, TelemetryOverhead};
pub use query_gen::{QueryGen, Workloads};
pub use runner::{run_with_cap, RunRecord};
pub use slicing::{compare_slicing, SlicingComparison, SlicingSpec};
pub use strategy::{compare_race_strategies, StrategyComparison, StrategySpec};
pub use streaming::{run_streaming_ingest, StreamingReport, StreamingSpec, StreamingWorkload};
