//! Streaming ingest: concurrent writers mutate a served graph while a
//! query fleet keeps reading through the delta overlay.
//!
//! The live-graph subsystem promises that writes cannot starve reads
//! (both take slots in the same fair admission gate) and that epoch
//! swaps never pause in-flight races. This module measures that promise
//! as a throughput number: [`run_streaming_ingest`] drives a query
//! fleet and a writer fleet against one registered graph at the same
//! time and reports the query throughput *while ingest is running* —
//! the `ingest_qps` trail of the CI bench artifact.
//!
//! The generated mutations are **strictly additive** (fresh nodes, new
//! edges inside per-writer node territories), so every query grown from
//! the base graph must keep embedding whatever interleaving the
//! scheduler picks: subgraph embeddings are monotone under edge
//! addition. A conclusive "not found" during ingest is therefore a
//! *wrong answer*, and the report counts them — the ingest example and
//! the proptests assert the count stays zero.

use crate::metrics::SummaryStats;
use crate::query_gen::Workloads;
use psi_core::{GraphUpdate, UpdateOp};
use psi_engine::{GraphId, MultiEngine};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::Graph;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shape of a generated streaming-ingest workload.
#[derive(Debug, Clone)]
pub struct StreamingSpec {
    /// Nodes in the stored graph (default 80).
    pub nodes: usize,
    /// Edges in the stored graph (default 180).
    pub edges: usize,
    /// Label alphabet of the stored graph (default 3).
    pub labels: u32,
    /// Edges per generated query (default 6).
    pub query_edges: usize,
    /// Distinct queries in the pool; traffic cycles through it
    /// (default 16).
    pub distinct_queries: usize,
    /// Total read requests in the traffic stream (default 240).
    pub total_queries: usize,
    /// Concurrent writer threads, each owning a disjoint node territory
    /// (default 2).
    pub writers: usize,
    /// Mutation batches each writer applies (default 8).
    pub updates_per_writer: usize,
    /// Ops per mutation batch (default 4).
    pub ops_per_update: usize,
}

impl Default for StreamingSpec {
    fn default() -> Self {
        Self {
            nodes: 80,
            edges: 180,
            labels: 3,
            query_edges: 6,
            distinct_queries: 16,
            total_queries: 240,
            writers: 2,
            updates_per_writer: 8,
            ops_per_update: 4,
        }
    }
}

/// A generated streaming workload: the stored graph, the read traffic,
/// and each writer's precomputed mutation batches.
#[derive(Debug)]
pub struct StreamingWorkload {
    /// The base graph to register and then mutate.
    pub stored: Graph,
    /// The read stream, cycled through by the query fleet. Every query
    /// is grown from `stored`, so it embeds before, during and after
    /// ingest (mutations are additive).
    pub traffic: Vec<Graph>,
    /// Per-writer batches. Writer `w` applies `batches[w]` in order;
    /// territories are disjoint, so batches never conflict whatever the
    /// cross-writer interleaving.
    pub batches: Vec<Vec<GraphUpdate>>,
}

impl StreamingWorkload {
    /// Deterministically generates a workload from `spec` and `seed`.
    pub fn generate(spec: &StreamingSpec, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let labels = LabelDist::Uniform { num_labels: spec.labels.max(1) }.sampler();
        let stored = random_connected_graph(spec.nodes.max(8), spec.edges, &labels, &mut rng);

        let pool = Workloads::nfv_workload(
            &stored,
            spec.query_edges,
            spec.distinct_queries.max(1),
            seed ^ 0x9E37_79B9_7F4A_7C15,
        );
        let mut traffic = Vec::with_capacity(spec.total_queries);
        while traffic.len() < spec.total_queries && !pool.is_empty() {
            traffic.push(pool[traffic.len() % pool.len()].clone());
        }

        // Each writer owns a contiguous node territory and only adds
        // edges inside it: additive, conflict-free, deterministic.
        let writers = spec.writers.max(1);
        let n = stored.node_count() as u32;
        let span = (n / writers as u32).max(2);
        let mut batches = Vec::with_capacity(writers);
        for w in 0..writers as u32 {
            let lo = w * span;
            let hi = if w as usize == writers - 1 { n } else { ((w + 1) * span).min(n) };
            let mut candidates: Vec<(u32, u32)> = Vec::new();
            for u in lo..hi {
                for v in (u + 1)..hi {
                    if !stored.has_edge(u, v) {
                        candidates.push((u, v));
                    }
                }
            }
            candidates.shuffle(&mut rng);
            let mut writer_batches = Vec::with_capacity(spec.updates_per_writer);
            let mut at = 0usize;
            for _ in 0..spec.updates_per_writer {
                let mut ops = Vec::with_capacity(spec.ops_per_update.max(1));
                while ops.len() < spec.ops_per_update.max(1) && at < candidates.len() {
                    let (u, v) = candidates[at];
                    at += 1;
                    ops.push(UpdateOp::AddEdge { u, v, label: None });
                }
                if ops.is_empty() {
                    // Territory saturated: fall back to an isolated
                    // fresh-labeled node, still additive and id-safe.
                    ops.push(UpdateOp::AddNode { label: spec.labels });
                }
                writer_batches.push(GraphUpdate::new(ops));
            }
            batches.push(writer_batches);
        }
        Self { stored, traffic, batches }
    }

    /// Total mutation batches across every writer.
    pub fn total_updates(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

/// Outcome of one streaming-ingest run.
#[derive(Debug)]
pub struct StreamingReport {
    /// Wall time of the combined read + write run.
    pub wall: Duration,
    /// Read requests served.
    pub queries: usize,
    /// Read throughput **while ingest was running**: queries per second
    /// over the combined wall time. The bench artifact's `ingest_qps`.
    pub ingest_qps: f64,
    /// Mutation batches applied.
    pub updates_applied: usize,
    /// Mutation batches rejected (always 0 for generated workloads —
    /// territories are disjoint and additive).
    pub update_failures: usize,
    /// Overlay folds installed as new epochs during the run (background
    /// threshold compactions plus the final forced fold).
    pub compactions: u64,
    /// Total time spent folding, microseconds.
    pub compaction_us: u64,
    /// The graph's epoch after the final forced compaction.
    pub final_epoch: u64,
    /// Conclusive "not found" answers — impossible under additive
    /// mutations, so any nonzero count is a serving bug.
    pub wrong_answers: usize,
    /// Reads that came back inconclusive (budget exhausted).
    pub inconclusive: usize,
    /// Distribution of per-read latencies, seconds.
    pub latency: Option<SummaryStats>,
}

/// Drives `workload` against `graph` on `multi`: `clients` reader
/// threads cycle through the traffic while one thread per writer
/// applies its mutation batches, all through the engine's fair
/// admission gate. After the fleets drain, a forced compaction folds
/// whatever overlay remains.
///
/// # Panics
/// Panics if `graph` is not registered with `multi`.
pub fn run_streaming_ingest(
    multi: &MultiEngine,
    graph: GraphId,
    workload: &StreamingWorkload,
    clients: usize,
) -> StreamingReport {
    let clients = clients.clamp(1, workload.traffic.len().max(1));
    let cursor = AtomicUsize::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(workload.traffic.len()));
    let wrong = AtomicUsize::new(0);
    let inconclusive = AtomicUsize::new(0);
    let applied = AtomicUsize::new(0);
    let failed = AtomicUsize::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for batches in &workload.batches {
            let (applied, failed) = (&applied, &failed);
            scope.spawn(move || {
                for update in batches {
                    match multi.apply_update(graph, update) {
                        Ok(_) => applied.fetch_add(1, Ordering::Relaxed),
                        Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                    };
                }
            });
        }
        for _ in 0..clients {
            scope.spawn(|| loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= workload.traffic.len() {
                    break;
                }
                let response = multi
                    .submit(graph, &workload.traffic[idx])
                    .expect("traffic targets a registered graph");
                if response.conclusive && !response.found() {
                    wrong.fetch_add(1, Ordering::Relaxed);
                }
                if !response.conclusive {
                    inconclusive.fetch_add(1, Ordering::Relaxed);
                }
                latencies.lock().expect("latency lock").push(response.elapsed.as_secs_f64());
            });
        }
    });
    let wall = start.elapsed();

    // Fold whatever overlay the threshold compactions left behind, so
    // the report's epoch/compaction numbers describe a quiesced graph.
    let _ = multi.compact(graph).expect("graph is registered");
    let stats = multi.graph_stats(graph).expect("graph is registered");

    let latencies = latencies.into_inner().expect("latency lock");
    StreamingReport {
        wall,
        queries: latencies.len(),
        ingest_qps: if wall.as_secs_f64() > 0.0 {
            latencies.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        updates_applied: applied.load(Ordering::Relaxed),
        update_failures: failed.load(Ordering::Relaxed),
        compactions: stats.compactions,
        compaction_us: stats.compaction_us,
        final_epoch: stats.epoch,
        wrong_answers: wrong.load(Ordering::Relaxed),
        inconclusive: inconclusive.load(Ordering::Relaxed),
        latency: SummaryStats::of(&latencies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_core::{PsiRunner, RaceBudget};
    use psi_engine::{EngineConfig, MultiEngineConfig};

    fn live_multi() -> MultiEngine {
        MultiEngine::new(MultiEngineConfig {
            workers: 2,
            max_concurrent_races: 4,
            tenant: EngineConfig {
                default_budget: RaceBudget::decision(),
                ..EngineConfig::default()
            },
        })
    }

    #[test]
    fn generated_batches_are_disjoint_and_additive() {
        let spec = StreamingSpec::default();
        let w = StreamingWorkload::generate(&spec, 7);
        assert_eq!(w.batches.len(), spec.writers);
        assert_eq!(w.total_updates(), spec.writers * spec.updates_per_writer);
        assert_eq!(w.traffic.len(), spec.total_queries);
        // Additive: no Remove* op anywhere; no edge added twice.
        let mut seen = std::collections::HashSet::new();
        for batch in w.batches.iter().flatten() {
            for op in &batch.ops {
                match *op {
                    UpdateOp::AddEdge { u, v, .. } => {
                        assert!(!w.stored.has_edge(u, v), "only new edges");
                        assert!(seen.insert((u.min(v), u.max(v))), "no duplicate adds");
                    }
                    UpdateOp::AddNode { .. } => {}
                    _ => panic!("streaming workloads are strictly additive"),
                }
            }
        }
        // Determinism.
        let w2 = StreamingWorkload::generate(&spec, 7);
        assert_eq!(w2.total_updates(), w.total_updates());
    }

    #[test]
    fn ingest_run_serves_reads_correctly_while_writing() {
        let spec =
            StreamingSpec { total_queries: 80, updates_per_writer: 6, ..StreamingSpec::default() };
        let w = StreamingWorkload::generate(&spec, 13);
        let multi = live_multi();
        let graph = multi.register("live", PsiRunner::nfv_default(&w.stored)).unwrap();

        let report = run_streaming_ingest(&multi, graph, &w, 3);
        assert_eq!(report.queries, 80);
        assert_eq!(report.wrong_answers, 0, "additive ingest cannot lose answers");
        assert_eq!(report.updates_applied, w.total_updates());
        assert_eq!(report.update_failures, 0, "disjoint territories never conflict");
        assert!(report.ingest_qps > 0.0);
        // The forced fold at the end guarantees at least one epoch bump.
        assert!(report.final_epoch >= 1, "final epoch: {}", report.final_epoch);
        assert!(report.compactions >= 1);
        assert_eq!(multi.graph_stats(graph).unwrap().updates_applied, w.total_updates() as u64);
        // The folded graph holds every added edge.
        let live = multi.runner(graph).unwrap().live_graph();
        for batch in w.batches.iter().flatten() {
            for op in &batch.ops {
                if let UpdateOp::AddEdge { u, v, .. } = *op {
                    assert!(live.has_edge(u, v), "compacted graph keeps edge ({u}, {v})");
                }
            }
        }
    }
}
