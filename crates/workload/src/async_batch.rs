//! Ticket-driven batch submission: many queries in flight from few
//! client threads.
//!
//! [`crate::submit_batch`] models classic thread-per-request clients —
//! each client thread parks inside one blocking call at a time, so
//! in-flight queries ≤ client threads. [`submit_batch_async`] models an
//! event-loop frontend instead: each client keeps a *window* of
//! [`psi_engine::QueryTicket`]s open, topping the window up with
//! [`psi_engine::Submit::submit_nonblocking`] and draining completions
//! through a [`psi_engine::CompletionQueue`]. Two client threads can
//! keep hundreds of queries in flight over the engine's bounded pool —
//! the multiplexing a network layer needs. Over-limit submissions park
//! in the engine's waiting room; only once that overflows does
//! backpressure surface as a typed [`psi_engine::AdmissionError`], and
//! the driver reacts by draining a completion and retrying — exactly
//! the loop a real server runs.
//!
//! Works against either engine through the [`Submit`] trait: route
//! multi-graph traffic by building requests with
//! [`psi_engine::QueryRequest::graph`].

use crate::metrics::SummaryStats;
use psi_engine::{
    CompletionQueue, EngineResponse, QueryRequest, QueryTicket, ServePath, Submit, SubmitError,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Aggregate outcome of one ticket-driven batch run.
#[derive(Debug)]
pub struct AsyncBatchReport {
    /// Per-request responses, in request order.
    pub responses: Vec<EngineResponse>,
    /// Wall time of the whole batch (first submit to last completion).
    pub wall: Duration,
    /// Served requests per second over the batch.
    pub qps: f64,
    /// Distribution of per-request latencies (admission to answer), in
    /// seconds.
    pub latency: Option<SummaryStats>,
    /// Highest number of requests simultaneously in flight (submitted,
    /// completion not yet observed) across all clients — the
    /// multiplexing headline: with enough admission slots this exceeds
    /// the client count many times over. Clients drain finished tickets
    /// opportunistically after every submission, so serving that
    /// secretly completed synchronously would collapse this to ≈ the
    /// client count.
    pub in_flight_high_water: usize,
    /// Admission refusals (`Busy` / `QueueFull`) absorbed by the
    /// drain-and-retry loop. With a non-zero waiting room this stays 0
    /// until the room itself overflows.
    pub busy_retries: u64,
    /// Requests answered from the result cache.
    pub cache_hits: usize,
    /// Requests answered by the predictor fast path.
    pub fast_paths: usize,
    /// Requests answered by a race.
    pub races: usize,
    /// Requests whose answer was not definitive.
    pub inconclusive: usize,
}

/// Submits every request through `engine` from `clients` event-loop
/// threads (at least 1), each keeping up to `window` tickets in flight,
/// and blocks until all are served. Responses come back in request
/// order regardless of completion order.
///
/// The effective in-flight ceiling is `min(clients × window,
/// max_concurrent_races)` — admission still bounds pool occupancy; this
/// driver just stops needing a thread per admitted query.
///
/// # Panics
/// Panics if a request fails to route (an unregistered
/// [`psi_engine::GraphId`] or a graph-less request against a
/// multi-graph engine) — a workload construction bug, not a serving
/// condition.
pub fn submit_batch_async<S: Submit + Sync>(
    engine: &S,
    requests: &[QueryRequest],
    clients: usize,
    window: usize,
) -> AsyncBatchReport {
    let clients = clients.clamp(1, requests.len().max(1));
    let window = window.max(1);
    let pending: Mutex<VecDeque<usize>> = Mutex::new((0..requests.len()).collect());
    let slots: Mutex<Vec<Option<EngineResponse>>> = Mutex::new(vec![None; requests.len()]);
    let in_flight = AtomicUsize::new(0);
    let high_water = AtomicUsize::new(0);
    let busy_retries = AtomicU64::new(0);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(|| {
                let queue = CompletionQueue::new();
                let mut held: HashMap<u64, QueryTicket> = HashMap::new();
                // Count a submission in flight and remember the peak.
                let track = || {
                    let now = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                    high_water.fetch_max(now, Ordering::Relaxed);
                };
                // Collect one completed ticket's response.
                let complete = |held: &mut HashMap<u64, QueryTicket>, tag: u64| {
                    let ticket = held.remove(&tag).expect("queued tags map to held tickets");
                    let response = ticket.poll().expect("queued tag implies completion");
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    slots.lock().expect("batch slots lock")[tag as usize] = Some(response);
                };
                loop {
                    // Top the window up without blocking; an admission
                    // refusal means even the waiting room is full — fall
                    // through and drain a completion instead.
                    while held.len() < window {
                        let Some(idx) = pending.lock().expect("pending queue lock").pop_front()
                        else {
                            break;
                        };
                        let tag = idx as u64;
                        match engine.submit_into(requests[idx].clone().tag(tag), &queue) {
                            Ok(ticket) => {
                                track();
                                held.insert(tag, ticket);
                            }
                            Err(SubmitError::Admission(_)) => {
                                busy_retries.fetch_add(1, Ordering::Relaxed);
                                pending.lock().expect("pending queue lock").push_front(idx);
                                break;
                            }
                            Err(other) => panic!("async batch request failed to route: {other}"),
                        }
                        // Drain whatever already finished so the
                        // in-flight counter tracks genuine concurrency:
                        // if serving were secretly synchronous, every
                        // submission would complete right here and the
                        // high-water mark would stay near the client
                        // count instead of the window.
                        while let Some(tag) = queue.try_next() {
                            complete(&mut held, tag);
                        }
                    }
                    if held.is_empty() {
                        let Some(idx) = pending.lock().expect("pending queue lock").pop_front()
                        else {
                            break; // nothing held, nothing pending: done
                        };
                        // Every slot is held by other clients: queue for
                        // admission (priority-ordered, no spinning).
                        let tag = idx as u64;
                        let ticket = engine
                            .submit_queued_into(requests[idx].clone().tag(tag), &queue)
                            .unwrap_or_else(|e| panic!("async batch request failed to route: {e}"));
                        track();
                        held.insert(tag, ticket);
                    }
                    // Block for one completion (more drain on later spins).
                    let tag = queue.wait();
                    complete(&mut held, tag);
                }
            });
        }
    });
    let wall = start.elapsed();
    let responses: Vec<EngineResponse> = slots
        .into_inner()
        .expect("batch slots lock")
        .into_iter()
        .map(|slot| slot.expect("every request served"))
        .collect();

    let latencies: Vec<f64> = responses.iter().map(|r| r.elapsed.as_secs_f64()).collect();
    let count = |path: ServePath| responses.iter().filter(|r| r.path == path).count();
    AsyncBatchReport {
        cache_hits: count(ServePath::CacheHit),
        fast_paths: count(ServePath::FastPath),
        races: count(ServePath::Race),
        inconclusive: responses.iter().filter(|r| !r.conclusive).count(),
        latency: SummaryStats::of(&latencies),
        qps: if wall.as_secs_f64() > 0.0 {
            responses.len() as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        in_flight_high_water: high_water.load(Ordering::Relaxed),
        busy_retries: busy_retries.load(Ordering::Relaxed),
        wall,
        responses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_gen::Workloads;
    use psi_core::{PsiRunner, RaceBudget};
    use psi_engine::{Engine, EngineConfig, GraphId, MultiEngine, MultiEngineConfig};
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn async_batch_multiplexes_far_beyond_the_client_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        let stored = random_connected_graph(60, 140, &labels, &mut rng);
        let queries: Vec<Graph> = Workloads::nfv_workload(&stored, 6, 48, 77);
        assert!(queries.len() >= 32, "workload large enough to saturate the window");

        let workers = 2;
        let engine = Engine::new(
            PsiRunner::nfv_default(&stored),
            EngineConfig {
                workers,
                // Admission far above the pool: in-flight queries are
                // bounded by tickets, not threads.
                max_concurrent_races: 32,
                cache_capacity: 0, // every request really races
                predictor_confidence: 2.0,
                // Complete searches keep each race busy long enough for
                // the 2 clients to fill their windows.
                default_budget: RaceBudget::with_max_matches(usize::MAX),
                ..EngineConfig::default()
            },
        );
        let requests: Vec<QueryRequest> =
            queries.iter().map(|q| QueryRequest::new(q.clone())).collect();
        let report = submit_batch_async(&engine, &requests, 2, 16);
        assert_eq!(report.responses.len(), queries.len());
        assert!(report.responses.iter().all(|r| r.conclusive));
        assert!(report.responses.iter().all(|r| r.found()), "grown queries embed");
        assert_eq!(report.races, queries.len());
        assert!(report.qps > 0.0);
        // The multiplexing claim: 2 client threads sustained at least
        // 4 × workers queries in flight simultaneously.
        assert!(
            report.in_flight_high_water >= 4 * workers,
            "2 clients must keep >= {} queries in flight, saw {}",
            4 * workers,
            report.in_flight_high_water
        );
        assert_eq!(engine.stats().races, queries.len() as u64);
    }

    #[test]
    fn async_batch_routes_multi_graph_requests() {
        let spec = crate::multi::MultiWorkloadSpec {
            graphs: 3,
            total_queries: 45,
            distinct_per_graph: 6,
            ..crate::multi::MultiWorkloadSpec::default()
        };
        let workload = crate::multi::MultiWorkload::generate(&spec, 21);
        let multi = MultiEngine::new(MultiEngineConfig {
            workers: 2,
            max_concurrent_races: 8,
            tenant: EngineConfig {
                default_budget: RaceBudget::decision(),
                ..EngineConfig::default()
            },
        });
        let ids: Vec<GraphId> = workload
            .graphs
            .iter()
            .enumerate()
            .map(|(i, g)| {
                multi
                    .register_shared(
                        format!("graph-{i}"),
                        Arc::new(PsiRunner::nfv_default_shared(Arc::clone(g))),
                    )
                    .expect("unique names")
            })
            .collect();
        let requests: Vec<QueryRequest> = workload
            .traffic
            .iter()
            .map(|(g, q)| QueryRequest::new(q.clone()).graph(ids[*g]))
            .collect();
        let report = submit_batch_async(&multi, &requests, 2, 4);
        assert_eq!(report.responses.len(), requests.len());
        // Queries are grown from their own graph, so every request must
        // embed — a response answering from the wrong graph breaks this.
        assert!(report.responses.iter().all(|r| r.conclusive && r.found()));
        assert_eq!(multi.stats().queries, requests.len() as u64);
        // Backpressure (if any) was absorbed, never surfaced.
        assert_eq!(report.cache_hits + report.races + report.fast_paths, requests.len());
    }
}
