//! Idle-biased comparison of the self-tuning race scheduler against
//! classic full-field racing: the same heavy-tailed multi-graph
//! workload, replayed against two registries that differ only in race
//! strategy.
//!
//! The adaptive registry runs [`psi_engine::RaceStrategy::Adaptive`] —
//! once the variant predictor trains, confident queries launch a
//! narrowed heat (down to a single entrant) and big queries split their
//! root-candidate space into cooperating work-stealing slices whenever
//! the pool has spare workers. The unsliced registry runs
//! [`psi_engine::RaceStrategy::Full`] — the classic full-field race,
//! one task per entrant. Traffic is deliberately *idle-biased* (few
//! clients, more workers): that is the regime where a heavy-tailed
//! workload's rare large stragglers dominate tail latency, which is
//! exactly what the adaptive scheduler exists to fix. The p99 ratio is
//! the CI bench artifact's `sliced_p99_speedup` metric.
//!
//! The measured ratio is hardware-dependent by design. Slicing converts
//! *spare physical cores* into intra-query parallelism, so the default
//! spec caps [`SlicingSpec::max_slices`] at the host's available
//! parallelism: a multi-core host shows stragglers genuinely splitting
//! (speedup above 1), while a single-core host cannot run slices
//! concurrently at all — there the adaptive plan degrades to heat
//! narrowing (slices stay at 1, saving the CPU the losing entrants
//! would burn) and the ratio hovers around parity. The baseline
//! recorded in `BENCH_baseline.json` is whatever the CI host honestly
//! measures; the gate catches *regressions* against that, not a fixed
//! absolute.

use crate::multi::{submit_batch_multi, MultiBatchReport, MultiWorkload, MultiWorkloadSpec};
use psi_core::{Algorithm, PsiConfig, PsiRunner, RaceBudget, Rewriting};
use psi_engine::{EngineConfig, GraphId, MultiEngine, MultiEngineConfig, RaceStrategy};
use psi_graph::Graph;
use std::sync::Arc;

/// Outcome of one sliced-vs-unsliced idle-biased measurement.
#[derive(Debug, Clone)]
pub struct SlicingComparison {
    /// Best-pass p99 latency with intra-query slicing, microseconds.
    pub sliced_p99_us: f64,
    /// Best-pass p99 latency with classic one-slice racing, microseconds.
    pub unsliced_p99_us: f64,
    /// `unsliced_p99_us / sliced_p99_us` (0 when the sliced run measured
    /// 0) — above 1 means slicing shortened the tail.
    pub sliced_p99_speedup: f64,
    /// Mean slice tasks spawned per query on the adaptive registry
    /// (counts unsliced small queries too, so this reflects the policy's
    /// selectivity, not just its width). Zero on hosts without the spare
    /// physical parallelism to slice at all.
    pub slices_per_query: f64,
    /// Root-candidate ranges stolen across slices on the sliced
    /// registry — nonzero means the work-stealing cursor actually
    /// rebalanced uneven slices.
    pub steal_count: u64,
}

/// Shape of a [`compare_slicing`] measurement.
#[derive(Debug, Clone)]
pub struct SlicingSpec {
    /// The multi-graph workload both registries serve; heavy-tailed by
    /// default so rare large queries dominate the p99.
    pub workload: MultiWorkloadSpec,
    /// Pool workers per registry.
    pub workers: usize,
    /// Concurrent client threads replaying the traffic; should be well
    /// under `workers` so the pool is idle-biased and slices have spare
    /// capacity to land on.
    pub clients: usize,
    /// Race budget applied to every query (a match cap keeps entrants
    /// enumerating across the root-candidate space, where slicing pays).
    pub budget: RaceBudget,
    /// Measurement passes per registry; each keeps its best pass.
    pub passes: usize,
    /// Slice cap handed to [`RaceStrategy::Adaptive`] on the adaptive
    /// registry. The default follows the host's available parallelism
    /// (capped at 4): at 1, the comparison measures pure heat narrowing.
    pub max_slices: usize,
}

impl Default for SlicingSpec {
    fn default() -> Self {
        Self {
            workload: MultiWorkloadSpec {
                graphs: 2,
                base_nodes: 220,
                node_step: 120,
                base_labels: 2,
                query_edges: 6,
                tail_alpha: 2.5,
                tail_max_edges: 32,
                ..MultiWorkloadSpec::default()
            },
            workers: 6,
            clients: 1,
            budget: RaceBudget::with_max_matches(64),
            passes: 2,
            // Slices beyond the host's physical parallelism cannot run
            // concurrently — they only add claim traffic and duplicated
            // prework — so the default follows the machine, capped at 4.
            max_slices: std::thread::available_parallelism().map_or(1, |p| p.get()).min(4),
        }
    }
}

fn race_only_registry(
    graphs: &[Arc<Graph>],
    spec: &SlicingSpec,
    strategy: RaceStrategy,
) -> (MultiEngine, Vec<GraphId>) {
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: spec.workers,
        max_concurrent_races: spec.clients.max(1),
        tenant: EngineConfig {
            // Isolate the racing path: no result cache, no fast path —
            // every submission really races under the given strategy.
            cache_capacity: 0,
            predictor_confidence: 2.0,
            race_strategy: strategy,
            default_budget: spec.budget.clone(),
            ..EngineConfig::default()
        },
    });
    let ids = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            // Race a fully sliceable field (GraphQL ∥ QuickSI): sPath has
            // no slice session (it falls back to a single-slice run), so
            // keeping it in the field would let it win both registries
            // and mask the axis this harness exists to measure.
            let config =
                PsiConfig::algorithms([Algorithm::GraphQl, Algorithm::QuickSi], Rewriting::Orig);
            multi
                .register_shared(
                    format!("slicecmp-{i}"),
                    Arc::new(PsiRunner::new(Arc::clone(g), config)),
                )
                .expect("unique name")
        })
        .collect();
    (multi, ids)
}

/// p99 of the batch's per-request latencies, microseconds.
fn batch_p99_us(report: &MultiBatchReport) -> f64 {
    let mut lat: Vec<f64> =
        report.responses.iter().map(|(_, r)| r.elapsed.as_secs_f64() * 1e6).collect();
    if lat.is_empty() {
        return 0.0;
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let idx = ((lat.len() as f64 * 0.99).ceil() as usize).clamp(1, lat.len()) - 1;
    lat[idx]
}

/// Measures idle-biased tail latency of the same heavy-tailed traffic
/// against a sliced ([`RaceStrategy::Adaptive`]) and an unsliced
/// ([`RaceStrategy::Full`]) registry, returning both best-pass p99s plus
/// the sliced registry's slicing counters. Passes alternate in
/// palindromic order (s u | u s) so a throttling host cannot hand either
/// mode a systematic edge.
pub fn compare_slicing(spec: &SlicingSpec, seed: u64) -> SlicingComparison {
    let workload = MultiWorkload::generate(&spec.workload, seed);
    let (sliced, sliced_ids) = race_only_registry(
        &workload.graphs,
        spec,
        RaceStrategy::Adaptive { max_slices: spec.max_slices.max(1), escalate_after: 1.0 },
    );
    let (unsliced, unsliced_ids) = race_only_registry(&workload.graphs, spec, RaceStrategy::Full);
    let route = |ids: &[GraphId]| -> Vec<(GraphId, Graph)> {
        workload.traffic.iter().map(|(g, q)| (ids[*g], q.clone())).collect()
    };
    let sliced_traffic = route(&sliced_ids);
    let unsliced_traffic = route(&unsliced_ids);

    let mut sliced_p99_us = f64::INFINITY;
    let mut unsliced_p99_us = f64::INFINITY;
    for pass in 0..spec.passes.max(1) {
        let (first, second) = if pass % 2 == 0 { (true, false) } else { (false, true) };
        for sliced_turn in [first, second] {
            if sliced_turn {
                let report = submit_batch_multi(&sliced, &sliced_traffic, spec.clients);
                sliced_p99_us = sliced_p99_us.min(batch_p99_us(&report));
            } else {
                let report = submit_batch_multi(&unsliced, &unsliced_traffic, spec.clients);
                unsliced_p99_us = unsliced_p99_us.min(batch_p99_us(&report));
            }
        }
    }

    let stats = sliced.stats();
    SlicingComparison {
        sliced_p99_us,
        unsliced_p99_us,
        sliced_p99_speedup: if sliced_p99_us > 0.0 { unsliced_p99_us / sliced_p99_us } else { 0.0 },
        slices_per_query: if stats.queries > 0 {
            stats.slices_spawned as f64 / stats.queries as f64
        } else {
            0.0
        },
        steal_count: stats.slice_steals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[ignore = "measurement probe: run with --release -- --ignored --nocapture"]
    fn probe_default_spec() {
        let cmp = compare_slicing(&SlicingSpec { passes: 3, ..SlicingSpec::default() }, 2024);
        println!("{cmp:#?}");
    }

    #[test]
    fn comparison_measures_both_modes_and_slices() {
        let spec = SlicingSpec {
            workload: MultiWorkloadSpec {
                total_queries: 40,
                distinct_per_graph: 8,
                // 10-edge floor: induced queries at the default 6-edge
                // floor can land under `slice_min_query_nodes` (6) and
                // legitimately skip slicing, starving the assertion
                // below.
                query_edges: 10,
                ..SlicingSpec::default().workload
            },
            passes: 1,
            // Pinned, not host-derived: this test asserts slicing really
            // engages, so it must not degrade to 1 on single-core CI.
            max_slices: 4,
            ..SlicingSpec::default()
        };
        let cmp = compare_slicing(&spec, 42);
        assert!(cmp.sliced_p99_us > 0.0 && cmp.sliced_p99_us.is_finite());
        assert!(cmp.unsliced_p99_us > 0.0 && cmp.unsliced_p99_us.is_finite());
        assert!(cmp.sliced_p99_speedup > 0.0);
        assert!(
            cmp.slices_per_query > 1.0,
            "idle-biased heavy-tailed traffic must actually slice: {cmp:?}"
        );
    }
}
