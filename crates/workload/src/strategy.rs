//! Saturated-pool comparison of race strategies: the same workload,
//! replayed as concurrent traffic against two engines that differ only
//! in [`RaceStrategy`] — the full-field race versus adaptive top-K with
//! staged escalation.
//!
//! On a saturated pool the full field pays for its insurance twice: the
//! losing variants of every race occupy workers that could be running
//! *other* queries' winners. Pruning predictable losers frees those
//! slots, so top-K throughput should meet or beat race-all throughput
//! once the predictor is trained — which is exactly what the CI bench
//! artifact tracks over time ([`psi_bench`]'s `topk_qps` metric).

use crate::batch::submit_batch;
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{Engine, EngineConfig, RaceStrategy};
use psi_graph::Graph;
use std::sync::Arc;

/// Outcome of one Full-vs-TopK saturated-pool measurement.
#[derive(Debug, Clone)]
pub struct StrategyComparison {
    /// Throughput racing the full entrant field, queries/second.
    pub full_qps: f64,
    /// Throughput with adaptive top-K racing, queries/second.
    pub topk_qps: f64,
    /// `topk_qps / full_qps` (0 when the full run measured 0 qps).
    pub speedup: f64,
    /// Fraction of the TopK engine's staged races that escalated to the
    /// full field — low means the predictor's pruning held.
    pub escalation_rate: f64,
    /// Entrants the TopK engine never launched thanks to pruning.
    pub pruned_entrants: u64,
    /// Races the TopK engine actually staged (its training-phase races
    /// run the full field and are not counted here).
    pub topk_races: u64,
}

/// Shape of a [`compare_race_strategies`] measurement.
#[derive(Debug, Clone)]
pub struct StrategySpec {
    /// The variant field both engines race.
    pub config: PsiConfig,
    /// The TopK strategy under test (the reference engine always runs
    /// [`RaceStrategy::Full`]).
    pub strategy: RaceStrategy,
    /// Pool workers per engine; `clients` should exceed this so the pool
    /// saturates.
    pub workers: usize,
    /// Concurrent client threads replaying the workload.
    pub clients: usize,
    /// Race budget applied to every query.
    pub budget: RaceBudget,
    /// Races the predictor must observe before top-K pruning activates;
    /// the training workload should cover this.
    pub min_observations: usize,
}

impl Default for StrategySpec {
    fn default() -> Self {
        Self {
            config: PsiConfig::gql_spa_orig_dnd(),
            strategy: RaceStrategy::TopK { k: 1, escalate_after: 0.5 },
            workers: 4,
            clients: 8,
            budget: RaceBudget::decision(),
            min_observations: 8,
        }
    }
}

fn racing_engine(stored: &Arc<Graph>, spec: &StrategySpec, strategy: RaceStrategy) -> Engine {
    Engine::new(
        PsiRunner::new(Arc::clone(stored), spec.config.clone()),
        EngineConfig {
            workers: spec.workers,
            // Admission must not cap the benefit under test: pruning
            // frees pool slots precisely so that *more* races can be in
            // flight, so both engines admit up to every client at once
            // (the pool itself stays the bottleneck).
            max_concurrent_races: spec.workers.max(spec.clients),
            // Isolate the racing path: no result cache, no fast path —
            // every submission really races under the strategy.
            cache_capacity: 0,
            predictor_confidence: 2.0,
            predictor_min_observations: spec.min_observations,
            race_strategy: strategy,
            default_budget: spec.budget.clone(),
            ..EngineConfig::default()
        },
    )
}

/// Measures saturated-pool throughput of `queries` against `stored`
/// under the full-field race and under `spec.strategy`, returning both
/// qps numbers and the TopK engine's pruning statistics.
///
/// The TopK engine's predictor is first trained on `training` (raced
/// full-field until `spec.min_observations` races accumulate); the
/// measured passes then replay `queries` from `spec.clients` concurrent
/// clients against each engine in turn.
pub fn compare_race_strategies(
    stored: &Arc<Graph>,
    training: &[Graph],
    queries: &[Graph],
    spec: &StrategySpec,
) -> StrategyComparison {
    let full = racing_engine(stored, spec, RaceStrategy::Full);
    let topk = racing_engine(stored, spec, spec.strategy);
    // Train the TopK engine's predictor (and warm both pools evenly).
    submit_batch(&topk, training, spec.clients);
    submit_batch(&full, training, spec.clients);

    let full_report = submit_batch(&full, queries, spec.clients);
    let topk_report = submit_batch(&topk, queries, spec.clients);

    let stats = topk.stats();
    StrategyComparison {
        full_qps: full_report.qps,
        topk_qps: topk_report.qps,
        speedup: if full_report.qps > 0.0 { topk_report.qps / full_report.qps } else { 0.0 },
        escalation_rate: stats.escalation_rate,
        pruned_entrants: stats.pruned_entrants,
        topk_races: stats.topk_races,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_gen::Workloads;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn comparison_measures_both_strategies_and_prunes() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        let stored = Arc::new(random_connected_graph(60, 140, &labels, &mut rng));
        let training: Vec<Graph> = Workloads::nfv_workload(&stored, 6, 12, 5);
        let queries: Vec<Graph> = Workloads::nfv_workload(&stored, 6, 16, 6);
        assert!(training.len() >= 8 && !queries.is_empty());

        let spec = StrategySpec { workers: 2, clients: 4, ..StrategySpec::default() };
        let cmp = compare_race_strategies(&stored, &training, &queries, &spec);
        assert!(cmp.full_qps > 0.0);
        assert!(cmp.topk_qps > 0.0);
        assert!(cmp.speedup > 0.0);
        // Every measured race is staged; late *training* races may stage
        // too once the observation floor is crossed mid-training.
        assert!(
            cmp.topk_races as usize >= queries.len(),
            "trained engine stages every measured race: {cmp:?}"
        );
        assert!(
            cmp.pruned_entrants > 0 || cmp.escalation_rate > 0.0,
            "staged races either prune or escalate"
        );
        assert!((0.0..=1.0).contains(&cmp.escalation_rate));
    }
}
