//! Saturated-pool comparison of the shared [`psi_graph::TargetIndex`]
//! against the legacy per-query scan paths: the same multi-graph
//! workload, replayed as concurrent traffic against two registries that
//! differ only in how their matchers were prepared.
//!
//! The indexed registry's runners share one `TargetIndex` per stored
//! graph (label candidate lists, degree array, neighborhood signatures
//! with bit-masks, dense adjacency bitset, pooled scratch buffers); the
//! legacy registry's runners use the seed scan behavior (per-query
//! candidate rescans, binary-search adjacency probes, per-query
//! allocations). Both serve identical traffic with caches and the fast
//! path off, so every request really races — the qps ratio is the CI
//! bench artifact's `indexed_speedup` metric.

use crate::multi::{submit_batch_multi, MultiWorkload, MultiWorkloadSpec};
use psi_core::{PsiConfig, PsiRunner, RaceBudget};
use psi_engine::{EngineConfig, GraphId, MultiEngine, MultiEngineConfig};
use psi_graph::Graph;
use std::sync::Arc;

/// Outcome of one indexed-vs-legacy saturated-pool measurement.
#[derive(Debug, Clone)]
pub struct IndexComparison {
    /// Throughput with shared-[`psi_graph::TargetIndex`] matchers,
    /// queries/second.
    pub indexed_qps: f64,
    /// Throughput with the legacy scan-mode matchers, queries/second.
    pub legacy_qps: f64,
    /// `indexed_qps / legacy_qps` (0 when the legacy run measured 0).
    pub speedup: f64,
    /// Total index build cost across the indexed registry's graphs,
    /// microseconds — the one-time price of registration.
    pub index_build_us: u64,
    /// Adjacency probes the indexed registry answered from the dense
    /// bitset during the measured pass.
    pub edge_probes_bitset: u64,
    /// Adjacency probes the indexed registry fell back to binary search
    /// for (graphs too large for a bitset).
    pub edge_probes_binary: u64,
}

/// Shape of a [`compare_index_modes`] measurement.
#[derive(Debug, Clone)]
pub struct IndexCmpSpec {
    /// The multi-graph workload both registries serve.
    pub workload: MultiWorkloadSpec,
    /// The variant field every race runs.
    pub config: PsiConfig,
    /// Pool workers per registry.
    pub workers: usize,
    /// Concurrent client threads replaying the traffic; should exceed
    /// `workers` so the pool saturates.
    pub clients: usize,
    /// Race budget applied to every query (matching-style budgets keep
    /// entrants in their inner search loops, where the index pays).
    pub budget: RaceBudget,
    /// Measurement passes per registry; each keeps its best pass.
    pub passes: usize,
}

impl Default for IndexCmpSpec {
    fn default() -> Self {
        Self {
            workload: MultiWorkloadSpec::default(),
            config: PsiConfig::gql_spa_orig_dnd(),
            workers: 4,
            clients: 8,
            budget: RaceBudget::with_max_matches(64),
            passes: 2,
        }
    }
}

fn race_only_registry(
    graphs: &[Arc<Graph>],
    spec: &IndexCmpSpec,
    indexed: bool,
) -> (MultiEngine, Vec<GraphId>) {
    let multi = MultiEngine::new(MultiEngineConfig {
        workers: spec.workers,
        max_concurrent_races: spec.workers.max(spec.clients),
        tenant: EngineConfig {
            // Isolate the racing path: no result cache, no fast path —
            // every submission really races in the configured mode.
            cache_capacity: 0,
            predictor_confidence: 2.0,
            default_budget: spec.budget.clone(),
            ..EngineConfig::default()
        },
    });
    let ids = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let runner = if indexed {
                PsiRunner::new(Arc::clone(g), spec.config.clone())
            } else {
                PsiRunner::new_legacy_scan(Arc::clone(g), spec.config.clone())
            };
            multi.register(format!("idxcmp-{i}"), runner).expect("unique name")
        })
        .collect();
    (multi, ids)
}

/// Measures saturated-pool throughput of the same multi-graph traffic
/// against an indexed and a legacy scan-mode registry, returning both
/// qps numbers plus the indexed registry's index-build cost and probe
/// breakdown. Passes alternate in palindromic order (i l | l i) so a
/// throttling host cannot hand either mode a systematic edge.
pub fn compare_index_modes(spec: &IndexCmpSpec, seed: u64) -> IndexComparison {
    let workload = MultiWorkload::generate(&spec.workload, seed);
    let (indexed, indexed_ids) = race_only_registry(&workload.graphs, spec, true);
    let (legacy, legacy_ids) = race_only_registry(&workload.graphs, spec, false);
    let route = |ids: &[GraphId]| -> Vec<(GraphId, Graph)> {
        workload.traffic.iter().map(|(g, q)| (ids[*g], q.clone())).collect()
    };
    let indexed_traffic = route(&indexed_ids);
    let legacy_traffic = route(&legacy_ids);

    let mut indexed_qps = 0.0f64;
    let mut legacy_qps = 0.0f64;
    for pass in 0..spec.passes.max(1) {
        let (first, second) = if pass % 2 == 0 { (true, false) } else { (false, true) };
        for indexed_turn in [first, second] {
            if indexed_turn {
                indexed_qps = indexed_qps
                    .max(submit_batch_multi(&indexed, &indexed_traffic, spec.clients).qps);
            } else {
                legacy_qps =
                    legacy_qps.max(submit_batch_multi(&legacy, &legacy_traffic, spec.clients).qps);
            }
        }
    }

    let stats = indexed.stats();
    IndexComparison {
        indexed_qps,
        legacy_qps,
        speedup: if legacy_qps > 0.0 { indexed_qps / legacy_qps } else { 0.0 },
        index_build_us: stats.index_build_us,
        edge_probes_bitset: stats.edge_probes_bitset,
        edge_probes_binary: stats.edge_probes_binary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_measures_both_modes() {
        let spec = IndexCmpSpec {
            workload: MultiWorkloadSpec {
                graphs: 2,
                total_queries: 40,
                distinct_per_graph: 8,
                ..MultiWorkloadSpec::default()
            },
            workers: 2,
            clients: 4,
            passes: 1,
            ..IndexCmpSpec::default()
        };
        let cmp = compare_index_modes(&spec, 99);
        assert!(cmp.indexed_qps > 0.0);
        assert!(cmp.legacy_qps > 0.0);
        assert!(cmp.speedup > 0.0);
        assert!(cmp.index_build_us > 0, "registration built real indexes");
        assert!(
            cmp.edge_probes_bitset > 0,
            "small stored graphs must be served through the bitset: {cmp:?}"
        );
    }
}
