//! The paper's performance metrics (§3.5).
//!
//! Two aggregation styles for comparing measurement sets `A` (baseline) and
//! `B` (alternative):
//!
//! * **WLA** (Workload-Level Aggregation): `avg(B) / avg(A)` — "the
//!   improvement in the overall average execution time ... important from
//!   the system perspective".
//! * **QLA** (Query-Level Average): `avg(B_i / A_i)` — "the average of
//!   per-query improvements ... user-centric".
//!
//! Plus the two derived metrics:
//!
//! * **(max/min)** — over a query's isomorphic instances,
//!   `max_j(t_{i,j}) / min_j(t_{i,j})`; 1 means no variance (§5).
//! * **speedup★** — `t_i / T` where `T` is the best alternative's time
//!   (best rewriting, best algorithm, or the Ψ race); "what we lose if we
//!   choose the original method over the various alternatives" (§6–8).

/// Summary statistics reported in the paper's tables (stdDev, min, max,
/// median — plus the mean shown in the figures).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (midpoint average for even counts).
    pub median: f64,
    /// Sample count.
    pub count: usize,
}

impl SummaryStats {
    /// Computes the summary of `values`; `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("metric values are finite"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Some(Self {
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median,
            count: values.len(),
        })
    }
}

/// WLA ratio of two measurement sets: `avg(b) / avg(a)`.
/// Returns `None` when either set is empty or `avg(a)` is zero.
pub fn wla(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let avg_a = a.iter().sum::<f64>() / a.len() as f64;
    let avg_b = b.iter().sum::<f64>() / b.len() as f64;
    (avg_a != 0.0).then(|| avg_b / avg_a)
}

/// QLA ratio of two *aligned* measurement sets: `avg_i(b[i] / a[i])`.
/// Pairs with `a[i] == 0` are skipped. Returns `None` when nothing remains.
pub fn qla(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "QLA requires aligned per-query measurements");
    let ratios: Vec<f64> =
        a.iter().zip(b).filter(|(x, _)| **x != 0.0).map(|(x, y)| y / x).collect();
    if ratios.is_empty() {
        None
    } else {
        Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
    }
}

/// The per-query `(max/min)` metric over one query's isomorphic-instance
/// times (§3.5). `None` for empty input or a zero minimum.
pub fn max_min_ratio(instance_times: &[f64]) -> Option<f64> {
    let min = instance_times.iter().copied().fold(f64::INFINITY, f64::min);
    let max = instance_times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if instance_times.is_empty() || min <= 0.0 {
        None
    } else {
        Some(max / min)
    }
}

/// The per-query `speedup★` metric: baseline time over the best
/// alternative's time (§3.5). `None` when the alternative time is zero.
pub fn speedup_star(baseline: f64, best_alternative: f64) -> Option<f64> {
    (best_alternative > 0.0).then(|| baseline / best_alternative)
}

/// Applies the paper's §5/§6 exclusion rule, then computes per-query
/// `(max/min)` QLA statistics: queries whose *every* instance hit the cap
/// ("not helped by any of the isomorphic instances tried") are excluded.
///
/// `times[i]` holds query `i`'s per-instance times (already charged at the
/// cap for killed runs); `cap` is that charge value.
pub fn max_min_qla(times: &[Vec<f64>], cap: f64) -> Option<SummaryStats> {
    let ratios: Vec<f64> = times
        .iter()
        .filter(|instances| instances.iter().any(|&t| t < cap))
        .filter_map(|instances| max_min_ratio(instances))
        .collect();
    SummaryStats::of(&ratios)
}

/// Per-query `speedup★` QLA statistics with the same exclusion rule:
/// `baselines[i]` vs the best of `alternatives[i]` (both cap-charged).
/// Queries where baseline *and* every alternative hit the cap are excluded.
pub fn speedup_qla(baselines: &[f64], alternatives: &[Vec<f64>], cap: f64) -> Option<SummaryStats> {
    assert_eq!(baselines.len(), alternatives.len(), "aligned per-query inputs required");
    let speedups: Vec<f64> = baselines
        .iter()
        .zip(alternatives)
        .filter(|(b, alts)| **b < cap || alts.iter().any(|&t| t < cap))
        .filter_map(|(b, alts)| {
            let best = alts.iter().copied().fold(f64::INFINITY, f64::min);
            speedup_star(*b, best)
        })
        .collect();
    SummaryStats::of(&speedups)
}

/// `speedup★` at the workload level: `avg(baselines) / avg(best
/// alternative per query)`.
pub fn speedup_wla(baselines: &[f64], alternatives: &[Vec<f64>]) -> Option<f64> {
    assert_eq!(baselines.len(), alternatives.len(), "aligned per-query inputs required");
    if baselines.is_empty() {
        return None;
    }
    let bests: Vec<f64> = alternatives
        .iter()
        .map(|alts| alts.iter().copied().fold(f64::INFINITY, f64::min))
        .collect();
    wla(&bests, baselines) // avg(baselines) / avg(bests)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_stats_basic() {
        let s = SummaryStats::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.count, 4);
        assert!((s.stddev - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_stats_odd_median() {
        let s = SummaryStats::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_stats_empty() {
        assert!(SummaryStats::of(&[]).is_none());
    }

    #[test]
    fn wla_vs_qla_differ() {
        // The §3.5 distinction: one big query dominates WLA but not QLA.
        let a = [100.0, 1.0]; // baseline
        let b = [50.0, 1.0]; // alternative
        let w = wla(&a, &b).unwrap(); // avg 25.5 / 50.5
        let q = qla(&a, &b).unwrap(); // avg(0.5, 1.0)
        assert!((w - 51.0 / 101.0).abs() < 1e-12);
        assert!((q - 0.75).abs() < 1e-12);
    }

    #[test]
    fn qla_skips_zero_baselines() {
        assert_eq!(qla(&[0.0, 2.0], &[5.0, 4.0]), Some(2.0));
        assert_eq!(qla(&[0.0], &[5.0]), None);
    }

    #[test]
    fn max_min_basics() {
        assert_eq!(max_min_ratio(&[2.0, 8.0, 4.0]), Some(4.0));
        assert_eq!(max_min_ratio(&[3.0]), Some(1.0));
        assert_eq!(max_min_ratio(&[]), None);
        assert_eq!(max_min_ratio(&[0.0, 1.0]), None);
    }

    #[test]
    fn speedup_star_basics() {
        assert_eq!(speedup_star(10.0, 2.0), Some(5.0));
        assert_eq!(speedup_star(10.0, 0.0), None);
        // Original faster than alternatives -> speedup < 1 is allowed.
        assert_eq!(speedup_star(1.0, 2.0), Some(0.5));
    }

    #[test]
    fn max_min_qla_applies_exclusion_rule() {
        let cap = 600.0;
        let times = vec![
            vec![1.0, 10.0],    // helped: ratio 10
            vec![600.0, 600.0], // all killed: excluded
            vec![600.0, 6.0],   // helped: ratio 100
        ];
        let s = max_min_qla(&times, cap).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 55.0);
    }

    #[test]
    fn speedup_qla_applies_exclusion_rule() {
        let cap = 600.0;
        let base = vec![600.0, 600.0, 10.0];
        let alts = vec![
            vec![600.0, 6.0],   // rewriting rescued a killed query: 100×
            vec![600.0, 600.0], // nothing helped: excluded
            vec![5.0, 20.0],    // modest win: 2×
        ];
        let s = speedup_qla(&base, &alts, cap).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 51.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn speedup_wla_ratio_of_averages() {
        let base = vec![100.0, 10.0];
        let alts = vec![vec![50.0, 75.0], vec![10.0, 2.0]];
        // bests = [50, 2]; avg(base)=55, avg(bests)=26.
        assert!((speedup_wla(&base, &alts).unwrap() - 55.0 / 26.0).abs() < 1e-12);
        assert!(speedup_wla(&[], &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn qla_requires_alignment() {
        let _ = qla(&[1.0], &[1.0, 2.0]);
    }
}
