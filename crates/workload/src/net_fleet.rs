//! Loopback client fleets: hundreds of TCP connections hammering a
//! [`psi_net::PsiServer`] from a few client threads.
//!
//! [`crate::submit_batch_async`] measures the engine's in-process
//! multiplexing; [`run_net_fleet`] measures the same thing *through the
//! wire*. A fleet opens [`NetFleetSpec::connections`] real sockets,
//! spreads them over [`NetFleetSpec::client_threads`] threads, and
//! drives each connection in pipelined bursts: write a burst of tagged
//! request frames on every connection, then collect the replies. All
//! threads rendezvous on a [`std::sync::Barrier`] after connecting, so
//! the server genuinely holds every connection at once — the fleet
//! exists to prove the event loops multiplex, not to trickle requests.
//!
//! The per-reply bookkeeping is deliberately strict: tags must echo,
//! statuses are counted by kind, and admission refusals (which a
//! correctly sized waiting room should make impossible) are reported
//! separately from transport or protocol failures.

use psi_net::{PsiClient, QueryFrame, WireStatus};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Shape of one loopback fleet run.
#[derive(Debug, Clone)]
pub struct NetFleetSpec {
    /// Concurrent TCP connections to open (all held simultaneously).
    pub connections: usize,
    /// Requests sent per connection over the run.
    pub queries_per_conn: usize,
    /// OS threads driving the fleet — each owns
    /// `connections / client_threads` connections.
    pub client_threads: usize,
    /// Requests in flight per connection within one burst.
    pub pipeline: usize,
}

impl Default for NetFleetSpec {
    fn default() -> Self {
        Self { connections: 256, queries_per_conn: 8, client_threads: 8, pipeline: 4 }
    }
}

/// What a fleet run observed.
#[derive(Debug)]
pub struct NetFleetReport {
    /// Replies with status `Ok`.
    pub completed: usize,
    /// `Ok` replies whose verdict found an embedding.
    pub found: usize,
    /// Replies with `Busy` or `QueueFull` status — the waiting room
    /// failed to absorb the burst.
    pub admission_errors: u64,
    /// Any other non-`Ok` reply plus transport failures.
    pub other_errors: u64,
    /// First post-barrier write to last reply collected.
    pub wall: Duration,
    /// `Ok` replies per second over `wall` — the wire-serving
    /// throughput (`net_qps` in the bench artifact).
    pub qps: f64,
}

/// Runs a fleet of [`NetFleetSpec::connections`] loopback clients
/// against the server at `addr`, sending each connection
/// [`NetFleetSpec::queries_per_conn`] requests drawn round-robin from
/// `frames` (re-tagged per connection; the frame's own tag is ignored).
///
/// # Panics
/// Panics if `frames` is empty or a connection cannot be established —
/// harness construction failures, not serving conditions.
pub fn run_net_fleet(
    addr: SocketAddr,
    frames: &[QueryFrame],
    spec: &NetFleetSpec,
) -> NetFleetReport {
    assert!(!frames.is_empty(), "a fleet needs at least one request frame");
    let connections = spec.connections.max(1);
    let threads = spec.client_threads.clamp(1, connections);
    let per_conn = spec.queries_per_conn.max(1);
    let pipeline = spec.pipeline.clamp(1, per_conn);

    let completed = AtomicUsize::new(0);
    let found = AtomicUsize::new(0);
    let admission_errors = AtomicU64::new(0);
    let other_errors = AtomicU64::new(0);
    // +1 for this thread: it releases the fleet and starts the clock
    // only after every connection is open.
    let barrier = Barrier::new(threads + 1);
    let started: std::sync::Mutex<Option<Instant>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for t in 0..threads {
            let (barrier, completed, found, admission_errors, other_errors) =
                (&barrier, &completed, &found, &admission_errors, &other_errors);
            scope.spawn(move || {
                // Connections are dealt round-robin so thread loads
                // differ by at most one.
                let mine: Vec<usize> = (0..connections).filter(|c| c % threads == t).collect();
                let mut clients: Vec<PsiClient> = mine
                    .iter()
                    .map(|_| PsiClient::connect(addr).expect("fleet connection"))
                    .collect();
                barrier.wait();

                // Burst loop: phase-write `pipeline` frames on every
                // connection, then phase-read them back — so the server
                // sees all of this thread's connections active at once,
                // not one socket served to completion at a time.
                let mut sent = vec![0usize; clients.len()];
                let mut next_frame = t; // stagger the round-robin start
                while sent.iter().any(|&s| s < per_conn) {
                    let mut expect = vec![0usize; clients.len()];
                    for (i, client) in clients.iter_mut().enumerate() {
                        let burst = pipeline.min(per_conn - sent[i]);
                        for b in 0..burst {
                            let mut frame = frames[next_frame % frames.len()].clone();
                            next_frame += 1;
                            frame.tag = ((mine[i] as u64) << 32) | (sent[i] + b) as u64;
                            if client.send(&frame).is_err() {
                                other_errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            expect[i] += 1;
                        }
                        sent[i] += burst;
                    }
                    for (i, client) in clients.iter_mut().enumerate() {
                        for _ in 0..expect[i] {
                            match client.recv() {
                                Ok(reply) => {
                                    assert_eq!(
                                        reply.tag >> 32,
                                        mine[i] as u64,
                                        "replies must stay on their connection"
                                    );
                                    match reply.status {
                                        WireStatus::Ok => {
                                            completed.fetch_add(1, Ordering::Relaxed);
                                            if reply.verdict.as_ref().is_some_and(|v| v.found) {
                                                found.fetch_add(1, Ordering::Relaxed);
                                            }
                                        }
                                        WireStatus::Busy | WireStatus::QueueFull => {
                                            admission_errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                        _ => {
                                            other_errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Err(_) => {
                                    other_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                }
            });
        }
        barrier.wait();
        *started.lock().expect("fleet start lock") = Some(Instant::now());
    });
    let wall = started.lock().expect("fleet start lock").expect("barrier passed").elapsed();

    let completed = completed.into_inner();
    NetFleetReport {
        completed,
        found: found.into_inner(),
        admission_errors: admission_errors.into_inner(),
        other_errors: other_errors.into_inner(),
        qps: if wall.as_secs_f64() > 0.0 { completed as f64 / wall.as_secs_f64() } else { 0.0 },
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_gen::Workloads;
    use psi_core::{PsiRunner, RaceBudget};
    use psi_engine::{EngineConfig, MultiEngine, MultiEngineConfig};
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_net::loopback;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::Arc;

    #[test]
    fn fleet_completes_a_burst_far_over_the_race_limit_without_refusals() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        let stored = random_connected_graph(60, 140, &labels, &mut rng);
        let multi = Arc::new(MultiEngine::new(MultiEngineConfig {
            workers: 2,
            // Deliberately tiny: the fleet's concurrency is many times
            // this, so the waiting room must absorb the overflow.
            max_concurrent_races: 4,
            tenant: EngineConfig {
                default_budget: RaceBudget::decision(),
                // No cache, no fast path: every wire request must race,
                // so the tiny race limit is genuinely contended.
                cache_capacity: 0,
                predictor_confidence: 2.0,
                ..EngineConfig::default()
            },
        }));
        multi.register("stored", PsiRunner::nfv_default(&stored)).expect("register");

        let frames: Vec<QueryFrame> = Workloads::nfv_workload(&stored, 5, 24, 99)
            .iter()
            .map(|q| QueryFrame::new(0, q))
            .collect();
        let server = loopback(Arc::clone(&multi), 2).expect("loopback server");
        let spec =
            NetFleetSpec { connections: 64, queries_per_conn: 4, client_threads: 8, pipeline: 4 };
        let report = run_net_fleet(server.addr(), &frames, &spec);

        let total = spec.connections * spec.queries_per_conn;
        assert_eq!(report.completed, total, "every wire request must be served");
        assert_eq!(report.admission_errors, 0, "the waiting room absorbs the whole burst");
        assert_eq!(report.other_errors, 0);
        assert_eq!(report.found, total, "workload queries are grown from the stored graph");
        assert!(report.qps > 0.0);
        let stats = multi.stats();
        assert_eq!(stats.queries, total as u64);
        assert_eq!(stats.busy_rejections, 0);
        assert_eq!(stats.queue_full_rejections, 0);
        assert!(
            stats.parked > 0,
            "a 64-connection burst over 4 race slots must have parked queries"
        );
    }
}
