//! Random-walk query generation (§3.4 of the paper).
//!
//! Queries grow edge-by-edge from a random start node, each step choosing
//! uniformly among *all* edges adjacent to the current partial query (which
//! includes edges closing cycles between already-chosen nodes). Node IDs in
//! the generated query follow first-touch order — an arbitrary assignment,
//! exactly the "original" numbering whose pathologies the rewritings fix.

use psi_graph::{Graph, GraphBuilder, NodeId};
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, HashSet};

/// Deterministic query generator over a source graph or database.
#[derive(Debug)]
pub struct QueryGen {
    rng: ChaCha8Rng,
}

impl QueryGen {
    /// Creates a generator with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Grows one query of exactly `target_edges` edges from a uniformly
    /// random start node of `g`. Returns `None` if the start node's
    /// component has fewer than `target_edges` edges (the paper's datasets
    /// always have enough; small test graphs may not).
    pub fn query_from_graph(&mut self, g: &Graph, target_edges: usize) -> Option<Graph> {
        if g.node_count() == 0 {
            return None;
        }
        let start = self.rng.random_range(0..g.node_count() as NodeId);
        grow_query(g, start, target_edges, &mut self.rng)
    }

    /// §3.4 database form: select a stored graph uniformly at random, then
    /// grow. Returns the source graph index along with the query.
    pub fn query_from_db(&mut self, db: &[Graph], target_edges: usize) -> Option<(usize, Graph)> {
        if db.is_empty() {
            return None;
        }
        let gid = self.rng.random_range(0..db.len());
        let q = self.query_from_graph(&db[gid], target_edges)?;
        Some((gid, q))
    }
}

/// Grows a query of `target_edges` edges starting at `start` (see module
/// docs). Returns `None` when the component around `start` runs out of
/// adjacent edges first.
pub fn grow_query<R: Rng + ?Sized>(
    g: &Graph,
    start: NodeId,
    target_edges: usize,
    rng: &mut R,
) -> Option<Graph> {
    let mut nodes: Vec<NodeId> = vec![start]; // first-touch order
    let mut node_set: HashSet<NodeId> = HashSet::from([start]);
    let mut chosen: HashSet<(NodeId, NodeId)> = HashSet::new();

    while chosen.len() < target_edges {
        // All graph edges adjacent to the current query, not yet chosen.
        let mut frontier: Vec<(NodeId, NodeId)> = Vec::new();
        for &u in &nodes {
            for &v in g.neighbors(u) {
                let e = (u.min(v), u.max(v));
                if !chosen.contains(&e) {
                    frontier.push(e);
                }
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        let &(u, v) = frontier.choose(rng)?;
        chosen.insert((u, v));
        for w in [u, v] {
            if node_set.insert(w) {
                nodes.push(w);
            }
        }
    }

    // Remap to dense ids in first-touch order.
    let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(nodes.len());
    let mut b = GraphBuilder::with_capacity(nodes.len(), chosen.len());
    for (i, &n) in nodes.iter().enumerate() {
        remap.insert(n, i as NodeId);
        b.add_node(g.label(n));
    }
    for (u, v) in chosen {
        b.add_edge(remap[&u], remap[&v]).expect("remapped edges are valid");
    }
    Some(b.build().expect("generated query is a valid graph"))
}

/// Workload builders mirroring the paper's setups (§3.4): fixed query sizes
/// in edges, N queries per size.
pub struct Workloads;

impl Workloads {
    /// The paper's NFV query sizes (10, 16, 20, 24, 32 edges).
    pub const NFV_SIZES: [usize; 5] = [10, 16, 20, 24, 32];
    /// The paper's PPI query sizes (16, 20, 24, 32 edges).
    pub const PPI_SIZES: [usize; 4] = [16, 20, 24, 32];
    /// The paper's synthetic-dataset query sizes (24, 32, 40 edges).
    pub const SYNTHETIC_SIZES: [usize; 3] = [24, 32, 40];

    /// `count` queries of `edges` edges against a single stored graph
    /// (NFV setting). Queries that cannot reach the size (tiny components)
    /// are skipped, so fewer than `count` may return on degenerate inputs.
    pub fn nfv_workload(g: &Graph, edges: usize, count: usize, seed: u64) -> Vec<Graph> {
        let mut gen = QueryGen::new(seed ^ (edges as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            if let Some(q) = gen.query_from_graph(g, edges) {
                out.push(q);
            }
        }
        out
    }

    /// `count` (source graph, query) pairs against a database (FTV setting).
    pub fn ftv_workload(
        db: &[Graph],
        edges: usize,
        count: usize,
        seed: u64,
    ) -> Vec<(usize, Graph)> {
        let mut gen = QueryGen::new(seed ^ (edges as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
        let mut out = Vec::with_capacity(count);
        let mut attempts = 0;
        while out.len() < count && attempts < count * 20 {
            attempts += 1;
            if let Some(pair) = gen.query_from_db(db, edges) {
                out.push(pair);
            }
        }
        out
    }

    /// One query of `edges` edges (convenience for examples/doctests).
    pub fn single_query(g: &Graph, edges: usize, seed: u64) -> Option<Graph> {
        QueryGen::new(seed).query_from_graph(g, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::components::is_connected;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use psi_matchers::bruteforce;

    fn source() -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let labels = LabelDist::Uniform { num_labels: 5 }.sampler();
        random_connected_graph(60, 150, &labels, &mut rng)
    }

    #[test]
    fn query_has_requested_size_and_is_connected() {
        let g = source();
        for edges in [4, 8, 16] {
            let q = Workloads::single_query(&g, edges, 42).expect("generable");
            assert_eq!(q.edge_count(), edges);
            assert!(is_connected(&q), "random-walk queries are connected");
        }
    }

    #[test]
    fn query_is_contained_in_source() {
        let g = source();
        for seed in 0..5 {
            let q = Workloads::single_query(&g, 6, seed).unwrap();
            assert!(bruteforce::contains(&q, &g), "grown query must embed in its source");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = source();
        let a = Workloads::single_query(&g, 8, 7).unwrap();
        let b = Workloads::single_query(&g, 8, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_large_queries_return_none() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        assert!(Workloads::single_query(&g, 5, 1).is_none());
        assert!(Workloads::single_query(&graph_from_parts(&[], &[]), 1, 1).is_none());
    }

    #[test]
    fn exact_component_size_query_possible() {
        // Component has exactly 3 edges: a triangle.
        let g = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)]);
        let q = Workloads::single_query(&g, 3, 9).unwrap();
        assert_eq!(q.edge_count(), 3);
        assert_eq!(q.node_count(), 3);
    }

    #[test]
    fn workload_counts() {
        let g = source();
        let w = Workloads::nfv_workload(&g, 8, 10, 5);
        assert_eq!(w.len(), 10);
        let db = vec![source(), source()];
        let fw = Workloads::ftv_workload(&db, 8, 10, 5);
        assert_eq!(fw.len(), 10);
        for (gid, q) in &fw {
            assert!(*gid < 2);
            assert!(bruteforce::contains(q, &db[*gid]));
        }
    }

    #[test]
    fn cycle_edges_can_be_included() {
        // On a dense source, some generated query should contain a cycle
        // (frontier includes edges between already-chosen nodes).
        let g = source();
        let found_cycle = (0..30).any(|seed| {
            let q = Workloads::single_query(&g, 10, seed).unwrap();
            q.edge_count() >= q.node_count() // cyclomatic number > 0
        });
        assert!(found_cycle, "no generated query ever closed a cycle");
    }

    #[test]
    fn paper_size_constants() {
        assert_eq!(Workloads::NFV_SIZES, [10, 16, 20, 24, 32]);
        assert_eq!(Workloads::PPI_SIZES, [16, 20, 24, 32]);
        assert_eq!(Workloads::SYNTHETIC_SIZES, [24, 32, 40]);
    }
}
