//! Property tests for the Ψ core: race answers equal solo answers, the
//! winner is always conclusive, the predictor never panics on arbitrary
//! feature mixes, and live-graph serving (delta overlays, epoch pins,
//! compaction) answers exactly like a from-scratch build of the mutated
//! graph.

use proptest::prelude::*;
use psi_core::predictor::{QueryFeatures, VariantPredictor};
use psi_core::{GraphUpdate, PsiConfig, PsiRunner, RaceBudget, UpdateOp, Variant};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::{Graph, LabelStats};
use psi_matchers::{bruteforce, Algorithm, SearchBudget};
use psi_rewrite::Rewriting;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let target = random_connected_graph(16, 30, &labels, &mut rng);
    let query = random_connected_graph(4, 5, &labels, &mut rng);
    (query, target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The race's decision equals brute-force ground truth, for every
    /// variant-set shape (multi-algorithm, multi-rewriting, mixed).
    #[test]
    fn prop_race_decision_matches_ground_truth(seed in 0u64..20_000, shape in 0usize..3) {
        let (query, target) = pair(seed);
        let truth = bruteforce::contains(&query, &target);
        let config = match shape {
            0 => PsiConfig::gql_spa_orig(),
            1 => PsiConfig::rewritings(
                Algorithm::QuickSi,
                [Rewriting::Orig, Rewriting::Ilf, Rewriting::Dnd],
            ),
            _ => PsiConfig::new(vec![
                Variant::new(Algorithm::Vf2, Rewriting::Ind),
                Variant::new(Algorithm::Ullmann, Rewriting::IlfDnd),
                Variant::new(Algorithm::SPath, Rewriting::Random(seed)),
            ]),
        };
        let runner = PsiRunner::new(Arc::new(target), config);
        let outcome = runner.race(&query, RaceBudget::decision());
        prop_assert!(outcome.is_conclusive(), "tiny inputs must conclude");
        prop_assert_eq!(outcome.found(), truth);
    }

    /// Race match counts equal solo match counts under a shared cap.
    #[test]
    fn prop_race_count_matches_solo(seed in 0u64..20_000, cap in 1usize..30) {
        let (query, target) = pair(seed);
        let runner = PsiRunner::new(Arc::new(target), PsiConfig::gql_spa_orig());
        let solo = runner.run_variant(
            &query,
            Variant::new(Algorithm::GraphQl, Rewriting::Orig),
            &SearchBudget::with_max_matches(cap),
        );
        let outcome = runner.race(&query, RaceBudget::with_max_matches(cap));
        prop_assert_eq!(outcome.num_matches(), solo.num_matches);
    }

    /// The winner's stop reason is always conclusive; losers are only ever
    /// cancelled/interrupted, never silently dropped.
    #[test]
    fn prop_winner_is_conclusive(seed in 0u64..20_000) {
        let (query, target) = pair(seed);
        let runner = PsiRunner::new(
            Arc::new(target),
            PsiConfig::rewritings(Algorithm::Vf2, [Rewriting::Orig, Rewriting::Ilf, Rewriting::Ind]),
        );
        let outcome = runner.race(&query, RaceBudget::matching());
        let w = outcome.winner().expect("tiny inputs conclude");
        prop_assert!(w.result.stop.is_conclusive());
        prop_assert_eq!(outcome.per_variant.len(), 3);
        prop_assert!(outcome.elapsed <= outcome.join_elapsed);
    }

    /// Predictor total function: any combination of observations and probes
    /// yields a prediction within the observed variant range.
    #[test]
    fn prop_predictor_total(
        winners in prop::collection::vec(0usize..5, 1..30),
        k in 1usize..7,
        probe_seed in 0u64..1000,
    ) {
        let (query, target) = pair(probe_seed);
        let stats = LabelStats::from_graph(&target);
        let f = QueryFeatures::extract(&query, &stats);
        let mut p = VariantPredictor::new(k);
        for (i, &w) in winners.iter().enumerate() {
            let (q2, t2) = pair(i as u64);
            let s2 = LabelStats::from_graph(&t2);
            p.observe(QueryFeatures::extract(&q2, &s2), w);
        }
        let pred = p.predict(&f).expect("trained predictor answers");
        prop_assert!(winners.contains(&pred), "prediction must be an observed variant");
    }

    /// Overlay-vs-materialized equivalence: a runner serving through a
    /// delta overlay (random adds *and* removals, never compacted)
    /// answers exactly like a fresh runner built from the materialized
    /// mutated graph — same decision, same match count under a cap.
    #[test]
    fn prop_overlay_matches_materialized(seed in 0u64..20_000, cap in 1usize..30) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD1F7);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let target = random_connected_graph(16, 30, &labels, &mut rng);
        let n = target.node_count() as u32;
        let live = PsiRunner::new(Arc::new(target), PsiConfig::gql_spa_orig());

        // A random mutation stream, validated by attempt-and-keep: an
        // op the current view rejects (duplicate edge, unknown node,
        // removed endpoint) is simply skipped, so every kept op is a
        // *valid* mutation of the evolving view.
        use rand::Rng;
        let mut added_nodes = 0u32;
        for _ in 0..24 {
            let hi = n + added_nodes;
            let op = match rng.random_range(0..4u8) {
                0 => { added_nodes += 1; UpdateOp::AddNode { label: rng.random_range(0..3) } }
                1 => UpdateOp::AddEdge {
                    u: rng.random_range(0..hi),
                    v: rng.random_range(0..hi),
                    label: None,
                },
                2 => UpdateOp::RemoveEdge {
                    u: rng.random_range(0..hi),
                    v: rng.random_range(0..hi),
                },
                _ => UpdateOp::RemoveNode { node: rng.random_range(0..hi) },
            };
            let _ = live.apply_update(&GraphUpdate::new(vec![op]));
        }
        prop_assert!(live.pending_ops() > 0, "some ops must have applied");
        prop_assert_eq!(live.epoch(), 0, "never compacted: pure overlay serving");

        let flat = PsiRunner::new(live.materialized(), PsiConfig::gql_spa_orig());
        let query = random_connected_graph(4, 5, &labels, &mut rng);
        let via_overlay = live.race(&query, RaceBudget::with_max_matches(cap));
        let via_flat = flat.race(&query, RaceBudget::with_max_matches(cap));
        prop_assert_eq!(via_overlay.found(), via_flat.found());
        prop_assert_eq!(via_overlay.num_matches(), via_flat.num_matches());
    }

    /// Epoch pinning under concurrent mutation: a race launched at
    /// epoch N returns embeddings valid against epoch N's view even as
    /// additive updates and compactions land mid-race. Additive updates
    /// keep every epoch's view a subgraph of the final one, so validity
    /// is checked against the final materialized graph — and the
    /// decision itself is monotone (a query embedding at launch still
    /// embeds after every swap).
    #[test]
    fn prop_pinned_race_survives_mid_race_compaction(seed in 0u64..20_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE9);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        let target = random_connected_graph(24, 50, &labels, &mut rng);
        let n = target.node_count() as u32;
        let query = random_connected_graph(4, 5, &labels, &mut rng);
        use psi_matchers::bruteforce;
        let truth = bruteforce::contains(&query, &target);
        let live = PsiRunner::new(Arc::new(target), PsiConfig::gql_spa_orig());

        let outcome = std::thread::scope(|scope| {
            let racer = scope.spawn(|| live.race(&query, RaceBudget::matching()));
            // Mutations + epoch swaps racing the query: fresh nodes
            // wired into existing ones, compacted every few batches.
            for i in 0..12u32 {
                let new = n + i;
                live.apply_update(&GraphUpdate::new(vec![
                    UpdateOp::AddNode { label: i % 3 },
                    UpdateOp::AddEdge { u: i % n, v: new, label: None },
                ]))
                .expect("additive batches always apply");
                if i % 3 == 2 {
                    live.compact();
                }
            }
            racer.join().expect("racing thread")
        });
        let _ = live.compact();
        prop_assert!(live.epoch() >= 1, "swaps must have landed");

        // The race is conclusive on these tiny inputs and must agree
        // with ground truth at its pinned epoch; additive mutations
        // never flip an existing embedding, so truth-at-launch equals
        // truth at every later epoch the race could have pinned.
        prop_assert!(outcome.is_conclusive());
        if truth {
            prop_assert!(outcome.found());
        }
        // Every returned embedding must be valid against the final
        // view: labels match and every query edge maps to a live edge.
        let final_view = live.materialized();
        let winner = outcome.winner();
        if let Some(w) = winner {
            for emb in &w.result.embeddings {
                prop_assert_eq!(emb.len(), query.node_count());
                for (q, &t) in emb.iter().enumerate() {
                    prop_assert_eq!(query.label(q as u32), final_view.label(t));
                }
                for qu in 0..query.node_count() as u32 {
                    for &qv in query.neighbors(qu) {
                        if qu < qv {
                            prop_assert!(
                                final_view.has_edge(emb[qu as usize], emb[qv as usize]),
                                "query edge ({qu},{qv}) must map to a live edge"
                            );
                        }
                    }
                }
            }
        }
    }
}
