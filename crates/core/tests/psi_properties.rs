//! Property tests for the Ψ core: race answers equal solo answers, the
//! winner is always conclusive, and the predictor never panics on
//! arbitrary feature mixes.

use proptest::prelude::*;
use psi_core::predictor::{QueryFeatures, VariantPredictor};
use psi_core::{PsiConfig, PsiRunner, RaceBudget, Variant};
use psi_graph::generate::{random_connected_graph, LabelDist};
use psi_graph::{Graph, LabelStats};
use psi_matchers::{bruteforce, Algorithm, SearchBudget};
use psi_rewrite::Rewriting;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn pair(seed: u64) -> (Graph, Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
    let target = random_connected_graph(16, 30, &labels, &mut rng);
    let query = random_connected_graph(4, 5, &labels, &mut rng);
    (query, target)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The race's decision equals brute-force ground truth, for every
    /// variant-set shape (multi-algorithm, multi-rewriting, mixed).
    #[test]
    fn prop_race_decision_matches_ground_truth(seed in 0u64..20_000, shape in 0usize..3) {
        let (query, target) = pair(seed);
        let truth = bruteforce::contains(&query, &target);
        let config = match shape {
            0 => PsiConfig::gql_spa_orig(),
            1 => PsiConfig::rewritings(
                Algorithm::QuickSi,
                [Rewriting::Orig, Rewriting::Ilf, Rewriting::Dnd],
            ),
            _ => PsiConfig::new(vec![
                Variant::new(Algorithm::Vf2, Rewriting::Ind),
                Variant::new(Algorithm::Ullmann, Rewriting::IlfDnd),
                Variant::new(Algorithm::SPath, Rewriting::Random(seed)),
            ]),
        };
        let runner = PsiRunner::new(Arc::new(target), config);
        let outcome = runner.race(&query, RaceBudget::decision());
        prop_assert!(outcome.is_conclusive(), "tiny inputs must conclude");
        prop_assert_eq!(outcome.found(), truth);
    }

    /// Race match counts equal solo match counts under a shared cap.
    #[test]
    fn prop_race_count_matches_solo(seed in 0u64..20_000, cap in 1usize..30) {
        let (query, target) = pair(seed);
        let runner = PsiRunner::new(Arc::new(target), PsiConfig::gql_spa_orig());
        let solo = runner.run_variant(
            &query,
            Variant::new(Algorithm::GraphQl, Rewriting::Orig),
            &SearchBudget::with_max_matches(cap),
        );
        let outcome = runner.race(&query, RaceBudget::with_max_matches(cap));
        prop_assert_eq!(outcome.num_matches(), solo.num_matches);
    }

    /// The winner's stop reason is always conclusive; losers are only ever
    /// cancelled/interrupted, never silently dropped.
    #[test]
    fn prop_winner_is_conclusive(seed in 0u64..20_000) {
        let (query, target) = pair(seed);
        let runner = PsiRunner::new(
            Arc::new(target),
            PsiConfig::rewritings(Algorithm::Vf2, [Rewriting::Orig, Rewriting::Ilf, Rewriting::Ind]),
        );
        let outcome = runner.race(&query, RaceBudget::matching());
        let w = outcome.winner().expect("tiny inputs conclude");
        prop_assert!(w.result.stop.is_conclusive());
        prop_assert_eq!(outcome.per_variant.len(), 3);
        prop_assert!(outcome.elapsed <= outcome.join_elapsed);
    }

    /// Predictor total function: any combination of observations and probes
    /// yields a prediction within the observed variant range.
    #[test]
    fn prop_predictor_total(
        winners in prop::collection::vec(0usize..5, 1..30),
        k in 1usize..7,
        probe_seed in 0u64..1000,
    ) {
        let (query, target) = pair(probe_seed);
        let stats = LabelStats::from_graph(&target);
        let f = QueryFeatures::extract(&query, &stats);
        let mut p = VariantPredictor::new(k);
        for (i, &w) in winners.iter().enumerate() {
            let (q2, t2) = pair(i as u64);
            let s2 = LabelStats::from_graph(&t2);
            p.observe(QueryFeatures::extract(&q2, &s2), w);
        }
        let pred = p.predict(&f).expect("trained predictor answers");
        prop_assert!(winners.contains(&pred), "prediction must be an observed variant");
    }
}
