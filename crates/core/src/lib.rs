//! # psi-core — the Ψ-framework (§8 of the paper)
//!
//! > "The central idea is to employ parallelism in a novel way, whereby
//! > parallel matching/decision attempts are initiated, each using a query
//! > rewriting and/or an alternate algorithm."
//!
//! Instead of inventing a new sub-iso algorithm, Ψ races *variants* of the
//! same query — each variant a (algorithm, rewriting) pair — on parallel
//! threads, keeps the first finisher's answer, and cancels the rest. Because
//! stragglers are both rewriting-specific (Observation 2/4) and
//! algorithm-specific (Observation 5), some variant almost always finishes
//! quickly even when the original query is a straggler.
//!
//! * [`mod@race`] — the generic racing engine: spawn one OS thread per entrant,
//!   cooperative cancellation through [`psi_matchers::CancelToken`], winner
//!   bookkeeping and per-variant wall times.
//! * [`nfv`] — [`PsiRunner`]: Ψ over the NFV matchers (GraphQL, sPath,
//!   QuickSI, ...) on a single stored graph, §8.2.
//! * [`ftv`] — [`PsiFtvRunner`]: Ψ inside the verification stage of the FTV
//!   systems (Grapes/GGSX), racing rewritings per candidate graph, §8.1.
//! * [`predictor`] — the paper's stated future work (§9): predict, per
//!   query, which variant to run instead of racing them all.
//!
//! ```
//! use psi_core::{PsiConfig, PsiRunner, RaceBudget};
//! use psi_graph::graph::graph_from_parts;
//!
//! let stored = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]);
//! let psi = PsiRunner::nfv_default(&stored); // GQL ∥ SPA on the original query
//! let query = graph_from_parts(&[0, 1], &[(0, 1)]);
//! let outcome = psi.race(&query, RaceBudget::decision());
//! assert!(outcome.found());
//! assert!(outcome.winner().is_some());
//! ```

pub mod config;
pub mod ftv;
pub mod nfv;
pub mod predictor;
pub mod race;

pub use config::{PsiConfig, Variant};
pub use ftv::PsiFtvRunner;
pub use nfv::{Compaction, PreparedEntrant, PsiRunner};
pub use psi_delta::{
    DeltaOverlay, GraphUpdate, GraphView, PinnedView, UpdateError, UpdateOp, TOMBSTONE_LABEL,
};
pub use psi_matchers::Algorithm;
pub use psi_rewrite::Rewriting;
pub use race::{race, PsiOutcome, RaceBudget, RaceObserver, RaceState, VariantResult};
