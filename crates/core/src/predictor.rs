//! Per-query variant prediction — the paper's stated future work (§9):
//!
//! > "Undoubtedly, it would be preferable to choose the right isomorphic
//! > query instance and/or algorithm to use to minimize the query execution
//! > time. ... Using machine learning models to predict which version of our
//! > framework (algorithms, rewritings) to employ per query is of high
//! > interest."
//!
//! This module implements the simplest useful such model: a k-nearest-
//! neighbour classifier over cheap structural query features. Train it
//! online by feeding each race's winner; once it has seen enough queries it
//! can run a *single* variant instead of a whole race, trading the race's
//! worst-case insurance for an `n×` reduction in CPU work. The
//! `predictor_ablation` bench quantifies that trade-off.

use psi_graph::{Graph, LabelStats};

/// Cheap structural features of a query, normalized to comparable scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryFeatures {
    /// Number of query edges (the paper's query "size").
    pub edges: f64,
    /// Number of query nodes.
    pub nodes: f64,
    /// Distinct labels / nodes — label diversity in [0, 1].
    pub label_diversity: f64,
    /// Stddev of query node degrees (path-like queries ≈ 0).
    pub degree_spread: f64,
    /// Rarity of the query's rarest label in the stored graph, as
    /// `1 / (1 + min frequency)` in [0, 1].
    pub rarest_label: f64,
    /// Query density `2m / n(n-1)`.
    pub density: f64,
}

impl QueryFeatures {
    /// Extracts features for `query` against the stored graph's label
    /// statistics.
    pub fn extract(query: &Graph, stats: &LabelStats) -> Self {
        let n = query.node_count() as f64;
        let m = query.edge_count() as f64;
        let mut labels: Vec<u32> = query.labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        let degrees: Vec<f64> = query.nodes().map(|v| query.degree(v) as f64).collect();
        let mean_deg = if n > 0.0 { degrees.iter().sum::<f64>() / n } else { 0.0 };
        let degree_spread = if n > 0.0 {
            (degrees.iter().map(|d| (d - mean_deg).powi(2)).sum::<f64>() / n).sqrt()
        } else {
            0.0
        };
        let min_freq = labels.iter().map(|&l| stats.frequency(l)).min().unwrap_or(0) as f64;
        Self {
            edges: m,
            nodes: n,
            label_diversity: if n > 0.0 { labels.len() as f64 / n } else { 0.0 },
            degree_spread,
            rarest_label: 1.0 / (1.0 + min_freq),
            density: query.density(),
        }
    }

    fn as_array(&self) -> [f64; 6] {
        [
            self.edges,
            self.nodes,
            self.label_diversity,
            self.degree_spread,
            self.rarest_label,
            self.density,
        ]
    }

    /// Euclidean distance in (crudely) normalized feature space: counts are
    /// log-scaled so a 32-edge query isn't infinitely far from a 24-edge one.
    pub fn distance(&self, other: &Self) -> f64 {
        let a = self.as_array();
        let b = other.as_array();
        let mut d2 = 0.0;
        for i in 0..a.len() {
            let (x, y) = if i < 2 { ((a[i] + 1.0).ln(), (b[i] + 1.0).ln()) } else { (a[i], b[i]) };
            d2 += (x - y) * (x - y);
        }
        d2.sqrt()
    }
}

/// A k-NN predictor from query features to a variant index (the index into
/// the [`crate::PsiConfig`]'s variant list used at training time).
///
/// The training set can be bounded ([`VariantPredictor::with_window`]): a
/// long-lived serving engine observes every race, and an unbounded sample
/// set would grow forever while making each prediction's nearest-neighbour
/// scan slower. The window keeps the most recent `window` observations
/// (ring overwrite), which also lets the predictor track workload drift.
#[derive(Debug, Clone)]
pub struct VariantPredictor {
    samples: Vec<(QueryFeatures, usize)>,
    /// Next ring slot to overwrite once `samples` reaches `window`.
    next: usize,
    /// Total observations ever recorded (can exceed `samples.len()`).
    observed: usize,
    k: usize,
    window: usize,
}

impl VariantPredictor {
    /// Creates an empty predictor voting over `k` nearest neighbours, with
    /// an unbounded training set.
    pub fn new(k: usize) -> Self {
        Self::with_window(k, usize::MAX)
    }

    /// Creates an empty predictor voting over `k` nearest neighbours,
    /// retaining only the most recent `window` observations.
    pub fn with_window(k: usize, window: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(window >= 1, "window must be positive");
        Self { samples: Vec::new(), next: 0, observed: 0, k, window }
    }

    /// Records that `winner` (a variant index) won the race for a query
    /// with these features.
    pub fn observe(&mut self, features: QueryFeatures, winner: usize) {
        self.observed += 1;
        if self.samples.len() < self.window {
            self.samples.push((features, winner));
        } else {
            self.samples[self.next] = (features, winner);
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Total observations recorded so far (including any that have been
    /// displaced from a bounded window).
    pub fn observations(&self) -> usize {
        self.observed
    }

    /// Predicts the variant index for a new query: majority vote of the k
    /// nearest training samples (ties broken toward the nearer sample).
    /// Returns `None` until at least one observation exists.
    pub fn predict(&self, features: &QueryFeatures) -> Option<usize> {
        self.predict_with_confidence(features).map(|(v, _)| v)
    }

    /// Like [`predict`](Self::predict), but also reports the vote share of
    /// the winning variant among the consulted neighbours, in `(0, 1]`. An
    /// engine can use this to decide between a single-variant fast path
    /// (confident prediction) and a full race (inconclusive vote).
    pub fn predict_with_confidence(&self, features: &QueryFeatures) -> Option<(usize, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut by_dist: Vec<(f64, usize)> =
            self.samples.iter().map(|(f, w)| (features.distance(f), *w)).collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        by_dist.truncate(self.k);
        // Majority vote; first (nearest) occurrence wins ties.
        let mut counts: Vec<(usize, usize, usize)> = Vec::new(); // (variant, votes, first_pos)
        for (pos, &(_, w)) in by_dist.iter().enumerate() {
            match counts.iter_mut().find(|(v, _, _)| *v == w) {
                Some(c) => c.1 += 1,
                None => counts.push((w, 1, pos)),
            }
        }
        counts.sort_by_key(|&(_, votes, first)| (std::cmp::Reverse(votes), first));
        let consulted = by_dist.len();
        counts.first().map(|&(v, votes, _)| (v, votes as f64 / consulted as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    fn stats() -> LabelStats {
        LabelStats::from_graph(&graph_from_parts(&[0, 0, 0, 1], &[(0, 1), (1, 2), (2, 3)]))
    }

    fn path_query() -> QueryFeatures {
        QueryFeatures::extract(&graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2)]), &stats())
    }

    fn star_query() -> QueryFeatures {
        QueryFeatures::extract(
            &graph_from_parts(&[1, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
            &stats(),
        )
    }

    #[test]
    fn features_reflect_shape() {
        let p = path_query();
        let s = star_query();
        assert!(p.degree_spread < s.degree_spread, "stars spread degrees more than paths");
        assert!(s.rarest_label > 0.0);
        assert_eq!(p.edges, 2.0);
        assert_eq!(s.edges, 3.0);
    }

    #[test]
    fn rare_label_feature() {
        let st = stats();
        let common = QueryFeatures::extract(&graph_from_parts(&[0], &[]), &st);
        let rare = QueryFeatures::extract(&graph_from_parts(&[1], &[]), &st);
        assert!(rare.rarest_label > common.rarest_label);
    }

    #[test]
    fn predictor_returns_none_untrained() {
        let p = VariantPredictor::new(3);
        assert_eq!(p.predict(&path_query()), None);
        assert_eq!(p.observations(), 0);
    }

    #[test]
    fn predictor_learns_shape_separation() {
        let mut p = VariantPredictor::new(1);
        // Paths win with variant 0, stars with variant 1.
        for _ in 0..3 {
            p.observe(path_query(), 0);
            p.observe(star_query(), 1);
        }
        assert_eq!(p.predict(&path_query()), Some(0));
        assert_eq!(p.predict(&star_query()), Some(1));
    }

    #[test]
    fn bounded_window_overwrites_oldest() {
        let mut p = VariantPredictor::with_window(1, 4);
        for _ in 0..4 {
            p.observe(path_query(), 0);
        }
        // Ring full of variant 0; six more star observations displace them.
        for _ in 0..6 {
            p.observe(star_query(), 1);
        }
        assert_eq!(p.observations(), 10, "total observation count keeps growing");
        assert_eq!(p.predict(&path_query()), Some(1), "old samples displaced from the window");
        assert_eq!(p.predict(&star_query()), Some(1));
    }

    #[test]
    fn majority_vote_with_k3() {
        let mut p = VariantPredictor::new(3);
        p.observe(path_query(), 0);
        p.observe(path_query(), 0);
        p.observe(path_query(), 1);
        assert_eq!(p.predict(&path_query()), Some(0));
    }

    #[test]
    fn empty_query_features_are_finite() {
        let f = QueryFeatures::extract(&graph_from_parts(&[], &[]), &stats());
        assert!(f.distance(&f) == 0.0);
        assert!(f.as_array().iter().all(|x| x.is_finite()));
    }
}
