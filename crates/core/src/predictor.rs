//! Per-query variant prediction — the paper's stated future work (§9):
//!
//! > "Undoubtedly, it would be preferable to choose the right isomorphic
//! > query instance and/or algorithm to use to minimize the query execution
//! > time. ... Using machine learning models to predict which version of our
//! > framework (algorithms, rewritings) to employ per query is of high
//! > interest."
//!
//! This module implements the simplest useful such model: a k-nearest-
//! neighbour classifier over cheap structural query features. Train it
//! online by feeding each race's winner; once it has seen enough queries it
//! can run a *single* variant instead of a whole race, trading the race's
//! worst-case insurance for an `n×` reduction in CPU work. The
//! `predictor_ablation` bench quantifies that trade-off.

use psi_graph::{Graph, LabelStats};

/// Cheap structural features of a query, normalized to comparable scales.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryFeatures {
    /// Number of query edges (the paper's query "size").
    pub edges: f64,
    /// Number of query nodes.
    pub nodes: f64,
    /// Distinct labels / nodes — label diversity in [0, 1].
    pub label_diversity: f64,
    /// Stddev of query node degrees (path-like queries ≈ 0).
    pub degree_spread: f64,
    /// Rarity of the query's rarest label in the stored graph, as
    /// `1 / (1 + min frequency)` in [0, 1].
    pub rarest_label: f64,
    /// Query density `2m / n(n-1)`.
    pub density: f64,
}

impl QueryFeatures {
    /// Extracts features for `query` against the stored graph's label
    /// statistics.
    pub fn extract(query: &Graph, stats: &LabelStats) -> Self {
        let n = query.node_count() as f64;
        let m = query.edge_count() as f64;
        let mut labels: Vec<u32> = query.labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        let degrees: Vec<f64> = query.nodes().map(|v| query.degree(v) as f64).collect();
        let mean_deg = if n > 0.0 { degrees.iter().sum::<f64>() / n } else { 0.0 };
        let degree_spread = if n > 0.0 {
            (degrees.iter().map(|d| (d - mean_deg).powi(2)).sum::<f64>() / n).sqrt()
        } else {
            0.0
        };
        let min_freq = labels.iter().map(|&l| stats.frequency(l)).min().unwrap_or(0) as f64;
        Self {
            edges: m,
            nodes: n,
            label_diversity: if n > 0.0 { labels.len() as f64 / n } else { 0.0 },
            degree_spread,
            rarest_label: 1.0 / (1.0 + min_freq),
            density: query.density(),
        }
    }

    fn as_array(&self) -> [f64; 6] {
        self.to_array()
    }

    /// The features as a fixed-order array — the persistence layer's
    /// serialized form. Order: edges, nodes, label_diversity,
    /// degree_spread, rarest_label, density.
    pub fn to_array(&self) -> [f64; 6] {
        [
            self.edges,
            self.nodes,
            self.label_diversity,
            self.degree_spread,
            self.rarest_label,
            self.density,
        ]
    }

    /// Inverse of [`QueryFeatures::to_array`].
    pub fn from_array(a: [f64; 6]) -> Self {
        Self {
            edges: a[0],
            nodes: a[1],
            label_diversity: a[2],
            degree_spread: a[3],
            rarest_label: a[4],
            density: a[5],
        }
    }

    /// Euclidean distance in (crudely) normalized feature space: counts are
    /// log-scaled so a 32-edge query isn't infinitely far from a 24-edge one.
    pub fn distance(&self, other: &Self) -> f64 {
        let a = self.as_array();
        let b = other.as_array();
        let mut d2 = 0.0;
        for i in 0..a.len() {
            let (x, y) = if i < 2 { ((a[i] + 1.0).ln(), (b[i] + 1.0).ln()) } else { (a[i], b[i]) };
            d2 += (x - y) * (x - y);
        }
        d2.sqrt()
    }
}

/// Lifetime win/loss/timeout record of one racing entrant, accumulated
/// across every observed race. Unlike the feature samples, tallies are
/// never windowed: they summarize an entrant's whole history and break
/// ranking ties where the feature neighbourhood is silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EntrantTally {
    /// Races this entrant won (first conclusive finisher).
    pub wins: u64,
    /// Races another entrant concluded first (including cooperative
    /// cancellation after the winner claimed).
    pub losses: u64,
    /// Races this entrant timed out of without a conclusive result.
    pub timeouts: u64,
}

impl EntrantTally {
    /// Races this entrant participated in.
    pub fn races(&self) -> u64 {
        self.wins + self.losses + self.timeouts
    }

    /// Win fraction in `[0, 1]`; 0 when the entrant never raced.
    pub fn win_rate(&self) -> f64 {
        let races = self.races();
        if races == 0 {
            0.0
        } else {
            self.wins as f64 / races as f64
        }
    }
}

/// A k-NN predictor from query features to a variant index (the index into
/// the [`crate::PsiConfig`]'s variant list used at training time).
///
/// The training set can be bounded ([`VariantPredictor::with_window`]): a
/// long-lived serving engine observes every race, and an unbounded sample
/// set would grow forever while making each prediction's nearest-neighbour
/// scan slower. The window keeps the most recent `window` observations
/// (ring overwrite), which also lets the predictor track workload drift.
///
/// Besides the single-winner vote ([`predict_with_confidence`]
/// (Self::predict_with_confidence)), the predictor can [`rank`](Self::rank)
/// the *full* entrant field for a query — the input to adaptive top-K
/// racing, where only the leading entrants launch and the rest are held
/// back as an escalation reserve.
#[derive(Debug, Clone)]
pub struct VariantPredictor {
    samples: Vec<(QueryFeatures, usize)>,
    /// Next ring slot to overwrite once `samples` reaches `window`.
    next: usize,
    /// Total observations ever recorded (can exceed `samples.len()`).
    observed: usize,
    /// Per-entrant lifetime tallies, indexed by variant index.
    tallies: Vec<EntrantTally>,
    /// Graph-epoch stamp of the learned state: bumped when the stored
    /// graph the samples were observed against is compacted into a new
    /// epoch. Ranking quality degrades gracefully across epochs (the
    /// evidence is advisory, never a soundness input), so the samples
    /// are kept — the stamp lets observers tell how stale they are.
    version: u64,
    k: usize,
    window: usize,
}

impl VariantPredictor {
    /// Creates an empty predictor voting over `k` nearest neighbours, with
    /// an unbounded training set.
    pub fn new(k: usize) -> Self {
        Self::with_window(k, usize::MAX)
    }

    /// Creates an empty predictor voting over `k` nearest neighbours,
    /// retaining only the most recent `window` observations.
    pub fn with_window(k: usize, window: usize) -> Self {
        assert!(k >= 1, "k must be positive");
        assert!(window >= 1, "window must be positive");
        Self {
            samples: Vec::new(),
            next: 0,
            observed: 0,
            tallies: Vec::new(),
            version: 0,
            k,
            window,
        }
    }

    /// The learned state's graph-epoch stamp: how many times the stored
    /// graph has been compacted under this predictor. 0 for a predictor
    /// that has only ever seen one graph epoch.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Stamps the learned state as belonging to a newer graph epoch —
    /// called when a compaction swaps the stored graph out from under
    /// the training set. Samples and tallies survive (their evidence is
    /// advisory, not answer-bearing: a stale ranking costs latency,
    /// never correctness), but the stamp records that they were trained
    /// against earlier epochs.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Records that `winner` (a variant index) won the race for a query
    /// with these features. Also credits the winner's lifetime tally.
    pub fn observe(&mut self, features: QueryFeatures, winner: usize) {
        self.observed += 1;
        self.tally_mut(winner).wins += 1;
        if self.samples.len() < self.window {
            self.samples.push((features, winner));
        } else {
            self.samples[self.next] = (features, winner);
            self.next = (self.next + 1) % self.window;
        }
    }

    /// Records that entrant `idx` raced and lost (another entrant
    /// concluded first, or this one was cancelled).
    pub fn record_loss(&mut self, idx: usize) {
        self.tally_mut(idx).losses += 1;
    }

    /// Records that entrant `idx` timed out without a conclusive result.
    pub fn record_timeout(&mut self, idx: usize) {
        self.tally_mut(idx).timeouts += 1;
    }

    /// The lifetime tally of entrant `idx` (zeroed if it never raced).
    pub fn tally(&self, idx: usize) -> EntrantTally {
        self.tallies.get(idx).copied().unwrap_or_default()
    }

    /// Lifetime tallies of every entrant observed so far, by variant index.
    pub fn tallies(&self) -> &[EntrantTally] {
        &self.tallies
    }

    fn tally_mut(&mut self, idx: usize) -> &mut EntrantTally {
        if self.tallies.len() <= idx {
            self.tallies.resize(idx + 1, EntrantTally::default());
        }
        &mut self.tallies[idx]
    }

    /// Total observations recorded so far (including any that have been
    /// displaced from a bounded window).
    pub fn observations(&self) -> usize {
        self.observed
    }

    /// The retained training samples in observation order, **oldest
    /// first** — the order the persistence layer serializes them in, so
    /// that [`restore`](Self::restore) followed by further `observe`
    /// calls displaces the same samples the original predictor would
    /// have displaced.
    pub fn samples(&self) -> Vec<(QueryFeatures, usize)> {
        if self.samples.len() < self.window {
            self.samples.clone()
        } else {
            // Ring full: `next` is the oldest slot.
            let mut out = Vec::with_capacity(self.samples.len());
            out.extend_from_slice(&self.samples[self.next..]);
            out.extend_from_slice(&self.samples[..self.next]);
            out
        }
    }

    /// Restores persisted learned state into this predictor (built fresh
    /// with the serving `k`/`window`): training samples oldest-first (as
    /// exported by [`samples`](Self::samples) or replayed from a WAL),
    /// lifetime tallies by variant index, and the total observation
    /// count. Samples beyond the configured window keep only the most
    /// recent `window` of them, matching what live observation would
    /// have retained. Tallies are installed verbatim — `observed` is an
    /// independent counter, so it is restored explicitly rather than
    /// re-derived.
    pub fn restore(
        &mut self,
        samples: Vec<(QueryFeatures, usize)>,
        tallies: Vec<EntrantTally>,
        observed: usize,
    ) {
        let skip = samples.len().saturating_sub(self.window);
        self.samples = samples[skip..].to_vec();
        self.next =
            if self.samples.len() < self.window { 0 } else { self.samples.len() % self.window };
        self.tallies = tallies;
        self.observed = observed;
    }

    /// Predicts the variant index for a new query: majority vote of the k
    /// nearest training samples (ties broken toward the nearer sample).
    /// Returns `None` until at least one observation exists.
    pub fn predict(&self, features: &QueryFeatures) -> Option<usize> {
        self.predict_with_confidence(features).map(|(v, _)| v)
    }

    /// Like [`predict`](Self::predict), but also reports the vote share of
    /// the winning variant among the consulted neighbours, in `(0, 1]`. An
    /// engine can use this to decide between a single-variant fast path
    /// (confident prediction) and a full race (inconclusive vote).
    pub fn predict_with_confidence(&self, features: &QueryFeatures) -> Option<(usize, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let by_dist = self.nearest(features);
        // Majority vote; first (nearest) occurrence wins ties.
        let mut counts: Vec<(usize, usize, usize)> = Vec::new(); // (variant, votes, first_pos)
        for (pos, &(_, w)) in by_dist.iter().enumerate() {
            match counts.iter_mut().find(|(v, _, _)| *v == w) {
                Some(c) => c.1 += 1,
                None => counts.push((w, 1, pos)),
            }
        }
        counts.sort_by_key(|&(_, votes, first)| (std::cmp::Reverse(votes), first));
        let consulted = by_dist.len();
        counts.first().map(|&(v, votes, _)| (v, votes as f64 / consulted as f64))
    }

    /// Ranks the full entrant field `0..variants` for a query, best first.
    ///
    /// Variants are ordered by their vote count among the k nearest
    /// training samples (descending), then by lifetime win rate from the
    /// per-entrant tallies, then by fewest timeouts, then by variant
    /// index. The ranking degrades gracefully: an untrained predictor
    /// falls through to tallies and finally configuration order, so
    /// callers may consume it unconditionally.
    pub fn rank(&self, features: &QueryFeatures, variants: usize) -> Vec<usize> {
        self.rank_with_vote_share(features, variants).0
    }

    /// [`rank`](Self::rank) plus the leader's vote share among the
    /// consulted neighbours, in `[0, 1]` (0 when untrained). One
    /// nearest-neighbour scan serves both decisions an engine makes per
    /// query — whether the top choice is confident enough for the
    /// single-variant fast path, and which entrants form a top-K heat.
    pub fn rank_with_vote_share(
        &self,
        features: &QueryFeatures,
        variants: usize,
    ) -> (Vec<usize>, f64) {
        let mut votes = vec![0usize; variants];
        let mut consulted = 0usize;
        if !self.samples.is_empty() {
            for &(_, w) in &self.nearest(features) {
                consulted += 1;
                if w < variants {
                    votes[w] += 1;
                }
            }
        }
        let mut order: Vec<usize> = (0..variants).collect();
        order.sort_by(|&a, &b| {
            let (ta, tb) = (self.tally(a), self.tally(b));
            votes[b]
                .cmp(&votes[a])
                .then_with(|| tb.win_rate().partial_cmp(&ta.win_rate()).expect("rates are finite"))
                .then_with(|| ta.timeouts.cmp(&tb.timeouts))
                .then_with(|| a.cmp(&b))
        });
        let share = match order.first() {
            Some(&leader) if consulted > 0 => votes[leader] as f64 / consulted as f64,
            _ => 0.0,
        };
        (order, share)
    }

    /// The k nearest training samples to `features`, as
    /// `(distance, winner)` pairs ordered nearest first.
    fn nearest(&self, features: &QueryFeatures) -> Vec<(f64, usize)> {
        let mut by_dist: Vec<(f64, usize)> =
            self.samples.iter().map(|(f, w)| (features.distance(f), *w)).collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("distances are finite"));
        by_dist.truncate(self.k);
        by_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::graph::graph_from_parts;

    fn stats() -> LabelStats {
        LabelStats::from_graph(&graph_from_parts(&[0, 0, 0, 1], &[(0, 1), (1, 2), (2, 3)]))
    }

    fn path_query() -> QueryFeatures {
        QueryFeatures::extract(&graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 2)]), &stats())
    }

    fn star_query() -> QueryFeatures {
        QueryFeatures::extract(
            &graph_from_parts(&[1, 0, 0, 0], &[(0, 1), (0, 2), (0, 3)]),
            &stats(),
        )
    }

    #[test]
    fn features_reflect_shape() {
        let p = path_query();
        let s = star_query();
        assert!(p.degree_spread < s.degree_spread, "stars spread degrees more than paths");
        assert!(s.rarest_label > 0.0);
        assert_eq!(p.edges, 2.0);
        assert_eq!(s.edges, 3.0);
    }

    #[test]
    fn rare_label_feature() {
        let st = stats();
        let common = QueryFeatures::extract(&graph_from_parts(&[0], &[]), &st);
        let rare = QueryFeatures::extract(&graph_from_parts(&[1], &[]), &st);
        assert!(rare.rarest_label > common.rarest_label);
    }

    #[test]
    fn predictor_returns_none_untrained() {
        let p = VariantPredictor::new(3);
        assert_eq!(p.predict(&path_query()), None);
        assert_eq!(p.observations(), 0);
    }

    #[test]
    fn predictor_learns_shape_separation() {
        let mut p = VariantPredictor::new(1);
        // Paths win with variant 0, stars with variant 1.
        for _ in 0..3 {
            p.observe(path_query(), 0);
            p.observe(star_query(), 1);
        }
        assert_eq!(p.predict(&path_query()), Some(0));
        assert_eq!(p.predict(&star_query()), Some(1));
    }

    #[test]
    fn bounded_window_overwrites_oldest() {
        let mut p = VariantPredictor::with_window(1, 4);
        for _ in 0..4 {
            p.observe(path_query(), 0);
        }
        // Ring full of variant 0; six more star observations displace them.
        for _ in 0..6 {
            p.observe(star_query(), 1);
        }
        assert_eq!(p.observations(), 10, "total observation count keeps growing");
        assert_eq!(p.predict(&path_query()), Some(1), "old samples displaced from the window");
        assert_eq!(p.predict(&star_query()), Some(1));
    }

    #[test]
    fn majority_vote_with_k3() {
        let mut p = VariantPredictor::new(3);
        p.observe(path_query(), 0);
        p.observe(path_query(), 0);
        p.observe(path_query(), 1);
        assert_eq!(p.predict(&path_query()), Some(0));
    }

    #[test]
    fn observe_credits_winner_tally() {
        let mut p = VariantPredictor::new(3);
        p.observe(path_query(), 2);
        p.observe(path_query(), 2);
        p.record_loss(0);
        p.record_timeout(1);
        assert_eq!(p.tally(2), EntrantTally { wins: 2, losses: 0, timeouts: 0 });
        assert_eq!(p.tally(0).losses, 1);
        assert_eq!(p.tally(1).timeouts, 1);
        assert_eq!(p.tally(9), EntrantTally::default(), "unseen entrants read as zero");
        assert!((p.tally(2).win_rate() - 1.0).abs() < 1e-12);
        assert_eq!(p.tally(1).win_rate(), 0.0);
        assert_eq!(p.tally(1).races(), 1);
    }

    #[test]
    fn rank_puts_neighbourhood_winner_first() {
        let mut p = VariantPredictor::new(3);
        for _ in 0..3 {
            p.observe(path_query(), 0);
            p.observe(star_query(), 1);
        }
        assert_eq!(p.rank(&path_query(), 3)[0], 0);
        assert_eq!(p.rank(&star_query(), 3)[0], 1);
        // Every rank is a permutation of the full field.
        let mut r = p.rank(&path_query(), 3);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    fn rank_untrained_is_configuration_order() {
        let p = VariantPredictor::new(3);
        assert_eq!(p.rank(&path_query(), 4), vec![0, 1, 2, 3]);
        assert_eq!(p.rank_with_vote_share(&path_query(), 4).1, 0.0, "no samples, no confidence");
    }

    #[test]
    fn vote_share_matches_neighbourhood_majority() {
        let mut p = VariantPredictor::new(3);
        p.observe(path_query(), 0);
        p.observe(path_query(), 0);
        p.observe(path_query(), 1);
        let (order, share) = p.rank_with_vote_share(&path_query(), 2);
        assert_eq!(order[0], 0);
        assert!((share - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rank_ties_break_on_tallies() {
        let mut p = VariantPredictor::new(1);
        // The neighbourhood only knows variant 0; among the silent rest,
        // the tallies decide: variant 3 has a better lifetime record than
        // 1 (which only times out) and 2 (which only loses).
        p.observe(path_query(), 0);
        p.record_timeout(1);
        p.record_loss(2);
        p.observe(star_query(), 3);
        let r = p.rank(&path_query(), 4);
        assert_eq!(r[0], 0, "neighbourhood vote leads");
        assert_eq!(r[1], 3, "lifetime win rate breaks the tie");
        assert_eq!(r[2], 2, "fewer timeouts rank above more");
        assert_eq!(r[3], 1);
    }

    #[test]
    fn features_array_roundtrip() {
        let f = star_query();
        assert_eq!(QueryFeatures::from_array(f.to_array()), f);
    }

    #[test]
    fn samples_export_is_oldest_first() {
        let mut p = VariantPredictor::with_window(1, 3);
        // Unfilled ring: insertion order.
        p.observe(path_query(), 0);
        p.observe(star_query(), 1);
        assert_eq!(p.samples().iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![0, 1]);
        // Overflowing ring: winner 0 is displaced, oldest survivor first.
        p.observe(path_query(), 2);
        p.observe(star_query(), 3);
        assert_eq!(p.samples().iter().map(|&(_, w)| w).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn restore_reproduces_live_predictor() {
        let mut live = VariantPredictor::with_window(3, 4);
        for _ in 0..3 {
            live.observe(path_query(), 0);
            live.observe(star_query(), 1);
        }
        live.record_loss(1);
        live.record_timeout(2);

        let mut restored = VariantPredictor::with_window(3, 4);
        restored.restore(live.samples(), live.tallies().to_vec(), live.observations());
        assert_eq!(restored.observations(), live.observations());
        assert_eq!(restored.tallies(), live.tallies());
        assert_eq!(restored.predict(&path_query()), live.predict(&path_query()));
        assert_eq!(restored.predict(&star_query()), live.predict(&star_query()));

        // Future observations displace the same slots in both.
        live.observe(path_query(), 2);
        restored.observe(path_query(), 2);
        assert_eq!(restored.samples(), live.samples());
    }

    #[test]
    fn restore_truncates_to_window() {
        let mut big = VariantPredictor::with_window(1, 100);
        for i in 0..6 {
            big.observe(path_query(), i);
        }
        let mut small = VariantPredictor::with_window(1, 4);
        small.restore(big.samples(), big.tallies().to_vec(), big.observations());
        assert_eq!(
            small.samples().iter().map(|&(_, w)| w).collect::<Vec<_>>(),
            vec![2, 3, 4, 5],
            "only the most recent `window` samples are kept"
        );
        assert_eq!(small.observations(), 6);
    }

    #[test]
    fn version_bump_keeps_samples_and_stamps_epoch() {
        let mut p = VariantPredictor::new(1);
        assert_eq!(p.version(), 0);
        p.observe(path_query(), 0);
        p.bump_version();
        p.bump_version();
        assert_eq!(p.version(), 2);
        assert_eq!(p.predict(&path_query()), Some(0), "samples survive the bump");
    }

    #[test]
    fn empty_query_features_are_finite() {
        let f = QueryFeatures::extract(&graph_from_parts(&[], &[]), &stats());
        assert!(f.distance(&f) == 0.0);
        assert!(f.as_array().iter().all(|x| x.is_finite()));
    }
}
