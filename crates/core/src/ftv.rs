//! Ψ inside the FTV verification stage (§8.1).
//!
//! "In the FTV methods we leave intact the index construction and the
//! filtering stages during query processing. In the verification stage, for
//! every graph in the candidate set, we instantiate a number of threads
//! equal to the number of the isomorphic-query rewritings we utilize."
//!
//! Filtering is rewriting-invariant (isomorphic queries have identical path
//! features), so the pipeline filters once with the original query and races
//! the rewritings only where the exponential cost lives: the per-graph
//! sub-iso verification.

use crate::race::{race, PsiOutcome, RaceBudget};
use psi_ftv::{FtvOutcome, GgsxIndex, GrapesIndex, GraphDb, GraphId};
use psi_graph::{Graph, LabelStats};
use psi_matchers::{MatchResult, SearchBudget, StopReason};
use psi_rewrite::{embedding_for_original, Rewriting};
use std::sync::Arc;
use std::time::Instant;

/// The FTV index Ψ wraps (§8.1 uses Grapes and GGSX).
#[derive(Clone)]
pub enum FtvEngine {
    /// Grapes with its location-based component extraction.
    Grapes(Arc<GrapesIndex>),
    /// GGSX with whole-graph verification.
    Ggsx(Arc<GgsxIndex>),
}

impl FtvEngine {
    /// The underlying database.
    pub fn db(&self) -> &GraphDb {
        match self {
            FtvEngine::Grapes(i) => i.db(),
            FtvEngine::Ggsx(i) => i.db(),
        }
    }

    /// Engine name for reporting.
    pub fn name(&self) -> String {
        match self {
            FtvEngine::Grapes(i) => format!("Grapes/{}", i.threads()),
            FtvEngine::Ggsx(_) => "GGSX".into(),
        }
    }

    /// Filter stage: candidate graph ids for `query`.
    pub fn filter_ids(&self, query: &Graph) -> Vec<GraphId> {
        match self {
            FtvEngine::Grapes(i) => i.filter(query).into_iter().map(|(g, _)| g).collect(),
            FtvEngine::Ggsx(i) => i.filter(query),
        }
    }

    /// Verification of one (query, graph) pair.
    pub fn verify_graph(&self, query: &Graph, gid: GraphId, budget: &SearchBudget) -> MatchResult {
        match self {
            FtvEngine::Grapes(i) => i.verify_graph(query, gid, budget),
            FtvEngine::Ggsx(i) => i.verify_graph(query, gid, budget),
        }
    }
}

/// Ψ-framework wrapper around an FTV index: races query rewritings in the
/// verification stage.
pub struct PsiFtvRunner {
    engine: FtvEngine,
    rewritings: Vec<Rewriting>,
    stats: LabelStats,
}

impl PsiFtvRunner {
    /// Wraps `engine`, racing the given rewritings per candidate graph.
    /// Label statistics (for ILF) are computed over the whole database.
    pub fn new(engine: FtvEngine, rewritings: Vec<Rewriting>) -> Self {
        assert!(!rewritings.is_empty(), "need at least one rewriting to race");
        let stats = engine.db().label_stats();
        Self { engine, rewritings, stats }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &FtvEngine {
        &self.engine
    }

    /// The racing rewritings (thread count of each verification race).
    pub fn rewritings(&self) -> &[Rewriting] {
        &self.rewritings
    }

    /// Races the configured rewritings on the verification of one
    /// (query, graph) pair — the per-pair experiment primitive of §8.1.
    /// Winner embeddings are translated back to the original query
    /// numbering.
    pub fn verify_graph_race(
        &self,
        query: &Graph,
        gid: GraphId,
        budget: &RaceBudget,
    ) -> PsiOutcome<Rewriting> {
        let prepared: Vec<(Rewriting, Arc<(Graph, psi_graph::Permutation)>)> = self
            .rewritings
            .iter()
            .map(|&rw| {
                let p = rw.permutation(query, &self.stats);
                (rw, Arc::new((p.apply_to(query), p)))
            })
            .collect();
        type Entrant = Box<dyn FnOnce(&SearchBudget) -> MatchResult + Send>;
        let entrants: Vec<(Rewriting, Entrant)> = prepared
            .iter()
            .map(|(rw, prep)| {
                let engine = self.engine.clone();
                let prep = Arc::clone(prep);
                let f: Entrant =
                    Box::new(move |b: &SearchBudget| engine.verify_graph(&prep.0, gid, b));
                (*rw, f)
            })
            .collect();
        let mut outcome = race(entrants, budget);
        for vr in &mut outcome.per_variant {
            let perm = &prepared.iter().find(|(rw, _)| *rw == vr.label).expect("present").1 .1;
            for emb in &mut vr.result.embeddings {
                *emb = embedding_for_original(emb, perm);
            }
        }
        outcome
    }

    /// Full Ψ-FTV pipeline: filter once with the original query, then race
    /// the rewritings on every candidate graph's verification.
    pub fn query(&self, query: &Graph, budget: &RaceBudget) -> FtvOutcome {
        let t0 = Instant::now();
        let candidates = self.engine.filter_ids(query);
        let filter_time = t0.elapsed();
        let pruned = self.engine.db().len() - candidates.len();
        let v0 = Instant::now();
        let mut matching = Vec::new();
        let mut stop = StopReason::Complete;
        let mut tests = 0usize;
        for gid in candidates.iter().copied() {
            let outcome = self.verify_graph_race(query, gid, budget);
            tests += outcome.per_variant.len();
            match outcome.winner() {
                Some(w) if w.result.found() => matching.push(gid),
                Some(_) => {}
                None => {
                    if stop == StopReason::Complete {
                        stop = StopReason::TimedOut;
                    }
                }
            }
        }
        FtvOutcome {
            matching_graphs: matching,
            candidates: candidates.len(),
            pruned,
            stop,
            subiso_tests: tests,
            elapsed: filter_time + v0.elapsed(),
            verify_time: v0.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_db() -> GraphDb {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        GraphDb::new((0..5).map(|_| random_connected_graph(15, 25, &labels, &mut rng)).collect())
    }

    fn psi_grapes(db: &GraphDb) -> PsiFtvRunner {
        let idx = Arc::new(GrapesIndex::build(db, 3, 1));
        PsiFtvRunner::new(
            FtvEngine::Grapes(idx),
            vec![Rewriting::Ilf, Rewriting::Ind, Rewriting::Dnd],
        )
    }

    #[test]
    fn psi_query_agrees_with_plain_grapes() {
        let db = sample_db();
        let plain = GrapesIndex::build(&db, 3, 1);
        let psi = psi_grapes(&db);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for _ in 0..8 {
            let q = random_connected_graph(4, 4, &labels, &mut rng);
            let a = plain.query(&q, &SearchBudget::first_match());
            let b = psi.query(&q, &RaceBudget::decision());
            assert_eq!(a.matching_graphs, b.matching_graphs, "query {q:?}");
        }
    }

    #[test]
    fn psi_query_agrees_with_plain_ggsx() {
        let db = sample_db();
        let plain = GgsxIndex::build(&db, 3);
        let psi = PsiFtvRunner::new(
            FtvEngine::Ggsx(Arc::new(GgsxIndex::build(&db, 3))),
            vec![Rewriting::Ilf, Rewriting::IlfDnd],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let labels = LabelDist::Uniform { num_labels: 3 }.sampler();
        for _ in 0..8 {
            let q = random_connected_graph(4, 5, &labels, &mut rng);
            let a = plain.query(&q, &SearchBudget::first_match());
            let b = psi.query(&q, &RaceBudget::decision());
            assert_eq!(a.matching_graphs, b.matching_graphs, "query {q:?}");
        }
    }

    #[test]
    fn verify_race_translates_embeddings() {
        let db = GraphDb::new(vec![graph_from_parts(&[5, 6, 7], &[(0, 1), (1, 2)])]);
        let psi = psi_grapes(&db);
        let q = graph_from_parts(&[7, 6, 5], &[(0, 1), (1, 2)]); // reversed labels
        let outcome = psi.verify_graph_race(&q, 0, &RaceBudget::matching());
        assert!(outcome.found());
        let w = outcome.winner().unwrap();
        // Original query node 0 has label 7 -> must map to stored node 2.
        assert_eq!(w.result.embeddings[0], vec![2, 1, 0]);
    }

    #[test]
    fn engine_names() {
        let db = sample_db();
        assert_eq!(FtvEngine::Grapes(Arc::new(GrapesIndex::build(&db, 3, 4))).name(), "Grapes/4");
        assert_eq!(FtvEngine::Ggsx(Arc::new(GgsxIndex::build(&db, 3))).name(), "GGSX");
    }

    #[test]
    #[should_panic(expected = "at least one rewriting")]
    fn empty_rewriting_set_rejected() {
        let db = sample_db();
        let idx = Arc::new(GrapesIndex::build(&db, 3, 1));
        PsiFtvRunner::new(FtvEngine::Grapes(idx), vec![]);
    }
}
