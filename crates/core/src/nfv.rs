//! Ψ over the NFV matchers (§8.2).
//!
//! [`PsiRunner`] prepares every algorithm appearing in the configured
//! variants once over the stored graph (the algorithms' indexing phases run
//! at construction, matching the paper's setup where indexes pre-exist), and
//! then races the variants per query.

use crate::config::{PsiConfig, Variant};
use crate::race::{race, PsiOutcome, RaceBudget};
use psi_graph::{Graph, LabelStats, TargetIndex};
use psi_matchers::{Algorithm, MatchResult, Matcher, SearchBudget};
use psi_rewrite::{embedding_for_original, Rewriting};
use std::collections::HashMap;
use std::sync::Arc;

/// The Ψ-framework runner for a single stored graph (NFV setting).
pub struct PsiRunner {
    stored: Arc<Graph>,
    stats: LabelStats,
    /// The shared per-graph [`TargetIndex`]: built exactly once here and
    /// handed (as an `Arc`) to every prepared matcher, so every entrant
    /// of every race probes the same label/degree/signature/adjacency
    /// structures. `None` for legacy scan-mode runners (the seed
    /// behavior kept for the `indexed_speedup` comparison).
    index: Option<Arc<TargetIndex>>,
    matchers: HashMap<Algorithm, Arc<dyn Matcher>>,
    config: PsiConfig,
}

impl PsiRunner {
    /// Prepares all algorithms used by `config` over `stored`, sharing
    /// one [`TargetIndex`] across every matcher.
    pub fn new(stored: Arc<Graph>, config: PsiConfig) -> Self {
        let stats = LabelStats::from_graph(&stored);
        let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
        let matchers = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_indexed(Arc::clone(&index))))
            .collect();
        Self { stored, stats, index: Some(index), matchers, config }
    }

    /// Like [`PsiRunner::new`], but over an **already-built**
    /// [`TargetIndex`] (e.g. one loaded from a snapshot by the
    /// persistence layer) instead of building one here. The index must
    /// be over `stored` — matchers probe it for every candidate and
    /// adjacency decision.
    ///
    /// # Panics
    /// Panics if `index` was built over a different graph handle's
    /// contents (node counts disagree).
    pub fn with_prebuilt_index(
        stored: Arc<Graph>,
        config: PsiConfig,
        index: Arc<TargetIndex>,
    ) -> Self {
        assert_eq!(
            index.node_count(),
            stored.node_count(),
            "prebuilt index does not match the stored graph"
        );
        let stats = LabelStats::from_graph(&stored);
        let matchers = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_indexed(Arc::clone(&index))))
            .collect();
        Self { stored, stats, index: Some(index), matchers, config }
    }

    /// Prepares all algorithms in **legacy scan mode** — the seed,
    /// pre-index behavior (per-query candidate rescans, binary-search
    /// adjacency probes, per-query allocations). This is the reference
    /// configuration the `indexed_speedup` bench metric and the matcher
    /// equivalence property tests race against.
    pub fn new_legacy_scan(stored: Arc<Graph>, config: PsiConfig) -> Self {
        let stats = LabelStats::from_graph(&stored);
        // One bitset-free index shared across the scan-mode matchers:
        // they ignore its derived structures wherever the seed rescanned,
        // but there is no reason to build the shared state per algorithm.
        let index = Arc::new(TargetIndex::build_without_bitset(Arc::clone(&stored)));
        let matchers = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_legacy_shared(Arc::clone(&index))))
            .collect();
        Self { stored, stats, index: None, matchers, config }
    }

    /// The paper's §8 NFV default: GraphQL ∥ sPath on the original query.
    pub fn nfv_default(stored: &Graph) -> Self {
        Self::new(Arc::new(stored.clone()), PsiConfig::gql_spa_orig())
    }

    /// [`PsiRunner::nfv_default`] over an already-shared graph handle —
    /// no deep clone. A multi-graph registry registering many stored
    /// graphs hands out `Arc<Graph>` handles; cloning each CSR would
    /// double resident memory for nothing.
    pub fn nfv_default_shared(stored: Arc<Graph>) -> Self {
        Self::new(stored, PsiConfig::gql_spa_orig())
    }

    /// Returns a runner with a different variant set, re-using already
    /// prepared matchers *and* the shared target index (new algorithms
    /// are prepared on demand against the same index — or in scan mode
    /// for a legacy runner).
    pub fn with_config(&self, config: PsiConfig) -> Self {
        let mut matchers = self.matchers.clone();
        for a in config.algorithms_used() {
            matchers.entry(a).or_insert_with(|| match &self.index {
                Some(index) => a.prepare_indexed(Arc::clone(index)),
                None => a.prepare_legacy(Arc::clone(&self.stored)),
            });
        }
        Self {
            stored: Arc::clone(&self.stored),
            stats: self.stats.clone(),
            index: self.index.clone(),
            matchers,
            config,
        }
    }

    /// The stored graph.
    pub fn stored(&self) -> &Arc<Graph> {
        &self.stored
    }

    /// The shared per-graph [`TargetIndex`], built once at construction
    /// and probed by every entrant of every race. `None` only for
    /// legacy scan-mode runners.
    pub fn target_index(&self) -> Option<&Arc<TargetIndex>> {
        self.index.as_ref()
    }

    /// Label statistics of the stored graph (drives the ILF rewritings).
    pub fn label_stats(&self) -> &LabelStats {
        &self.stats
    }

    /// The configured variant set.
    pub fn config(&self) -> &PsiConfig {
        &self.config
    }

    /// The prepared matcher for `algorithm`.
    ///
    /// # Panics
    /// Panics if the algorithm is not part of the configuration.
    pub fn matcher(&self, algorithm: Algorithm) -> &Arc<dyn Matcher> {
        self.matchers.get(&algorithm).expect("algorithm not prepared for this runner")
    }

    /// Runs one variant *solo* (no race) — the baseline measurements of the
    /// experiment harness. Embeddings are returned in the **original**
    /// query's node numbering.
    pub fn run_variant(
        &self,
        query: &Graph,
        variant: Variant,
        budget: &SearchBudget,
    ) -> MatchResult {
        let matcher = self.matcher(variant.algorithm);
        let perm = variant.rewriting.permutation(query, &self.stats);
        let rewritten = perm.apply_to(query);
        let mut result = matcher.search(&rewritten, budget);
        for emb in &mut result.embeddings {
            *emb = embedding_for_original(emb, &perm);
        }
        result
    }

    /// Prepares every configured variant for execution on `query`: the
    /// query is rewritten once per distinct rewriting, and each entrant is
    /// packaged self-contained (matcher + rewritten query + permutation)
    /// so it can run on any thread — a scoped racing thread here, or a
    /// pooled worker in `psi-engine`.
    pub fn prepare_entrants(&self, query: &Graph) -> Vec<PreparedEntrant> {
        let mut perms: HashMap<Rewriting, Arc<(Graph, psi_graph::Permutation)>> = HashMap::new();
        for v in &self.config.variants {
            perms.entry(v.rewriting).or_insert_with(|| {
                let p = v.rewriting.permutation(query, &self.stats);
                Arc::new((p.apply_to(query), p))
            });
        }
        self.config
            .variants
            .iter()
            .map(|&v| PreparedEntrant {
                variant: v,
                matcher: Arc::clone(self.matcher(v.algorithm)),
                prepared: Arc::clone(&perms[&v.rewriting]),
            })
            .collect()
    }

    /// Races all configured variants on `query` (§8.2). The winner's
    /// embeddings (and every conclusive entrant's) are translated back to
    /// the original query numbering.
    pub fn race(&self, query: &Graph, budget: RaceBudget) -> PsiOutcome<Variant> {
        let entrants: Vec<(Variant, _)> = self
            .prepare_entrants(query)
            .into_iter()
            .map(|e| (e.variant, move |b: &SearchBudget| e.execute(b)))
            .collect();
        race(entrants, &budget)
    }
}

/// One racing entrant, prepared and self-contained: owns (shares) its
/// matcher and the rewritten query, and translates embeddings back to the
/// original query numbering on execution. `Send + Sync + 'static`, so it
/// can be shipped to a worker pool.
#[derive(Clone)]
pub struct PreparedEntrant {
    /// The (algorithm, rewriting) identity of this entrant.
    pub variant: Variant,
    matcher: Arc<dyn Matcher>,
    prepared: Arc<(Graph, psi_graph::Permutation)>,
}

impl PreparedEntrant {
    /// Runs the search under `budget`; embeddings come back in the
    /// **original** query's node numbering.
    pub fn execute(&self, budget: &SearchBudget) -> MatchResult {
        let mut result = self.matcher.search(&self.prepared.0, budget);
        for emb in &mut result.embeddings {
            *emb = embedding_for_original(emb, &self.prepared.1);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use psi_matchers::matcher::is_valid_embedding;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn stored() -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        random_connected_graph(40, 90, &labels, &mut rng)
    }

    fn query_from(g: &Graph) -> Graph {
        // A 3-path grown from node 0 so containment is guaranteed.
        let v0 = 0;
        let v1 = g.neighbors(v0)[0];
        let v2 = g.neighbors(v1).iter().copied().find(|&x| x != v0).unwrap();
        graph_from_parts(&[g.label(v0), g.label(v1), g.label(v2)], &[(0, 1), (1, 2)])
    }

    #[test]
    fn race_finds_known_embedding() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::nfv_default(&g);
        let outcome = psi.race(&q, RaceBudget::decision());
        assert!(outcome.found());
        let w = outcome.winner().unwrap();
        for emb in &w.result.embeddings {
            assert!(is_valid_embedding(&q, &g, emb), "embedding must be in original numbering");
        }
    }

    #[test]
    fn race_agrees_with_solo_on_match_count() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::nfv_default(&g);
        let solo = psi.run_variant(
            &q,
            Variant::new(Algorithm::GraphQl, Rewriting::Orig),
            &psi_matchers::SearchBudget::unlimited(),
        );
        let raced = psi.race(&q, RaceBudget::with_max_matches(usize::MAX));
        assert!(raced.is_conclusive());
        assert_eq!(raced.num_matches(), solo.num_matches);
    }

    #[test]
    fn rewriting_variants_agree_on_answers() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::new(
            Arc::new(g.clone()),
            PsiConfig::rewritings(
                Algorithm::SPath,
                [Rewriting::Orig, Rewriting::Ilf, Rewriting::Dnd, Rewriting::IlfInd],
            ),
        );
        let baseline = psi
            .run_variant(
                &q,
                Variant::new(Algorithm::SPath, Rewriting::Orig),
                &psi_matchers::SearchBudget::unlimited(),
            )
            .num_matches;
        for &rw in &[Rewriting::Ilf, Rewriting::Dnd, Rewriting::IlfInd] {
            let r = psi.run_variant(
                &q,
                Variant::new(Algorithm::SPath, rw),
                &psi_matchers::SearchBudget::unlimited(),
            );
            assert_eq!(r.num_matches, baseline, "{rw}");
            for emb in &r.embeddings {
                assert!(is_valid_embedding(&q, &g, emb), "{rw} embedding must be translated");
            }
        }
    }

    #[test]
    fn negative_decision_is_conclusive() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        let psi = PsiRunner::nfv_default(&g);
        let q = graph_from_parts(&[5], &[]);
        let outcome = psi.race(&q, RaceBudget::decision());
        assert!(outcome.is_conclusive());
        assert!(!outcome.found());
    }

    #[test]
    fn with_config_reuses_and_extends() {
        let g = stored();
        let psi = PsiRunner::nfv_default(&g);
        let psi3 = psi.with_config(PsiConfig::algorithms(
            [Algorithm::GraphQl, Algorithm::SPath, Algorithm::QuickSi],
            Rewriting::Orig,
        ));
        assert_eq!(psi3.config().thread_count(), 3);
        let q = query_from(&g);
        assert!(psi3.race(&q, RaceBudget::decision()).found());
    }
}
