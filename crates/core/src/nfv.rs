//! Ψ over the NFV matchers (§8.2).
//!
//! [`PsiRunner`] prepares every algorithm appearing in the configured
//! variants once over the stored graph (the algorithms' indexing phases run
//! at construction, matching the paper's setup where indexes pre-exist), and
//! then races the variants per query.

use crate::config::{PsiConfig, Variant};
use crate::race::{race, PsiOutcome, RaceBudget};
use psi_delta::{DeltaOverlay, GraphUpdate, GraphView, PinnedView, UpdateError, UpdateOp};
use psi_graph::{Graph, LabelStats, NodeId, TargetIndex};
use psi_matchers::{Algorithm, MatchResult, Matcher, SearchBudget};
use psi_rewrite::{embedding_for_original, Rewriting};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Prepared matcher per algorithm, shared by every entrant of a race.
type MatcherSet = HashMap<Algorithm, Arc<dyn Matcher>>;

/// The Ψ-framework runner for a single stored graph (NFV setting).
///
/// The runner is **live**: [`PsiRunner::apply_update`] lands mutation
/// batches in a per-runner delta overlay, every race prepared afterwards
/// probes base + overlay through a pinned [`GraphView`], and
/// [`PsiRunner::compact`] folds a grown overlay into a fresh CSR +
/// rebuilt index under a new epoch. In-flight races hold `Arc` pins to
/// the epoch they started on, so neither updates nor compaction ever
/// pause or invalidate them.
pub struct PsiRunner {
    stored: Arc<Graph>,
    stats: LabelStats,
    /// The shared per-graph [`TargetIndex`] of the *registration* epoch:
    /// built exactly once here and handed (as an `Arc`) to every prepared
    /// matcher, so every entrant of every race probes the same
    /// label/degree/signature/adjacency structures. `None` for legacy
    /// scan-mode runners (the seed behavior kept for the
    /// `indexed_speedup` comparison).
    index: Option<Arc<TargetIndex>>,
    matchers: HashMap<Algorithm, Arc<dyn Matcher>>,
    config: PsiConfig,
    live: RwLock<Live>,
}

/// The mutable serving state: everything a race pins when prepared.
struct Live {
    base: Arc<Graph>,
    index: Option<Arc<TargetIndex>>,
    matchers: Arc<HashMap<Algorithm, Arc<dyn Matcher>>>,
    stats: Arc<LabelStats>,
    overlay: Option<Arc<DeltaOverlay>>,
    /// Cumulative ops since the last compaction, in application order.
    ops: Vec<UpdateOp>,
    epoch: u64,
}

/// What one [`PsiRunner::compact`] run did.
#[derive(Debug, Clone, Copy)]
pub struct Compaction {
    /// The epoch the compacted state was installed as.
    pub epoch: u64,
    /// Number of overlay ops folded into the new base CSR.
    pub folded_ops: usize,
    /// Wall-clock time spent materializing + rebuilding off-lock.
    pub duration: Duration,
}

/// Label statistics of the live view: tombstones (and overlay-removed
/// nodes) excluded, overlay-added nodes included.
fn live_label_stats(base: &Graph, overlay: Option<&DeltaOverlay>) -> LabelStats {
    let view = GraphView::of_graph(base).with_overlay(overlay);
    let mut s = LabelStats::new();
    for v in 0..view.node_count() as NodeId {
        if view.is_live(v) {
            let l = view.label(v);
            if l != psi_delta::TOMBSTONE_LABEL {
                s.add_label(l);
            }
        }
    }
    s
}

impl PsiRunner {
    /// Prepares all algorithms used by `config` over `stored`, sharing
    /// one [`TargetIndex`] across every matcher.
    pub fn new(stored: Arc<Graph>, config: PsiConfig) -> Self {
        let stats = LabelStats::from_graph(&stored);
        let index = Arc::new(TargetIndex::build(Arc::clone(&stored)));
        let matchers: HashMap<Algorithm, Arc<dyn Matcher>> = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_indexed(Arc::clone(&index))))
            .collect();
        Self::assemble(stored, stats, Some(index), matchers, config)
    }

    /// Wires the registration-epoch parts into a runner whose live state
    /// starts as epoch 0 with no overlay.
    fn assemble(
        stored: Arc<Graph>,
        stats: LabelStats,
        index: Option<Arc<TargetIndex>>,
        matchers: HashMap<Algorithm, Arc<dyn Matcher>>,
        config: PsiConfig,
    ) -> Self {
        let live = Live {
            base: Arc::clone(&stored),
            index: index.clone(),
            matchers: Arc::new(matchers.clone()),
            stats: Arc::new(stats.clone()),
            overlay: None,
            ops: Vec::new(),
            epoch: 0,
        };
        Self { stored, stats, index, matchers, config, live: RwLock::new(live) }
    }

    /// Like [`PsiRunner::new`], but over an **already-built**
    /// [`TargetIndex`] (e.g. one loaded from a snapshot by the
    /// persistence layer) instead of building one here. The index must
    /// be over `stored` — matchers probe it for every candidate and
    /// adjacency decision.
    ///
    /// # Panics
    /// Panics if `index` was built over a different graph handle's
    /// contents (node counts disagree).
    pub fn with_prebuilt_index(
        stored: Arc<Graph>,
        config: PsiConfig,
        index: Arc<TargetIndex>,
    ) -> Self {
        assert_eq!(
            index.node_count(),
            stored.node_count(),
            "prebuilt index does not match the stored graph"
        );
        let stats = LabelStats::from_graph(&stored);
        let matchers: HashMap<Algorithm, Arc<dyn Matcher>> = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_indexed(Arc::clone(&index))))
            .collect();
        Self::assemble(stored, stats, Some(index), matchers, config)
    }

    /// Prepares all algorithms in **legacy scan mode** — the seed,
    /// pre-index behavior (per-query candidate rescans, binary-search
    /// adjacency probes, per-query allocations). This is the reference
    /// configuration the `indexed_speedup` bench metric and the matcher
    /// equivalence property tests race against.
    pub fn new_legacy_scan(stored: Arc<Graph>, config: PsiConfig) -> Self {
        let stats = LabelStats::from_graph(&stored);
        // One bitset-free index shared across the scan-mode matchers:
        // they ignore its derived structures wherever the seed rescanned,
        // but there is no reason to build the shared state per algorithm.
        let index = Arc::new(TargetIndex::build_without_bitset(Arc::clone(&stored)));
        let matchers: HashMap<Algorithm, Arc<dyn Matcher>> = config
            .algorithms_used()
            .into_iter()
            .map(|a| (a, a.prepare_legacy_shared(Arc::clone(&index))))
            .collect();
        Self::assemble(stored, stats, None, matchers, config)
    }

    /// The paper's §8 NFV default: GraphQL ∥ sPath on the original query.
    pub fn nfv_default(stored: &Graph) -> Self {
        Self::new(Arc::new(stored.clone()), PsiConfig::gql_spa_orig())
    }

    /// [`PsiRunner::nfv_default`] over an already-shared graph handle —
    /// no deep clone. A multi-graph registry registering many stored
    /// graphs hands out `Arc<Graph>` handles; cloning each CSR would
    /// double resident memory for nothing.
    pub fn nfv_default_shared(stored: Arc<Graph>) -> Self {
        Self::new(stored, PsiConfig::gql_spa_orig())
    }

    /// Returns a runner with a different variant set, re-using already
    /// prepared matchers *and* the shared target index (new algorithms
    /// are prepared on demand against the same index — or in scan mode
    /// for a legacy runner).
    pub fn with_config(&self, config: PsiConfig) -> Self {
        let mut matchers = self.matchers.clone();
        for a in config.algorithms_used() {
            matchers.entry(a).or_insert_with(|| match &self.index {
                Some(index) => a.prepare_indexed(Arc::clone(index)),
                None => a.prepare_legacy(Arc::clone(&self.stored)),
            });
        }
        Self::assemble(
            Arc::clone(&self.stored),
            self.stats.clone(),
            self.index.clone(),
            matchers,
            config,
        )
    }

    /// The stored graph **as registered** (epoch 0). Live mutations do
    /// not touch this handle; see [`PsiRunner::materialized`] for the
    /// current contents.
    pub fn stored(&self) -> &Arc<Graph> {
        &self.stored
    }

    /// The current epoch: 0 at registration, bumped by every
    /// [`PsiRunner::compact`] that folds outstanding ops.
    pub fn epoch(&self) -> u64 {
        self.live.read().unwrap().epoch
    }

    /// Number of overlay ops applied since the last compaction.
    pub fn pending_ops(&self) -> usize {
        self.live.read().unwrap().ops.len()
    }

    /// Pins the current epoch's state (base, index, overlay) for a race.
    /// The pin keeps its epoch alive via `Arc`s no matter how many
    /// updates or compactions land after it is taken.
    pub fn pinned(&self) -> PinnedView {
        let live = self.live.read().unwrap();
        PinnedView::new(
            Arc::clone(&live.base),
            live.index.clone(),
            live.overlay.clone(),
            live.index.is_some(),
            live.epoch,
        )
    }

    /// The current epoch's base CSR (overlay **not** applied).
    pub fn live_graph(&self) -> Arc<Graph> {
        Arc::clone(&self.live.read().unwrap().base)
    }

    /// The current epoch's shared index (`None` for scan-mode runners).
    pub fn live_index(&self) -> Option<Arc<TargetIndex>> {
        self.live.read().unwrap().index.clone()
    }

    /// The current live contents as a standalone graph: the epoch base
    /// with any outstanding overlay folded in (tombstones kept as
    /// isolated [`psi_delta::TOMBSTONE_LABEL`] nodes so IDs are stable).
    pub fn materialized(&self) -> Arc<Graph> {
        let live = self.live.read().unwrap();
        match &live.overlay {
            None => Arc::clone(&live.base),
            Some(o) => Arc::new(o.materialize(&live.base)),
        }
    }

    /// Applies one mutation batch to the live view. The batch is
    /// validated against the current base + overlay and lands atomically:
    /// on `Ok` the returned epoch's view (and every race prepared from
    /// now on) reflects it; on `Err` the graph is untouched.
    ///
    /// Races already in flight keep their pinned state and never observe
    /// the update — the paper's immutable-CSR serving discipline, kept
    /// per epoch.
    pub fn apply_update(&self, update: &GraphUpdate) -> Result<u64, UpdateError> {
        let mut live = self.live.write().unwrap();
        if update.ops.is_empty() {
            return Ok(live.epoch);
        }
        let mut ops = live.ops.clone();
        ops.extend_from_slice(&update.ops);
        let overlay = DeltaOverlay::build(&live.base, live.index.as_deref(), &ops)?;
        live.stats = Arc::new(live_label_stats(&live.base, Some(&overlay)));
        live.overlay = Some(Arc::new(overlay));
        live.ops = ops;
        Ok(live.epoch)
    }

    /// Folds the outstanding overlay into a fresh CSR, rebuilds the
    /// shared index and every configured matcher over it, and installs
    /// the result as a new epoch. Materialization and index/matcher
    /// rebuilds run **off-lock**, so queries and updates keep flowing;
    /// ops that land while the rebuild runs survive as the new epoch's
    /// (small) overlay.
    ///
    /// Returns `None` when there was nothing to fold, or when a
    /// concurrent compaction installed a newer epoch first.
    pub fn compact(&self) -> Option<Compaction> {
        let (base, overlay, folded_ops, epoch, accel) = {
            let live = self.live.read().unwrap();
            let overlay = live.overlay.clone()?;
            (Arc::clone(&live.base), overlay, live.ops.len(), live.epoch, live.index.is_some())
        };
        let started = Instant::now();
        let new_base = Arc::new(overlay.materialize(&base));
        let algorithms = self.config.algorithms_used();
        let (index, matchers): (Option<Arc<TargetIndex>>, MatcherSet) = if accel {
            let ix = Arc::new(TargetIndex::build(Arc::clone(&new_base)));
            let m =
                algorithms.into_iter().map(|a| (a, a.prepare_indexed(Arc::clone(&ix)))).collect();
            (Some(ix), m)
        } else {
            let ix = Arc::new(TargetIndex::build_without_bitset(Arc::clone(&new_base)));
            let m = algorithms
                .into_iter()
                .map(|a| (a, a.prepare_legacy_shared(Arc::clone(&ix))))
                .collect();
            (None, m)
        };
        let duration = started.elapsed();

        let mut live = self.live.write().unwrap();
        if live.epoch != epoch {
            // A concurrent compaction won; its epoch already folded our ops.
            return None;
        }
        // Ops that landed during the rebuild become the new epoch's
        // overlay — valid as-is because materialization preserves node
        // IDs (tombstones keep theirs).
        let tail: Vec<UpdateOp> = live.ops[folded_ops..].to_vec();
        let overlay = if tail.is_empty() {
            None
        } else {
            Some(Arc::new(
                DeltaOverlay::build(&new_base, index.as_deref(), &tail)
                    .expect("tail ops were validated when applied and IDs are stable"),
            ))
        };
        live.stats = Arc::new(live_label_stats(&new_base, overlay.as_deref()));
        live.base = new_base;
        live.index = index;
        live.matchers = Arc::new(matchers);
        live.overlay = overlay;
        live.ops = tail;
        live.epoch = epoch + 1;
        Some(Compaction { epoch: live.epoch, folded_ops, duration })
    }

    /// The shared per-graph [`TargetIndex`], built once at construction
    /// and probed by every entrant of every race. `None` only for
    /// legacy scan-mode runners.
    pub fn target_index(&self) -> Option<&Arc<TargetIndex>> {
        self.index.as_ref()
    }

    /// Label statistics of the stored graph **as registered** (drives the
    /// ILF rewritings; see [`PsiRunner::live_stats`] for the mutated
    /// view's statistics).
    pub fn label_stats(&self) -> &LabelStats {
        &self.stats
    }

    /// Label statistics of the current live view: recomputed on every
    /// applied update and compaction, tombstones excluded.
    pub fn live_stats(&self) -> Arc<LabelStats> {
        Arc::clone(&self.live.read().unwrap().stats)
    }

    /// The configured variant set.
    pub fn config(&self) -> &PsiConfig {
        &self.config
    }

    /// The prepared matcher for `algorithm`.
    ///
    /// # Panics
    /// Panics if the algorithm is not part of the configuration.
    pub fn matcher(&self, algorithm: Algorithm) -> &Arc<dyn Matcher> {
        self.matchers.get(&algorithm).expect("algorithm not prepared for this runner")
    }

    /// Runs one variant *solo* (no race) — the baseline measurements of the
    /// experiment harness. Embeddings are returned in the **original**
    /// query's node numbering.
    pub fn run_variant(
        &self,
        query: &Graph,
        variant: Variant,
        budget: &SearchBudget,
    ) -> MatchResult {
        let (pin, stats, matcher) = {
            let live = self.live.read().unwrap();
            let pin = PinnedView::new(
                Arc::clone(&live.base),
                live.index.clone(),
                live.overlay.clone(),
                live.index.is_some(),
                live.epoch,
            );
            let matcher = Arc::clone(
                live.matchers
                    .get(&variant.algorithm)
                    .expect("algorithm not prepared for this runner"),
            );
            (pin, Arc::clone(&live.stats), matcher)
        };
        let perm = variant.rewriting.permutation(query, &stats);
        let rewritten = perm.apply_to(query);
        let mut result = matcher.search_view(&rewritten, pin.as_view(), budget);
        for emb in &mut result.embeddings {
            *emb = embedding_for_original(emb, &perm);
        }
        result
    }

    /// Prepares every configured variant for execution on `query`: the
    /// query is rewritten once per distinct rewriting, and each entrant is
    /// packaged self-contained (matcher + rewritten query + permutation)
    /// so it can run on any thread — a scoped racing thread here, or a
    /// pooled worker in `psi-engine`.
    pub fn prepare_entrants(&self, query: &Graph) -> Vec<PreparedEntrant> {
        let (pin, stats, matchers) = {
            let live = self.live.read().unwrap();
            let pin = PinnedView::new(
                Arc::clone(&live.base),
                live.index.clone(),
                live.overlay.clone(),
                live.index.is_some(),
                live.epoch,
            );
            (pin, Arc::clone(&live.stats), Arc::clone(&live.matchers))
        };
        let mut perms: HashMap<Rewriting, Arc<(Graph, psi_graph::Permutation)>> = HashMap::new();
        for v in &self.config.variants {
            perms.entry(v.rewriting).or_insert_with(|| {
                let p = v.rewriting.permutation(query, &stats);
                Arc::new((p.apply_to(query), p))
            });
        }
        self.config
            .variants
            .iter()
            .map(|&v| PreparedEntrant {
                variant: v,
                matcher: Arc::clone(
                    matchers.get(&v.algorithm).expect("algorithm not prepared for this runner"),
                ),
                prepared: Arc::clone(&perms[&v.rewriting]),
                pin: pin.clone(),
            })
            .collect()
    }

    /// Races all configured variants on `query` (§8.2). The winner's
    /// embeddings (and every conclusive entrant's) are translated back to
    /// the original query numbering.
    pub fn race(&self, query: &Graph, budget: RaceBudget) -> PsiOutcome<Variant> {
        let entrants: Vec<(Variant, _)> = self
            .prepare_entrants(query)
            .into_iter()
            .map(|e| (e.variant, move |b: &SearchBudget| e.execute(b)))
            .collect();
        race(entrants, &budget)
    }
}

/// One racing entrant, prepared and self-contained: owns (shares) its
/// matcher and the rewritten query, and translates embeddings back to the
/// original query numbering on execution. `Send + Sync + 'static`, so it
/// can be shipped to a worker pool.
#[derive(Clone)]
pub struct PreparedEntrant {
    /// The (algorithm, rewriting) identity of this entrant.
    pub variant: Variant,
    matcher: Arc<dyn Matcher>,
    prepared: Arc<(Graph, psi_graph::Permutation)>,
    /// The epoch state this entrant was prepared against. Holding the
    /// `Arc`s here is what pins an in-flight race to its start epoch
    /// while updates and compactions land concurrently.
    pin: PinnedView,
}

impl PreparedEntrant {
    /// Runs the search under `budget`; embeddings come back in the
    /// **original** query's node numbering.
    pub fn execute(&self, budget: &SearchBudget) -> MatchResult {
        let mut result = self.matcher.search_view(&self.prepared.0, self.pin.as_view(), budget);
        self.translate(&mut result);
        result
    }

    /// Runs one slice task of this entrant's search against `coord`.
    /// Several pooled tasks call this concurrently on clones of one
    /// entrant; the coordinator partitions the rewritten query's
    /// root-candidate space among them. Embeddings stay in the entrant's
    /// own numbering until [`PreparedEntrant::translate`] runs on the
    /// merged result.
    pub fn run_slice_task(
        &self,
        coord: &psi_matchers::SliceCoordinator,
    ) -> psi_matchers::SliceTaskSummary {
        coord.run_task(self.matcher.as_ref(), &self.prepared.0, self.pin.as_view())
    }

    /// Translates a merged (or otherwise entrant-numbered) result's
    /// embeddings back to the original query numbering.
    pub fn translate(&self, result: &mut MatchResult) {
        for emb in &mut result.embeddings {
            *emb = embedding_for_original(emb, &self.prepared.1);
        }
    }

    /// Node count of the (rewritten) query this entrant searches for —
    /// the scheduler's query-size input.
    pub fn query_node_count(&self) -> usize {
        self.prepared.0.node_count()
    }

    /// The epoch this entrant is pinned to.
    pub fn epoch(&self) -> u64 {
        self.pin.epoch()
    }

    /// The pinned epoch state (base graph, index, overlay).
    pub fn pin(&self) -> &PinnedView {
        &self.pin
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_graph::generate::{random_connected_graph, LabelDist};
    use psi_graph::graph::graph_from_parts;
    use psi_matchers::matcher::is_valid_embedding;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn stored() -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let labels = LabelDist::Uniform { num_labels: 4 }.sampler();
        random_connected_graph(40, 90, &labels, &mut rng)
    }

    fn query_from(g: &Graph) -> Graph {
        // A 3-path grown from node 0 so containment is guaranteed.
        let v0 = 0;
        let v1 = g.neighbors(v0)[0];
        let v2 = g.neighbors(v1).iter().copied().find(|&x| x != v0).unwrap();
        graph_from_parts(&[g.label(v0), g.label(v1), g.label(v2)], &[(0, 1), (1, 2)])
    }

    #[test]
    fn race_finds_known_embedding() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::nfv_default(&g);
        let outcome = psi.race(&q, RaceBudget::decision());
        assert!(outcome.found());
        let w = outcome.winner().unwrap();
        for emb in &w.result.embeddings {
            assert!(is_valid_embedding(&q, &g, emb), "embedding must be in original numbering");
        }
    }

    #[test]
    fn race_agrees_with_solo_on_match_count() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::nfv_default(&g);
        let solo = psi.run_variant(
            &q,
            Variant::new(Algorithm::GraphQl, Rewriting::Orig),
            &psi_matchers::SearchBudget::unlimited(),
        );
        let raced = psi.race(&q, RaceBudget::with_max_matches(usize::MAX));
        assert!(raced.is_conclusive());
        assert_eq!(raced.num_matches(), solo.num_matches);
    }

    #[test]
    fn rewriting_variants_agree_on_answers() {
        let g = stored();
        let q = query_from(&g);
        let psi = PsiRunner::new(
            Arc::new(g.clone()),
            PsiConfig::rewritings(
                Algorithm::SPath,
                [Rewriting::Orig, Rewriting::Ilf, Rewriting::Dnd, Rewriting::IlfInd],
            ),
        );
        let baseline = psi
            .run_variant(
                &q,
                Variant::new(Algorithm::SPath, Rewriting::Orig),
                &psi_matchers::SearchBudget::unlimited(),
            )
            .num_matches;
        for &rw in &[Rewriting::Ilf, Rewriting::Dnd, Rewriting::IlfInd] {
            let r = psi.run_variant(
                &q,
                Variant::new(Algorithm::SPath, rw),
                &psi_matchers::SearchBudget::unlimited(),
            );
            assert_eq!(r.num_matches, baseline, "{rw}");
            for emb in &r.embeddings {
                assert!(is_valid_embedding(&q, &g, emb), "{rw} embedding must be translated");
            }
        }
    }

    #[test]
    fn negative_decision_is_conclusive() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]);
        let psi = PsiRunner::nfv_default(&g);
        let q = graph_from_parts(&[5], &[]);
        let outcome = psi.race(&q, RaceBudget::decision());
        assert!(outcome.is_conclusive());
        assert!(!outcome.found());
    }

    #[test]
    fn with_config_reuses_and_extends() {
        let g = stored();
        let psi = PsiRunner::nfv_default(&g);
        let psi3 = psi.with_config(PsiConfig::algorithms(
            [Algorithm::GraphQl, Algorithm::SPath, Algorithm::QuickSi],
            Rewriting::Orig,
        ));
        assert_eq!(psi3.config().thread_count(), 3);
        let q = query_from(&g);
        assert!(psi3.race(&q, RaceBudget::decision()).found());
    }
}
