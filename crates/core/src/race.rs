//! The generic racing engine.
//!
//! §8: "These threads run in parallel with each being assigned one rewriting
//! of the initial query, and the first thread to finish is the 'winner';
//! i.e., the rest of the threads are killed."
//!
//! "Killing" is implemented as cooperative cancellation: every entrant's
//! [`psi_matchers::SearchBudget`] shares one [`CancelToken`]; the first
//! entrant to produce a *conclusive* result (found an answer, or exhausted
//! its space) claims the win with an atomic compare-exchange and cancels the
//! token. Losing entrants observe the flag at their next budget check and
//! unwind promptly. This gives the same observable behaviour as thread
//! kill without the memory-unsafety.

use psi_matchers::{CancelToken, MatchResult, SearchBudget};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stage hooks on a [`RaceState`]: an observer hears about entrant
/// execution milestones *as they happen*, on the entrant's own thread —
/// before the race outcome is assembled. `psi-engine` attaches one to
/// feed its trace-event layer; the default no-op methods keep plain
/// library races zero-cost.
///
/// All callbacks may run concurrently from multiple entrant threads and
/// must not block.
pub trait RaceObserver: Send + Sync {
    /// An entrant body began executing. `since_start` measures from the
    /// race anchor, so in a pooled engine it includes queue wait.
    fn entrant_started(&self, idx: usize, since_start: Duration) {
        let _ = (idx, since_start);
    }

    /// Entrant `idx` produced the first conclusive result and claimed the
    /// race (cancelling the shared token). Fires exactly once per race,
    /// at claim time — not at finish-assembly time.
    fn race_claimed(&self, idx: usize, wall: Duration) {
        let _ = (idx, wall);
    }
}

/// Budget for a whole race (shared deadline; per-entrant embedding cap).
#[derive(Debug, Clone)]
pub struct RaceBudget {
    /// Per-entrant embedding cap (1 for decision racing, 1000 for the
    /// paper's matching setup).
    pub max_matches: usize,
    /// Wall-clock limit for the whole race (the paper's 10-minute cap,
    /// scaled).
    pub timeout: Option<Duration>,
}

impl RaceBudget {
    /// Decision-problem racing: first embedding wins.
    pub fn decision() -> Self {
        Self { max_matches: 1, timeout: None }
    }

    /// Matching-problem racing with the paper's 1000-embedding cap.
    pub fn matching() -> Self {
        Self { max_matches: 1000, timeout: None }
    }

    /// Racing with an explicit embedding cap.
    pub fn with_max_matches(max_matches: usize) -> Self {
        Self { max_matches, timeout: None }
    }

    /// Adds a wall-clock limit.
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// Converts into a per-entrant [`SearchBudget`] sharing `token` and an
    /// absolute deadline fixed at race start.
    pub fn entrant_budget(&self, token: CancelToken, start: Instant) -> SearchBudget {
        let mut b = SearchBudget::with_max_matches(self.max_matches).cancellable(token);
        if let Some(t) = self.timeout {
            b = b.deadline_at(start + t);
        }
        b
    }

    /// The stage deadline of a staged (top-K) race: the instant, measured
    /// from the race anchor `start`, at which a still-undecided pruned
    /// first heat should escalate to the full entrant field.
    ///
    /// The deadline sits at the `escalate_after` fraction (clamped to
    /// `[0, 1]`) of the race timeout. Races without a wall-clock timeout
    /// measure the fraction against `fallback_window` instead, so
    /// escalation is always bounded. Entrant deadlines themselves are
    /// unaffected — escalated entrants still run under the original
    /// `start`-anchored budget.
    pub fn stage_deadline(
        &self,
        start: Instant,
        escalate_after: f64,
        fallback_window: Duration,
    ) -> Instant {
        let window = self.timeout.unwrap_or(fallback_window);
        start + window.mul_f64(escalate_after.clamp(0.0, 1.0))
    }
}

/// One entrant's outcome.
#[derive(Debug, Clone)]
pub struct VariantResult<L> {
    /// Caller-supplied identity (e.g. a [`crate::Variant`] or a rewriting).
    pub label: L,
    /// The search result (embeddings in the *entrant's own* query
    /// numbering; NFV callers translate them back, see [`crate::nfv`]).
    pub result: MatchResult,
    /// Wall time of this entrant, from race start to entrant completion.
    pub wall: Duration,
}

/// Outcome of one race.
#[derive(Debug, Clone)]
pub struct PsiOutcome<L> {
    /// All entrants, in configuration order.
    pub per_variant: Vec<VariantResult<L>>,
    /// Index into `per_variant` of the winner (the first conclusive
    /// finisher), if any entrant concluded.
    pub winner_index: Option<usize>,
    /// The Ψ query time: start-of-race to the winner claiming victory
    /// (the paper's semantics — the losers are killed at that instant).
    /// Falls back to the full join time when nobody wins.
    pub elapsed: Duration,
    /// Start-of-race to the last loser unwinding after cancellation —
    /// the *cooperative* kill cost our implementation pays. The gap
    /// `join_elapsed - elapsed` is the Ψ overhead discussed in §8.
    pub join_elapsed: Duration,
}

impl<L> PsiOutcome<L> {
    /// The winning entrant, if any.
    pub fn winner(&self) -> Option<&VariantResult<L>> {
        self.winner_index.map(|i| &self.per_variant[i])
    }

    /// Decision answer: did the winner find at least one embedding?
    pub fn found(&self) -> bool {
        self.winner().is_some_and(|w| w.result.found())
    }

    /// Number of embeddings the winner found (0 if no winner).
    pub fn num_matches(&self) -> usize {
        self.winner().map_or(0, |w| w.result.num_matches)
    }

    /// Whether the race produced a definitive answer.
    pub fn is_conclusive(&self) -> bool {
        self.winner_index.is_some()
    }
}

/// Shared bookkeeping of one in-flight race, decoupled from *where* the
/// entrants execute. [`race`] drives it from scoped OS threads (one per
/// entrant, the paper's setup); `psi-engine` drives the same state machine
/// from pooled workers shared by many concurrent races.
///
/// The state is anchored at a start [`Instant`]; entrant deadlines and all
/// reported wall times are measured from that anchor. An engine passes its
/// *admission* time so queueing delay inside a worker pool counts against
/// the race budget's timeout (the paper's 10-minute cap convention).
pub struct RaceState {
    token: CancelToken,
    claimed: AtomicUsize,
    claim_nanos: std::sync::atomic::AtomicU64,
    first_start_nanos: std::sync::atomic::AtomicU64,
    start: Instant,
    observer: Option<Arc<dyn RaceObserver>>,
}

impl std::fmt::Debug for RaceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RaceState")
            .field("start", &self.start)
            .field("winner_index", &self.winner_index())
            .field("cancelled", &self.token.is_cancelled())
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl RaceState {
    /// Race state anchored at `start` (use [`RaceState::begin`] for "now").
    pub fn new(start: Instant) -> Self {
        Self::with_token(start, CancelToken::new())
    }

    /// Race state anchored at `start` whose cancellation flows through an
    /// *externally owned* `token`. This is what makes completion handles
    /// ticket-safe in `psi-engine`: the ticket keeps a clone of the token,
    /// so dropping the ticket cancels every entrant of the race it refers
    /// to — exactly as a winning entrant would — without the ticket ever
    /// touching the race's internal claim state.
    pub fn with_token(start: Instant, token: CancelToken) -> Self {
        Self {
            token,
            claimed: AtomicUsize::new(usize::MAX),
            claim_nanos: std::sync::atomic::AtomicU64::new(0),
            first_start_nanos: std::sync::atomic::AtomicU64::new(u64::MAX),
            start,
            observer: None,
        }
    }

    /// Attaches a [`RaceObserver`] hearing this race's execution
    /// milestones. Builder-style; at most one observer per race.
    pub fn observe(mut self, observer: Arc<dyn RaceObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Race state anchored at the current instant.
    pub fn begin() -> Self {
        Self::new(Instant::now())
    }

    /// The anchor instant all deadlines and wall times are measured from.
    pub fn start(&self) -> Instant {
        self.start
    }

    /// The shared cancellation token losing entrants observe.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Runs one entrant body to completion: executes `f` under the
    /// race-wired budget, then claims victory if the result is conclusive
    /// and nobody claimed earlier. Returns the result and the entrant's
    /// wall time from the race anchor.
    pub fn run_entrant<F>(&self, idx: usize, budget: &RaceBudget, f: F) -> (MatchResult, Duration)
    where
        F: FnOnce(&SearchBudget) -> MatchResult,
    {
        let entrant_budget = self.start_entrant(idx, budget);
        let result = f(&entrant_budget);
        let wall = self.complete_entrant(idx, &result);
        (result, wall)
    }

    /// First half of an entrant's lifecycle: wires the race-wide budget
    /// and records the start milestone. Split from [`RaceState::run_entrant`]
    /// so a *sliced* entrant — whose body spans several pooled tasks —
    /// can start once (on its first slice to execute) and complete once
    /// (on the last slice, with the merged result).
    pub fn start_entrant(&self, idx: usize, budget: &RaceBudget) -> SearchBudget {
        let entrant_budget = budget.entrant_budget(self.token.clone(), self.start);
        // Mark when the race actually began executing (first entrant to
        // reach a thread/worker): staged schedulers anchor the stage
        // window here for budgets without a wall-clock timeout, so pool
        // queueing delay cannot trigger spurious escalations.
        let since_start = self.start.elapsed();
        self.first_start_nanos.fetch_min(since_start.as_nanos() as u64, Ordering::AcqRel);
        if let Some(obs) = &self.observer {
            obs.entrant_started(idx, since_start);
        }
        entrant_budget
    }

    /// Second half of an entrant's lifecycle: claims victory if `result`
    /// is conclusive and nobody claimed earlier. Returns the entrant's
    /// wall time from the race anchor.
    pub fn complete_entrant(&self, idx: usize, result: &MatchResult) -> Duration {
        let wall = self.start.elapsed();
        if result.stop.is_conclusive()
            && self
                .claimed
                .compare_exchange(usize::MAX, idx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            // First conclusive finisher claims the win and "kills" the rest.
            self.claim_nanos.store(wall.as_nanos() as u64, Ordering::Release);
            self.token.cancel();
            if let Some(obs) = &self.observer {
                obs.race_claimed(idx, wall);
            }
        }
        wall
    }

    /// Index of the winning entrant, if any has claimed victory yet.
    pub fn winner_index(&self) -> Option<usize> {
        let w = self.claimed.load(Ordering::Acquire);
        (w != usize::MAX).then_some(w)
    }

    /// Whether some entrant has already claimed the race.
    pub fn is_decided(&self) -> bool {
        self.winner_index().is_some()
    }

    /// The instant the first entrant began executing, if any has started
    /// yet. This is distinct from the anchor [`RaceState::start`]: in a
    /// pooled engine, queueing delay separates admission from execution.
    pub fn first_entrant_started(&self) -> Option<Instant> {
        let nanos = self.first_start_nanos.load(Ordering::Acquire);
        (nanos != u64::MAX).then(|| self.start + Duration::from_nanos(nanos))
    }

    /// Assembles the outcome once every entrant has reported its
    /// [`VariantResult`] (in configuration order).
    pub fn finish<L>(&self, per_variant: Vec<VariantResult<L>>) -> PsiOutcome<L> {
        let join_elapsed = self.start.elapsed();
        let winner_index = self.winner_index();
        let elapsed = if winner_index.is_some() {
            Duration::from_nanos(self.claim_nanos.load(Ordering::Acquire))
        } else {
            join_elapsed
        };
        PsiOutcome { per_variant, winner_index, elapsed, join_elapsed }
    }
}

/// Races `entrants` (label + closure) under `budget`. Each closure receives
/// its pre-wired [`SearchBudget`] and runs on its own OS thread, exactly as
/// the paper instantiates one thread per rewriting/algorithm.
///
/// The winner is the first entrant whose result is conclusive
/// (`StopReason::Complete` or `StopReason::MatchLimit`); it cancels the
/// shared token. Entrants that time out or get cancelled never win. If no
/// entrant concludes (e.g. global timeout), `winner_index` is `None`.
pub fn race<L, F>(entrants: Vec<(L, F)>, budget: &RaceBudget) -> PsiOutcome<L>
where
    L: Send,
    F: FnOnce(&SearchBudget) -> MatchResult + Send,
{
    let state = RaceState::begin();
    if entrants.is_empty() {
        return state.finish(Vec::new());
    }
    let results: Vec<VariantResult<L>> = std::thread::scope(|scope| {
        let handles: Vec<_> = entrants
            .into_iter()
            .enumerate()
            .map(|(idx, (label, f))| {
                let state = &state;
                scope.spawn(move || {
                    let (result, wall) = state.run_entrant(idx, budget, f);
                    VariantResult { label, result, wall }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("entrant thread must not panic")).collect()
    });
    state.finish(results)
}

/// Convenience used by tests and ablation benches: runs the entrants
/// *sequentially* (no parallelism, no cancellation) and reports the best
/// conclusive result — the "oracle best variant" that `speedup★` compares
/// against.
pub fn run_sequential<L, F>(entrants: Vec<(L, F)>, budget: &RaceBudget) -> Vec<VariantResult<L>>
where
    F: FnOnce(&SearchBudget) -> MatchResult,
{
    entrants
        .into_iter()
        .map(|(label, f)| {
            let start = Instant::now();
            let mut b = SearchBudget::with_max_matches(budget.max_matches);
            if let Some(t) = budget.timeout {
                b = b.timeout(t);
            }
            let result = f(&b);
            VariantResult { label, result, wall: start.elapsed() }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psi_matchers::matcher::SearchStats;
    use psi_matchers::StopReason;

    fn quick_result(n: usize) -> MatchResult {
        MatchResult {
            embeddings: vec![vec![0]; n],
            num_matches: n,
            stop: if n > 0 { StopReason::MatchLimit } else { StopReason::Complete },
            stats: SearchStats::default(),
            elapsed: Duration::ZERO,
        }
    }

    #[test]
    fn fastest_conclusive_entrant_wins() {
        let outcome = race(
            vec![
                (
                    "slow",
                    Box::new(|b: &SearchBudget| {
                        // Simulate a straggler that heeds cancellation.
                        let clock = b.start();
                        for _ in 0..1000 {
                            std::thread::sleep(Duration::from_millis(1));
                            if let Some(r) = clock.check_now() {
                                return MatchResult::empty(r);
                            }
                        }
                        quick_result(1)
                    }) as Box<dyn FnOnce(&SearchBudget) -> MatchResult + Send>,
                ),
                ("fast", Box::new(|_b: &SearchBudget| quick_result(1))),
            ],
            &RaceBudget::decision(),
        );
        let w = outcome.winner().expect("someone wins");
        assert_eq!(w.label, "fast");
        assert!(outcome.found());
        // The slow entrant must have been cancelled, not run to completion.
        let slow = &outcome.per_variant[0];
        assert_eq!(slow.result.stop, StopReason::Cancelled);
        assert!(outcome.elapsed < Duration::from_millis(900), "race should end early");
    }

    #[test]
    fn negative_answers_also_win() {
        // An entrant that exhausts its space (Complete, no matches) is
        // conclusive and should cancel stragglers.
        let outcome = race(
            vec![
                (
                    "empty",
                    Box::new(|_b: &SearchBudget| quick_result(0))
                        as Box<dyn FnOnce(&SearchBudget) -> MatchResult + Send>,
                ),
                (
                    "sleepy",
                    Box::new(|b: &SearchBudget| {
                        let clock = b.start();
                        for _ in 0..1000 {
                            std::thread::sleep(Duration::from_millis(1));
                            if let Some(r) = clock.check_now() {
                                return MatchResult::empty(r);
                            }
                        }
                        quick_result(1)
                    }),
                ),
            ],
            &RaceBudget::decision(),
        );
        assert!(outcome.is_conclusive());
        assert!(!outcome.found());
        assert_eq!(outcome.winner().unwrap().label, "empty");
    }

    #[test]
    fn global_timeout_yields_no_winner() {
        let outcome = race(
            vec![("hopeless", |b: &SearchBudget| {
                let clock = b.start();
                loop {
                    std::thread::sleep(Duration::from_millis(1));
                    if let Some(r) = clock.check_now() {
                        return MatchResult::empty(r);
                    }
                }
            })],
            &RaceBudget::decision().timeout(Duration::from_millis(20)),
        );
        assert!(outcome.winner().is_none());
        assert!(!outcome.is_conclusive());
        assert_eq!(outcome.per_variant[0].result.stop, StopReason::TimedOut);
    }

    #[test]
    fn empty_race() {
        let outcome =
            race(Vec::<(&str, fn(&SearchBudget) -> MatchResult)>::new(), &RaceBudget::decision());
        assert!(outcome.winner().is_none());
        assert_eq!(outcome.num_matches(), 0);
    }

    #[test]
    fn per_variant_order_is_configuration_order() {
        let outcome = race(
            vec![
                ("a", (|_b: &SearchBudget| quick_result(1)) as fn(&SearchBudget) -> MatchResult),
                ("b", (|_b: &SearchBudget| quick_result(1)) as fn(&SearchBudget) -> MatchResult),
                ("c", (|_b: &SearchBudget| quick_result(1)) as fn(&SearchBudget) -> MatchResult),
            ],
            &RaceBudget::decision(),
        );
        let labels: Vec<_> = outcome.per_variant.iter().map(|v| v.label).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert!(outcome.winner_index.is_some());
    }

    #[test]
    fn stage_deadline_is_a_fraction_of_the_timeout() {
        let start = Instant::now();
        let fallback = Duration::from_millis(40);
        let timed = RaceBudget::decision().timeout(Duration::from_millis(200));
        assert_eq!(timed.stage_deadline(start, 0.5, fallback), start + Duration::from_millis(100));
        // Clamped: fractions outside [0, 1] pin to the anchor / full cap.
        assert_eq!(timed.stage_deadline(start, -3.0, fallback), start);
        assert_eq!(timed.stage_deadline(start, 7.0, fallback), start + Duration::from_millis(200));
        // No timeout: the fallback window stands in for the race budget.
        let untimed = RaceBudget::decision();
        assert_eq!(
            untimed.stage_deadline(start, 0.25, fallback),
            start + Duration::from_millis(10)
        );
    }

    #[test]
    fn first_start_and_decision_tracking() {
        let state = RaceState::begin();
        assert!(state.first_entrant_started().is_none(), "nothing has executed yet");
        assert!(!state.is_decided());
        let budget = RaceBudget::decision();
        state.run_entrant(0, &budget, |_b| quick_result(0));
        let first = state.first_entrant_started().expect("heat has started");
        assert!(first >= state.start());
        assert!(state.is_decided(), "a conclusive entrant claims the race");
        state.run_entrant(1, &budget, |_b| quick_result(1));
        assert_eq!(
            state.first_entrant_started(),
            Some(first),
            "later entrants never move the first-start marker forward"
        );
        assert_eq!(state.winner_index(), Some(0), "late finishers cannot re-claim");
    }

    #[test]
    fn external_token_cancels_without_claiming() {
        // A ticket-style owner cancels the race from outside: entrants
        // observe the shared token through their budgets and unwind, and
        // nobody claims a win — cancellation is not a verdict.
        let token = CancelToken::new();
        let state = RaceState::with_token(Instant::now(), token.clone());
        token.cancel();
        let (result, _) = state.run_entrant(0, &RaceBudget::decision(), |b| {
            let clock = b.start();
            match clock.check_now() {
                Some(r) => MatchResult::empty(r),
                None => quick_result(1),
            }
        });
        assert_eq!(result.stop, StopReason::Cancelled);
        assert!(!state.is_decided(), "external cancellation must not claim a winner");
    }

    #[test]
    fn observer_hears_starts_and_exactly_one_claim() {
        struct Spy {
            starts: AtomicUsize,
            claims: AtomicUsize,
            claimed_idx: AtomicUsize,
        }
        impl RaceObserver for Spy {
            fn entrant_started(&self, _idx: usize, _since_start: Duration) {
                self.starts.fetch_add(1, Ordering::Relaxed);
            }
            fn race_claimed(&self, idx: usize, _wall: Duration) {
                self.claims.fetch_add(1, Ordering::Relaxed);
                self.claimed_idx.store(idx, Ordering::Relaxed);
            }
        }
        let spy = Arc::new(Spy {
            starts: AtomicUsize::new(0),
            claims: AtomicUsize::new(0),
            claimed_idx: AtomicUsize::new(usize::MAX),
        });
        let state = RaceState::begin().observe(Arc::clone(&spy) as Arc<dyn RaceObserver>);
        let budget = RaceBudget::decision();
        state.run_entrant(0, &budget, |_b| quick_result(1));
        state.run_entrant(1, &budget, |_b| quick_result(1));
        assert_eq!(spy.starts.load(Ordering::Relaxed), 2, "every entrant start observed");
        assert_eq!(spy.claims.load(Ordering::Relaxed), 1, "claim fires exactly once");
        assert_eq!(spy.claimed_idx.load(Ordering::Relaxed), 0);
        assert_eq!(state.winner_index(), Some(0));
    }

    #[test]
    fn sequential_runner_runs_everything() {
        let rs = run_sequential(
            vec![
                ("x", (|_b: &SearchBudget| quick_result(1)) as fn(&SearchBudget) -> MatchResult),
                ("y", (|_b: &SearchBudget| quick_result(0)) as fn(&SearchBudget) -> MatchResult),
            ],
            &RaceBudget::matching(),
        );
        assert_eq!(rs.len(), 2);
        assert!(rs.iter().all(|r| r.result.stop.is_conclusive()));
    }
}
